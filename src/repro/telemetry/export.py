"""JSONL export of one telemetry session, and helpers to read it back.

The export is a sequence of self-describing JSON objects, one per line,
in this order (the normative schema lives in ``docs/OBSERVABILITY.md``):

1. one ``meta`` record — schema version, clock, record counts;
2. one ``span`` record per finished span, sorted by start time.  Times
   are microseconds relative to the earliest span start in the export
   (``t_us``), so traces are comparable across processes;
3. one record per touched metric: ``counter``, ``gauge``, or
   ``histogram``.

Span records carry ``span_id``/``parent_id``/``trace_id`` so the tree
can be rebuilt exactly; :func:`span_tree` and :func:`render_span_tree`
do that for consumers that just want the hierarchy.
"""

from __future__ import annotations

import io
import json
import os

SCHEMA_VERSION = 1


def export_records(telemetry) -> list[dict]:
    """The export as a list of plain dicts (what JSONL lines serialize)."""
    spans = sorted(
        telemetry.tracer.finished_spans(), key=lambda s: (s.start_ns, s.span_id)
    )
    snapshot = telemetry.metrics.snapshot()
    records: list[dict] = [
        {
            "type": "meta",
            "schema_version": SCHEMA_VERSION,
            "clock": "perf_counter_ns",
            "spans": len(spans),
            "metrics": sum(
                len(snapshot[kind])
                for kind in ("counters", "gauges", "histograms")
            ),
        }
    ]
    origin = spans[0].start_ns if spans else 0
    for span in spans:
        records.append(
            {
                "type": "span",
                "name": span.name,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "trace_id": span.trace_id,
                "t_us": (span.start_ns - origin) // 1000,
                "duration_us": span.duration_ns // 1000,
                "attrs": dict(span.attributes),
            }
        )
    for name, value in snapshot["counters"].items():
        records.append({"type": "counter", "name": name, "value": value})
    for name, value in snapshot["gauges"].items():
        records.append({"type": "gauge", "name": name, "value": value})
    for name, data in snapshot["histograms"].items():
        records.append({"type": "histogram", "name": name, **data})
    return records


def export_jsonl(telemetry, path) -> int:
    """Write the session to ``path`` (str/PathLike or text file object).

    Returns the number of lines written.
    """
    records = export_records(telemetry)
    if isinstance(path, (str, os.PathLike)):
        with open(path, "w", encoding="utf-8") as handle:
            return _write_lines(records, handle)
    return _write_lines(records, path)


def _write_lines(records: list[dict], handle: io.TextIOBase) -> int:
    for record in records:
        handle.write(json.dumps(record, default=str, sort_keys=True))
        handle.write("\n")
    return len(records)


def load_jsonl(path) -> list[dict]:
    """Parse an export back into the list of records."""
    if isinstance(path, (str, os.PathLike)):
        with open(path, encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]
    return [json.loads(line) for line in path if line.strip()]


def span_tree(records: list[dict]) -> list[dict]:
    """Rebuild the span hierarchy from export records.

    Returns the list of root spans; each node is the span record with a
    ``children`` list added (ordered by start time).
    """
    spans = [dict(r) for r in records if r.get("type") == "span"]
    by_id = {span["span_id"]: span for span in spans}
    roots: list[dict] = []
    for span in spans:
        span.setdefault("children", [])
        parent = by_id.get(span["parent_id"])
        if parent is None:
            roots.append(span)
        else:
            parent.setdefault("children", []).append(span)
    return roots


def span_names(records: list[dict]) -> set[str]:
    """Every distinct span name present in an export."""
    return {r["name"] for r in records if r.get("type") == "span"}


def metric_names(records: list[dict]) -> set[str]:
    """Every metric name present in an export."""
    return {
        r["name"]
        for r in records
        if r.get("type") in ("counter", "gauge", "histogram")
    }


def render_span_tree(records: list[dict]) -> str:
    """An indented text rendering of the span tree (for humans)."""
    lines: list[str] = []

    def _render(node: dict, depth: int) -> None:
        ms = node["duration_us"] / 1000
        lines.append(f"{'  ' * depth}{node['name']}  {ms:.2f} ms")
        for child in node.get("children", []):
            _render(child, depth + 1)

    for root in span_tree(records):
        _render(root, 0)
    return "\n".join(lines)
