"""The process-wide telemetry switch and the instrumentation helpers.

Instrumented code throughout the pipeline calls the four module-level
helpers — :func:`span`, :func:`count`, :func:`observe`,
:func:`set_gauge` — unconditionally.  When no telemetry session is
active (the default) each helper is a single global read and a ``None``
check: no allocation, no locks, no formatting.  That is the whole
"no-op implementation" — it is not a separate code path in the
instrumented modules, so the hot paths stay readable.

Enable collection either imperatively::

    active = telemetry.enable()
    ...  # run queries
    telemetry.export_jsonl("trace.jsonl")
    telemetry.disable()

or, preferably, scoped::

    with telemetry.session() as active:
        system = MyceliumSystem.setup(num_devices=16, rng=rng)
        system.run_query(...)
    print(active.snapshot()["counters"]["bgv.encrypt.count"])

Sessions nest: entering a new session shelves the previous one and
restores it on exit, which is what lets the benchmark harness wrap every
benchmark in a fresh session without coordinating with user code.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import NOOP_SPAN, Span, Tracer, _NoopSpan


class Telemetry:
    """One collection session: a tracer plus a metrics registry."""

    def __init__(self, strict: bool = True):
        self.tracer = Tracer()
        self.metrics = MetricsRegistry(strict=strict)

    def snapshot(self) -> dict:
        """Plain-data summary: metrics plus per-span-name timing totals."""
        durations: dict[str, dict] = {}
        for finished in self.tracer.finished_spans():
            entry = durations.setdefault(
                finished.name, {"count": 0, "seconds": 0.0}
            )
            entry["count"] += 1
            entry["seconds"] += finished.duration_seconds
        snap = self.metrics.snapshot()
        snap["spans"] = durations
        return snap

    def export_jsonl(self, path) -> int:
        """Write the JSONL export (see :mod:`repro.telemetry.export`)."""
        from repro.telemetry.export import export_jsonl

        return export_jsonl(self, path)


_active: Telemetry | None = None


def enable(strict: bool = True) -> Telemetry:
    """Start a global telemetry session and return it."""
    global _active
    _active = Telemetry(strict=strict)
    return _active


def disable() -> Telemetry | None:
    """Stop collecting; returns the session that was active, if any."""
    global _active
    previous = _active
    _active = None
    return previous


def active() -> Telemetry | None:
    """The currently collecting session, or None."""
    return _active


@contextmanager
def session(strict: bool = True):
    """Collect telemetry for the duration of a ``with`` block."""
    global _active
    previous = _active
    current = Telemetry(strict=strict)
    _active = current
    try:
        yield current
    finally:
        _active = previous


# ---------------------------------------------------------------------------
# Instrumentation helpers (the only API instrumented modules use)
# ---------------------------------------------------------------------------


def span(name: str, **attributes) -> Span | _NoopSpan:
    """A context-managed span, or the shared no-op when disabled."""
    t = _active
    if t is None:
        return NOOP_SPAN
    return t.tracer.span(name, **attributes)


def count(name: str, value: float = 1) -> None:
    """Increment a declared counter (no-op when disabled)."""
    t = _active
    if t is not None:
        t.metrics.add(name, value)


def observe(name: str, value: float) -> None:
    """Record one histogram observation (no-op when disabled)."""
    t = _active
    if t is not None:
        t.metrics.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a declared gauge (no-op when disabled)."""
    t = _active
    if t is not None:
        t.metrics.set_gauge(name, value)


def export_jsonl(path) -> int:
    """Export the active session to ``path``; 0 lines if disabled."""
    t = _active
    if t is None:
        return 0
    return t.export_jsonl(path)
