"""``make docs-check``: keep ``docs/OBSERVABILITY.md`` and the code honest.

Three families of checks, each returning human-readable problems:

1. **Metric/span contract** — the names documented in the catalog tables
   of ``docs/OBSERVABILITY.md`` must equal, exactly, the names declared
   in :mod:`repro.telemetry.catalog`, in both directions.  Documented
   units and kinds must match the declarations too.
2. **Instrumentation liveness** — every declared name must appear as a
   string literal somewhere under ``src/repro/`` outside the telemetry
   package itself, i.e. some instrumentation site can actually emit it.
   A name nobody emits is dead contract and fails the check.
3. **Doc rot** — every backticked file path or ``repro.*`` module
   reference in the top-level and ``docs/`` markdown must resolve to a
   real file in the repository.

Run it as a module (the Makefile target does)::

    PYTHONPATH=src python -m repro.telemetry.contract [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

from repro.telemetry import catalog

OBSERVABILITY_DOC = Path("docs") / "OBSERVABILITY.md"

#: Markdown files audited for rotten file references.
DOC_FILES = ("README.md", "DESIGN.md", "docs")

_TABLE_ROW = re.compile(r"^\|\s*`([a-z0-9_.]+)`\s*\|(.*)\|\s*$")
_BACKTICK = re.compile(r"`([^`\n]+)`")
_PATH_LIKE = re.compile(r"^[A-Za-z0-9_\-./]+\.(?:py|md|json|jsonl|txt)$")
_MODULE_LIKE = re.compile(r"^repro(?:\.[a-z_][a-z0-9_]*)+$")


def find_repo_root(start: Path | None = None) -> Path:
    """Walk up from this file (or ``start``) to the directory that holds
    ``docs/OBSERVABILITY.md``."""
    here = (start or Path(__file__).resolve()).parent
    for candidate in (here, *here.parents):
        if (candidate / OBSERVABILITY_DOC).is_file():
            return candidate
    raise FileNotFoundError(
        f"could not locate {OBSERVABILITY_DOC} above {here}"
    )


# ---------------------------------------------------------------------------
# Check 1: the documented catalog mirrors the declared catalog
# ---------------------------------------------------------------------------


def documented_names(doc_text: str) -> tuple[dict[str, list[str]], dict[str, list[str]]]:
    """Extract (metrics, spans) tables from OBSERVABILITY.md.

    Returns dicts of name -> remaining table cells; a row belongs to
    whichever ``## Metric catalog`` / ``## Span catalog`` section it
    appears under.
    """
    metrics: dict[str, list[str]] = {}
    spans: dict[str, list[str]] = {}
    section = None
    section_level = 0
    for line in doc_text.splitlines():
        if line.startswith("#"):
            level = len(line) - len(line.lstrip("#"))
            heading = line.lstrip("#").strip().lower()
            if "metric catalog" in heading:
                section, section_level = metrics, level
            elif "span catalog" in heading:
                section, section_level = spans, level
            elif level <= section_level:
                # Deeper subheadings (e.g. per-subsystem groupings) stay
                # inside the catalog; a same-or-higher heading ends it.
                section = None
            continue
        if section is None:
            continue
        match = _TABLE_ROW.match(line.strip())
        if match is None:
            continue
        name = match.group(1)
        cells = [c.strip() for c in match.group(2).split("|")]
        section[name] = cells
    return metrics, spans


def check_catalog_contract(root: Path) -> list[str]:
    problems: list[str] = []
    doc_path = root / OBSERVABILITY_DOC
    doc_metrics, doc_spans = documented_names(
        doc_path.read_text(encoding="utf-8")
    )

    for name in sorted(set(catalog.METRICS) - set(doc_metrics)):
        problems.append(
            f"metric {name!r} is declared in catalog.py but missing from "
            f"{OBSERVABILITY_DOC}"
        )
    for name in sorted(set(doc_metrics) - set(catalog.METRICS)):
        problems.append(
            f"metric {name!r} is documented in {OBSERVABILITY_DOC} but not "
            "declared in catalog.py"
        )
    for name in sorted(set(catalog.SPANS) - set(doc_spans)):
        problems.append(
            f"span {name!r} is declared in catalog.py but missing from "
            f"{OBSERVABILITY_DOC}"
        )
    for name in sorted(set(doc_spans) - set(catalog.SPANS)):
        problems.append(
            f"span {name!r} is documented in {OBSERVABILITY_DOC} but not "
            "declared in catalog.py"
        )

    # Kind and unit columns must match the declarations.
    for name, cells in sorted(doc_metrics.items()):
        spec = catalog.METRICS.get(name)
        if spec is None or len(cells) < 2:
            continue
        kind, unit = cells[0], cells[1]
        if kind != spec.kind:
            problems.append(
                f"{name}: documented kind {kind!r} != declared {spec.kind!r}"
            )
        if unit.strip("`") != spec.unit:
            problems.append(
                f"{name}: documented unit {unit!r} != declared {spec.unit!r}"
            )
    return problems


# ---------------------------------------------------------------------------
# Check 2: every declared name is emitted by some instrumentation site
# ---------------------------------------------------------------------------


def check_instrumentation_liveness(root: Path) -> list[str]:
    problems: list[str] = []
    telemetry_dir = root / "src" / "repro" / "telemetry"
    sources: list[str] = []
    for path in sorted((root / "src" / "repro").rglob("*.py")):
        if telemetry_dir in path.parents:
            continue
        sources.append(path.read_text(encoding="utf-8"))
    corpus = "\n".join(sources)
    for name in sorted(set(catalog.METRICS) | set(catalog.SPANS)):
        if f'"{name}"' not in corpus and f"'{name}'" not in corpus:
            problems.append(
                f"{name!r} is declared in catalog.py but no instrumentation "
                "site under src/repro/ emits it"
            )
    return problems


# ---------------------------------------------------------------------------
# Check 3: doc rot — referenced files and modules must exist
# ---------------------------------------------------------------------------


def _resolve_path(root: Path, reference: str) -> bool:
    reference = reference.split("::")[0]
    candidates = (
        root / reference,
        root / "src" / reference,
        root / "src" / "repro" / reference,
        root / "docs" / reference,
    )
    return any(c.is_file() for c in candidates)


def _resolve_module(root: Path, module: str) -> bool:
    relative = Path(*module.split("."))
    return (
        (root / "src" / relative).with_suffix(".py").is_file()
        or (root / "src" / relative / "__init__.py").is_file()
    )


def iter_doc_files(root: Path):
    for entry in DOC_FILES:
        path = root / entry
        if path.is_dir():
            yield from sorted(path.glob("*.md"))
        elif path.is_file():
            yield path


def check_doc_rot(root: Path) -> list[str]:
    problems: list[str] = []
    for doc in iter_doc_files(root):
        text = doc.read_text(encoding="utf-8")
        for token in _BACKTICK.findall(text):
            token = token.strip()
            if _PATH_LIKE.match(token.split("::")[0]) and "/" in token:
                if not _resolve_path(root, token):
                    problems.append(
                        f"{doc.relative_to(root)}: referenced file "
                        f"{token!r} does not exist"
                    )
            elif _MODULE_LIKE.match(token):
                if not _resolve_module(root, token):
                    problems.append(
                        f"{doc.relative_to(root)}: referenced module "
                        f"{token!r} does not exist"
                    )
    return problems


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def run_checks(root: Path | None = None) -> list[str]:
    """All checks; returns the combined problem list (empty = healthy)."""
    root = root or find_repo_root()
    problems = check_catalog_contract(root)
    problems += check_instrumentation_liveness(root)
    problems += check_doc_rot(root)
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]).resolve() if argv else find_repo_root()
    if not (root / OBSERVABILITY_DOC).is_file():
        print(f"docs-check: no {OBSERVABILITY_DOC} under {root}")
        return 1
    problems = run_checks(root)
    if problems:
        print(f"docs-check: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    names = len(catalog.METRICS) + len(catalog.SPANS)
    print(
        f"docs-check: OK ({len(catalog.METRICS)} metrics, "
        f"{len(catalog.SPANS)} spans, {names} names in contract)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
