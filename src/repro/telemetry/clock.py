"""Injectable wall clock for protocol code paths.

Protocol modules must never read ``time.perf_counter()`` directly: a
journal replay or an audit trial that re-runs a phase would observe a
*different* wall-clock reading than the original run, which turns
timing telemetry into a replay-nondeterminism seam.  Instead they call
:func:`perf_counter` here, and replay/audit harnesses install a
deterministic clock for the duration of the re-execution::

    from repro.telemetry import clock

    with clock.fixed(step=0.0):
        ...  # committee.decrypt.seconds observes 0.0, bit-identical

The default clock is the real ``time.perf_counter`` — live runs keep
meaningful timing histograms.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

_clock: Callable[[], float] = time.perf_counter


def perf_counter() -> float:
    """The current (possibly injected) monotonic reading, in seconds."""
    return _clock()


def set_clock(fn: Callable[[], float]) -> None:
    """Install ``fn`` as the clock source (tests/replay only)."""
    global _clock
    _clock = fn


def reset_clock() -> None:
    """Restore the real ``time.perf_counter``."""
    global _clock
    _clock = time.perf_counter


@contextmanager
def fixed(start: float = 0.0, step: float = 0.0) -> Iterator[None]:
    """Deterministic clock: reading i returns ``start + i * step``.

    With the default ``step=0.0`` every duration computed from two
    readings is exactly ``0.0`` — the bit-identical choice for journal
    replay and audit trials.
    """
    ticks = {"n": 0}

    def fake() -> float:
        value = start + ticks["n"] * step
        ticks["n"] += 1
        return value

    previous = _clock
    set_clock(fake)
    try:
        yield
    finally:
        set_clock(previous)
