"""Zero-dependency telemetry for the Mycelium pipeline.

Structured observability in three pieces, documented normatively in
``docs/OBSERVABILITY.md``:

* a :class:`~repro.telemetry.tracer.Tracer` of nested, attributed spans
  over the monotonic clock (``system.setup`` → ``query.genesis``;
  ``query.run`` → compile/execute/aggregate/decrypt/release/rotate);
* a strict :class:`~repro.telemetry.metrics.MetricsRegistry` of
  counters, gauges, and fixed-bucket histograms whose names must be
  declared in :mod:`repro.telemetry.catalog`;
* a JSONL exporter (:mod:`repro.telemetry.export`).

Telemetry is **off by default**: instrumentation sites call the helpers
re-exported here (:func:`span`, :func:`count`, :func:`observe`,
:func:`set_gauge`), which cost one global read when nothing is
collecting.  Turn collection on with :func:`session`::

    from repro import telemetry

    with telemetry.session() as active:
        system = MyceliumSystem.setup(num_devices=16, rng=rng)
        system.run_query(..., rotate=True)
        telemetry.export_jsonl("trace.jsonl")

See ``examples/telemetry_demo.py`` for an end-to-end walk-through and
``make docs-check`` for the contract enforcement.
"""

from repro.telemetry.catalog import METRICS, SPANS, MetricSpec, SpanSpec
from repro.telemetry.export import (
    export_records,
    load_jsonl,
    metric_names,
    render_span_tree,
    span_names,
    span_tree,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.runtime import (
    Telemetry,
    active,
    count,
    disable,
    enable,
    export_jsonl,
    observe,
    session,
    set_gauge,
    span,
)
from repro.telemetry.tracer import NOOP_SPAN, Span, Tracer

__all__ = [
    "METRICS",
    "SPANS",
    "MetricSpec",
    "SpanSpec",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "Telemetry",
    "Tracer",
    "active",
    "count",
    "disable",
    "enable",
    "export_jsonl",
    "export_records",
    "load_jsonl",
    "metric_names",
    "observe",
    "render_span_tree",
    "session",
    "set_gauge",
    "span",
    "span_names",
    "span_tree",
]
