"""Counters, gauges, and fixed-bucket histograms.

The registry is *strict* by default: a metric name must be declared in
:mod:`repro.telemetry.catalog` before it can be emitted, and the call
must match the declared kind (``add`` for counters, ``set_gauge`` for
gauges, ``observe`` for histograms).  Strictness is what lets the
``docs-check`` tool guarantee that everything the code can export is
documented in ``docs/OBSERVABILITY.md`` — there is no side channel for
ad-hoc names.

Histogram bucket semantics: for declared boundaries ``b_0 < … < b_{k-1}``
the histogram keeps ``k + 1`` counts; an observation ``v`` lands in the
first bucket with ``v <= b_i`` and in the overflow bucket when it
exceeds every boundary.  Boundaries are upper-inclusive, so a value
exactly on an edge belongs to the bucket that edge closes.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.errors import TelemetryError
from repro.telemetry import catalog as catalog_mod
from repro.telemetry.catalog import COUNTER, GAUGE, HISTOGRAM, MetricSpec


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("spec", "value")

    def __init__(self, spec: MetricSpec):
        self.spec = spec
        self.value: float = 0

    def add(self, value: float = 1) -> None:
        if value < 0:
            raise TelemetryError(
                f"counter {self.spec.name} cannot decrease (got {value})"
            )
        self.value += value


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("spec", "value")

    def __init__(self, spec: MetricSpec):
        self.spec = spec
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-boundary histogram with count/sum/min/max summary."""

    __slots__ = ("spec", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, spec: MetricSpec):
        self.spec = spec
        bounds = spec.buckets or ()
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise TelemetryError(
                f"histogram {spec.name} boundaries must strictly increase"
            )
        self.bounds: tuple[float, ...] = tuple(bounds)
        self.counts: list[int] = [0] * (len(self.bounds) + 1)
        self.count: int = 0
        self.total: float = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None


_KIND_CLASSES = {COUNTER: Counter, GAUGE: Gauge, HISTOGRAM: Histogram}


class MetricsRegistry:
    """Instruments keyed by catalog name, created lazily on first use."""

    def __init__(
        self,
        catalog: dict[str, MetricSpec] | None = None,
        strict: bool = True,
    ):
        self.catalog = catalog_mod.METRICS if catalog is None else catalog
        self.strict = strict
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _instrument(self, name: str, kind: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            spec = self.catalog.get(name)
            if spec is None:
                if self.strict:
                    raise TelemetryError(
                        f"metric {name!r} is not declared in the telemetry "
                        "catalog (repro/telemetry/catalog.py)"
                    )
                spec = MetricSpec(
                    name, kind, "", "ad-hoc (non-strict registry)",
                    buckets=catalog_mod.TIME_BUCKETS if kind == HISTOGRAM else None,
                )
            instrument = _KIND_CLASSES[spec.kind](spec)
            self._instruments[name] = instrument
        if instrument.spec.kind != kind:
            raise TelemetryError(
                f"metric {name!r} is a {instrument.spec.kind}, not a {kind}"
            )
        return instrument

    # -- emission -----------------------------------------------------------

    def add(self, name: str, value: float = 1) -> None:
        self._instrument(name, COUNTER).add(value)

    def set_gauge(self, name: str, value: float) -> None:
        self._instrument(name, GAUGE).set(value)

    def observe(self, name: str, value: float) -> None:
        self._instrument(name, HISTOGRAM).observe(value)

    # -- inspection ---------------------------------------------------------

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The live instrument for ``name``, or None if never emitted."""
        return self._instruments.get(name)

    def value(self, name: str, default: float = 0) -> float:
        """Counter/gauge value by name (histograms: observation count)."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return default
        if isinstance(instrument, Histogram):
            return instrument.count
        return default if instrument.value is None else instrument.value

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def snapshot(self) -> dict:
        """A plain-data view of every instrument that has been touched."""
        counters: dict[str, float] = {}
        gauges: dict[str, float | None] = {}
        histograms: dict[str, dict] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                histograms[name] = {
                    "bounds": list(instrument.bounds),
                    "counts": list(instrument.counts),
                    "count": instrument.count,
                    "sum": instrument.total,
                    "min": instrument.min,
                    "max": instrument.max,
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
