"""The normative metric and span catalog — the telemetry *contract*.

Every metric the pipeline can emit is declared here, once, with its
kind, unit, and (for histograms) fixed bucket boundaries; every span
name the tracer may open is declared alongside.  Instrumentation sites
refer to these names as string literals, the strict
:class:`repro.telemetry.metrics.MetricsRegistry` refuses names that are
not declared here, and ``docs/OBSERVABILITY.md`` documents exactly this
set — a correspondence enforced by :mod:`repro.telemetry.contract`
(``make docs-check``), so neither the docs nor the code can drift
silently.

Naming scheme: dotted lowercase ``subsystem.object.measure`` names, e.g.
``mixnet.round.bytes_out``.  Units are annotations for humans and
dashboards; values are never rescaled by the library.
"""

from __future__ import annotations

from dataclasses import dataclass

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Fixed boundaries for wall-clock timing histograms (seconds).  The
#: last bucket is the implicit overflow (+inf) bucket.
TIME_BUCKETS = (0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 60.0)

#: Boundaries for the simulated Groth16 verification cost model, whose
#: per-query totals can reach minutes at paper scale.
MODEL_SECONDS_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)

#: Boundaries for mixnet latencies measured in C-rounds.
CROUND_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0)

#: Boundaries for per-payload delivery attempts under reliable sends.
ATTEMPT_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)

#: Boundaries for per-round batch sizes in the query service.
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric: its stable name, kind, and unit."""

    name: str
    kind: str  # COUNTER | GAUGE | HISTOGRAM
    unit: str
    description: str
    buckets: tuple[float, ...] | None = None  # histograms only

    def __post_init__(self) -> None:
        if self.kind not in (COUNTER, GAUGE, HISTOGRAM):
            raise ValueError(f"unknown metric kind {self.kind!r}")
        if (self.kind == HISTOGRAM) != (self.buckets is not None):
            raise ValueError(
                f"{self.name}: buckets are required for histograms and "
                "forbidden otherwise"
            )


@dataclass(frozen=True)
class SpanSpec:
    """Declaration of one span name and where it sits in the tree."""

    name: str
    parent: str | None  # span name of the canonical parent; None = root
    description: str


def _specs(*specs: MetricSpec) -> dict[str, MetricSpec]:
    return {spec.name: spec for spec in specs}


METRICS: dict[str, MetricSpec] = _specs(
    # -- mixnet ------------------------------------------------------------
    MetricSpec(
        "mixnet.rounds.total", COUNTER, "C-rounds",
        "C-rounds advanced by MixnetWorld.run_round",
    ),
    MetricSpec(
        "mixnet.round.deposits", COUNTER, "messages",
        "mailbox deposits made by online devices",
    ),
    MetricSpec(
        "mixnet.round.bytes_out", COUNTER, "bytes",
        "bytes deposited into mailboxes (wire bytes, path id included)",
    ),
    MetricSpec(
        "mixnet.round.fetches", COUNTER, "messages",
        "mailbox payloads fetched and dispatched by devices",
    ),
    MetricSpec(
        "mixnet.round.dummies", COUNTER, "messages",
        "traffic-pattern dummies injected by hops (§3.5)",
    ),
    MetricSpec(
        "mixnet.complaints.total", COUNTER, "complaints",
        "public complaints posted to the bulletin board",
    ),
    MetricSpec(
        "mixnet.send.messages", COUNTER, "messages",
        "end-to-end payloads deposited by ForwardingDriver.send_batch",
    ),
    MetricSpec(
        "mixnet.send.hop_latency_rounds", HISTOGRAM, "C-rounds",
        "delivery latency of one forwarded payload (k+1 C-rounds)",
        buckets=CROUND_BUCKETS,
    ),
    MetricSpec(
        "mixnet.retransmissions.total", COUNTER, "messages",
        "payload re-sends by ForwardingDriver.send_reliable after an "
        "unconfirmed delivery",
    ),
    MetricSpec(
        "mixnet.failovers.total", COUNTER, "messages",
        "sends diverted to a redundant pre-established replica path "
        "after a primary-path failure",
    ),
    MetricSpec(
        "mixnet.send.undelivered", COUNTER, "messages",
        "payloads still unconfirmed after the bounded retransmission "
        "budget",
    ),
    MetricSpec(
        "mixnet.send.attempts", HISTOGRAM, "attempts",
        "delivery attempts used per confirmed payload under reliable "
        "sends",
        buckets=ATTEMPT_BUCKETS,
    ),
    # -- fault injection (repro.faults) ------------------------------------
    MetricSpec(
        "faults.injected.total", COUNTER, "faults",
        "fault events applied by the deterministic FaultInjector "
        "(all kinds)",
    ),
    MetricSpec(
        "faults.churn.offline", COUNTER, "devices",
        "device offline transitions applied by churn windows and "
        "forwarder crashes",
    ),
    MetricSpec(
        "faults.wire.dropped", COUNTER, "messages",
        "wire messages dropped by fault injection (deposit- or "
        "fetch-side)",
    ),
    MetricSpec(
        "faults.wire.delayed", COUNTER, "messages",
        "wire messages held back past their C-round by fault injection",
    ),
    MetricSpec(
        "faults.wire.corrupted", COUNTER, "messages",
        "wire messages corrupted in transit by fault injection",
    ),
    MetricSpec(
        "faults.committee.dropouts", COUNTER, "members",
        "committee members made unavailable or corrupt at decryption "
        "time",
    ),
    MetricSpec(
        "faults.committee.corrupted", COUNTER, "partials",
        "partial decryptions perturbed by the corrupt-partial fault "
        "kind (robust decode must correct and flag each one)",
    ),
    # -- BGV / NTT ---------------------------------------------------------
    MetricSpec(
        "bgv.encrypt.count", COUNTER, "ops", "fresh BGV encryptions",
    ),
    MetricSpec(
        "bgv.encrypt.prepared", COUNTER, "ops",
        "encryptions served by precomputed public-key masks (the "
        "offline fast path: one ring addition instead of two "
        "multiplies)",
    ),
    MetricSpec(
        "bgv.decrypt.count", COUNTER, "ops", "secret-key decryptions",
    ),
    MetricSpec(
        "bgv.add.count", COUNTER, "ops", "homomorphic additions",
    ),
    MetricSpec(
        "bgv.sub.count", COUNTER, "ops", "homomorphic subtractions",
    ),
    MetricSpec(
        "bgv.mul.count", COUNTER, "ops",
        "homomorphic ciphertext-ciphertext multiplications",
    ),
    MetricSpec(
        "bgv.mul_plain.count", COUNTER, "ops",
        "ciphertext-plaintext multiplications",
    ),
    MetricSpec(
        "bgv.relinearize.count", COUNTER, "ops",
        "relinearizations of degree>1 ciphertexts back to degree 1",
    ),
    MetricSpec(
        "bgv.relinearize.fused", COUNTER, "ops",
        "relinearizations served by prepared key pieces through the "
        "backend's fused multiply-accumulate fold",
    ),
    MetricSpec(
        "ntt.forward.count", COUNTER, "transforms",
        "forward negacyclic NTTs",
    ),
    MetricSpec(
        "ntt.inverse.count", COUNTER, "transforms",
        "inverse negacyclic NTTs",
    ),
    MetricSpec(
        "ntt.cache.hits", COUNTER, "lookups",
        "NttContext table-cache hits in get_context",
    ),
    MetricSpec(
        "ntt.cache.misses", COUNTER, "lookups",
        "NttContext table-cache misses (tables built)",
    ),
    # -- aggregator --------------------------------------------------------
    MetricSpec(
        "aggregator.proofs.verified", COUNTER, "proofs",
        "Groth16 proofs checked during submission verification",
    ),
    MetricSpec(
        "aggregator.verify.seconds", HISTOGRAM, "seconds",
        "simulated Groth16 verification seconds per submission "
        "(the paper's aggregator cost model, Figure 9b)",
        buckets=MODEL_SECONDS_BUCKETS,
    ),
    MetricSpec(
        "aggregator.submissions.accepted", COUNTER, "submissions",
        "origin submissions whose proof stack verified",
    ),
    MetricSpec(
        "aggregator.submissions.rejected", COUNTER, "submissions",
        "origin submissions discarded as Byzantine",
    ),
    # -- committee ---------------------------------------------------------
    MetricSpec(
        "committee.decrypt.partials", COUNTER, "shares",
        "partial decryptions combined during threshold decryption",
    ),
    MetricSpec(
        "committee.decrypt.seconds", HISTOGRAM, "seconds",
        "wall-clock duration of one threshold decryption",
        buckets=TIME_BUCKETS,
    ),
    MetricSpec(
        "committee.noise.samples", COUNTER, "draws",
        "Laplace draws sampled inside the committee MPC",
    ),
    MetricSpec(
        "committee.rotations.total", COUNTER, "rotations",
        "VSR key handoffs to a new committee",
    ),
    MetricSpec(
        "committee.rotate.seconds", HISTOGRAM, "seconds",
        "wall-clock duration of one VSR rotation",
        buckets=TIME_BUCKETS,
    ),
    MetricSpec(
        "committee.decrypt.retries", COUNTER, "attempts",
        "extra threshold-decryption attempts forced by committee "
        "dropouts (§6.5 liveness retry)",
    ),
    MetricSpec(
        "committee.robust.errors", COUNTER, "values",
        "wrong share values corrected by Reed-Solomon robust decoding "
        "(summed over all coefficients of a batch)",
    ),
    MetricSpec(
        "committee.robust.batch_width", HISTOGRAM, "codewords",
        "codewords (ring coefficients) opened per robust batch decode "
        "against one share-index set",
        buckets=(1.0, 16.0, 64.0, 256.0, 1024.0, 4096.0),
    ),
    MetricSpec(
        "committee.robust.decode.seconds", HISTOGRAM, "seconds",
        "wall-clock duration of one robust batch decode (partials, "
        "error locator, and batch opening)",
        buckets=TIME_BUCKETS,
    ),
    MetricSpec(
        "committee.robust.fallbacks", COUNTER, "rows",
        "batch rows that failed the shared-locator consistency check "
        "and needed their own Gao decode (extra error locators)",
    ),
    # -- engine ------------------------------------------------------------
    MetricSpec(
        "engine.defaults.total", COUNTER, "contributions",
        "neighbor contributions defaulted to Enc(x^0) because the "
        "neighbor never responded (§4.4 graceful degradation)",
    ),
    # -- query-level robustness --------------------------------------------
    MetricSpec(
        "query.complaints.observed", COUNTER, "complaints",
        "bulletin-board complaints attached to a query's result "
        "metadata",
    ),
    # -- parallel runtime (repro.runtime) ----------------------------------
    MetricSpec(
        "runtime.tasks.total", COUNTER, "tasks",
        "work items executed through TaskFabric.map (any worker count)",
    ),
    MetricSpec(
        "runtime.chunks.total", COUNTER, "chunks",
        "fixed-size chunks dispatched by TaskFabric.map (chunking is "
        "worker-count independent)",
    ),
    MetricSpec(
        "runtime.map.seconds", HISTOGRAM, "seconds",
        "wall-clock duration of one TaskFabric.map fan-out",
        buckets=TIME_BUCKETS,
    ),
    MetricSpec(
        "runtime.workers", GAUGE, "processes",
        "worker-pool size of the most recent TaskFabric.map",
    ),
    MetricSpec(
        "runtime.backend.multiplies", COUNTER, "ops",
        "negacyclic ring multiplications dispatched to the active "
        "compute backend (parent process only; see docs/PERFORMANCE.md)",
    ),
    MetricSpec(
        "runtime.backend.fold_products", COUNTER, "ops",
        "ring products a fused multiply-accumulate fold replaced (the "
        "sequential relinearization cost it avoided)",
    ),
    MetricSpec(
        "runtime.backend.multiply_cache_hits", COUNTER, "ops",
        "ring products served from the content-keyed product cache "
        "instead of the backend kernel (e.g. the ZK aggregate proof "
        "replaying the origin compute)",
    ),
    # -- differential privacy ----------------------------------------------
    MetricSpec(
        "dp.budget.epsilon_spent", GAUGE, "epsilon",
        "cumulative epsilon charged to the sequential-composition budget",
    ),
    MetricSpec(
        "dp.budget.epsilon_remaining", GAUGE, "epsilon",
        "epsilon remaining in the budget",
    ),
    MetricSpec(
        "dp.queries.total", COUNTER, "queries",
        "queries successfully charged against the budget",
    ),
    # -- audit harness (repro.audit) ---------------------------------------
    MetricSpec(
        "audit.trials.total", COUNTER, "trials",
        "seeded trials executed by the invariant-audit harness",
    ),
    MetricSpec(
        "audit.checks.total", COUNTER, "checks",
        "invariant checks asserted across all audit trials",
    ),
    MetricSpec(
        "audit.checks.failed", COUNTER, "checks",
        "invariant checks that failed (a clean tree keeps this at zero)",
    ),
    MetricSpec(
        "audit.trial.seconds", HISTOGRAM, "seconds",
        "wall-clock duration of one audit trial",
        buckets=TIME_BUCKETS,
    ),
    MetricSpec(
        "audit.shrink.executions", COUNTER, "runs",
        "trial executions spent minimizing failing cases to reproducers",
    ),
    # -- durable campaign runtime (repro.durability) -----------------------
    MetricSpec(
        "durability.journal.appends", COUNTER, "records",
        "records durably appended to a campaign's write-ahead journal",
    ),
    MetricSpec(
        "durability.journal.bytes", COUNTER, "bytes",
        "bytes written to the write-ahead journal (checksummed lines)",
    ),
    MetricSpec(
        "durability.journal.fsyncs", COUNTER, "syncs",
        "fsync barriers issued by journal appends (one per record "
        "unless fsync is disabled for benchmarking)",
    ),
    MetricSpec(
        "durability.resume.replayed", COUNTER, "records",
        "journaled phases restored (not re-run) while resuming a "
        "crashed campaign",
    ),
    MetricSpec(
        "durability.checkpoints.written", COUNTER, "checkpoints",
        "sidecar checkpoint snapshots written between queries",
    ),
    MetricSpec(
        "durability.checkpoints.rejected", COUNTER, "checkpoints",
        "corrupt or unreadable checkpoint candidates skipped on resume "
        "(resume falls back to full journal replay)",
    ),
    MetricSpec(
        "durability.campaign.queries", COUNTER, "queries",
        "campaign queries driven to release through the phase loop",
    ),
    MetricSpec(
        "durability.campaign.crashes", COUNTER, "crashes",
        "coordinator kills taken at phase boundaries (KillSpec or "
        "fault-plan driven)",
    ),
    MetricSpec(
        "durability.handoffs.committed", COUNTER, "handoffs",
        "epoch handoffs atomically committed through the journal "
        "(scheduled rotations plus emergency reshares)",
    ),
    MetricSpec(
        "durability.reshares.emergency", COUNTER, "reshares",
        "handoffs triggered by the health monitor because live "
        "committee membership decayed to the liveness threshold",
    ),
    MetricSpec(
        "durability.monitor.pings", COUNTER, "pings",
        "committee liveness pings issued through the fault injector",
    ),
    MetricSpec(
        "durability.monitor.quorum_wait_rounds", COUNTER, "C-rounds",
        "C-rounds the campaign clock advanced while waiting for a "
        "decryption or dealer quorum (§6.5 wait-and-retry)",
    ),
    # -- sharded aggregation (repro.sharding) --------------------------------
    MetricSpec(
        "sharding.shards.planned", COUNTER, "shards",
        "shards laid out by the deterministic planner for one sharded "
        "aggregation or live-simulation run",
    ),
    MetricSpec(
        "sharding.shard.submissions", COUNTER, "submissions",
        "origin submissions routed to a shard aggregator for "
        "verification",
    ),
    MetricSpec(
        "sharding.partials.verified", COUNTER, "partials",
        "shard partial sums whose claim matched the root's independent "
        "recomputation from chunk evidence",
    ),
    MetricSpec(
        "sharding.integrity.failures", COUNTER, "partials",
        "shard partial sums rejected because the claim did not reduce "
        "from the shard's own chunk evidence (ShardIntegrityError)",
    ),
    MetricSpec(
        "sharding.partials.reduced", COUNTER, "partials",
        "verified shard partials combined by the root reduction tree",
    ),
    MetricSpec(
        "sharding.reduce.seconds", HISTOGRAM, "seconds",
        "wall-clock duration of the root reduction over verified shard "
        "partials",
        buckets=TIME_BUCKETS,
    ),
    MetricSpec(
        "sharding.worlds.built", COUNTER, "worlds",
        "per-shard mixnet worlds constructed (one at a time; peak "
        "mixnet residency is bounded by the largest shard)",
    ),
    # -- query service (repro.service) --------------------------------------
    MetricSpec(
        "service.submissions.total", COUNTER, "queries",
        "query submissions received by the service (in-process API or "
        "socket protocol), before admission",
    ),
    MetricSpec(
        "service.admitted.total", COUNTER, "queries",
        "submissions atomically admitted and charged against the "
        "privacy-budget ledger",
    ),
    MetricSpec(
        "service.rejected.budget", COUNTER, "queries",
        "submissions rejected because the epsilon ledger could not "
        "afford them (BudgetRejected)",
    ),
    MetricSpec(
        "service.rejected.queue_full", COUNTER, "queries",
        "submissions rejected by bounded-queue backpressure "
        "(QueueFullRejected); the ledger is rolled back",
    ),
    MetricSpec(
        "service.rounds.total", COUNTER, "rounds",
        "scheduled rounds executed, each as one journaled campaign",
    ),
    MetricSpec(
        "service.batch.size", HISTOGRAM, "queries",
        "admitted submissions batched into one scheduled round",
        buckets=BATCH_BUCKETS,
    ),
    MetricSpec(
        "service.query.seconds", HISTOGRAM, "seconds",
        "end-to-end latency of one served query, submission to result",
        buckets=TIME_BUCKETS,
    ),
    MetricSpec(
        "service.inflight", GAUGE, "queries",
        "admitted submissions currently queued or executing",
    ),
    MetricSpec(
        "service.rejected.deadline", COUNTER, "queries",
        "submissions dropped because their per-query deadline expired "
        "(DeadlineExceeded); unexecuted drops refund the ledger",
    ),
    MetricSpec(
        "service.rounds.aborted", COUNTER, "rounds",
        "scheduled rounds aborted because the campaign raised "
        "(blast-radius isolation; survivors are re-queued once)",
    ),
    MetricSpec(
        "service.requeued.total", COUNTER, "queries",
        "submissions re-queued with a fresh round seed after their "
        "round aborted (at most once per submission)",
    ),
    # -- adversary engine (repro.adversary) ----------------------------------
    MetricSpec(
        "adversary.suspicion.total", COUNTER, "rejections",
        "suspicion points charged to origins whose submission the "
        "aggregator rejected (one per origin per query)",
    ),
    MetricSpec(
        "adversary.quarantined.total", COUNTER, "origins",
        "origins demoted to quarantine after reaching the suspicion "
        "ledger's rejection threshold",
    ),
    MetricSpec(
        "adversary.queries.failed", COUNTER, "queries",
        "survivability-sweep queries that failed outright under attack "
        "(a typed MyceliumError instead of a released answer)",
    ),
    # -- offline precomputation (repro.offline) ------------------------------
    MetricSpec(
        "offline.pool.hits", COUNTER, "entries",
        "leaf-encryption randomness served from a precomputed pool "
        "(masked fast-path encryptions)",
    ),
    MetricSpec(
        "offline.pool.misses", COUNTER, "entries",
        "leaf-encryption randomness derived inline because no pool "
        "covered the run's submission seed",
    ),
    MetricSpec(
        "offline.pool.refills", COUNTER, "entries",
        "pool entries derived on demand after exhaustion — the "
        "block-and-refill path that continues the pool's own derivation "
        "chain instead of falling back to a differently-seeded RNG",
    ),
    MetricSpec(
        "offline.pool.level", HISTOGRAM, "entries",
        "pool fill level observed when the service scheduler checks "
        "pools before a round",
        buckets=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
    ),
    MetricSpec(
        "offline.pool.low", COUNTER, "pools",
        "pools found below the scheduler's low watermark before a "
        "round (each triggers a blocking refill)",
    ),
    MetricSpec(
        "offline.precompute.units", COUNTER, "units",
        "precompute units (NTT warm, relin prep, encryption pool, "
        "dummy stream) journaled as durable by the offline phase",
    ),
    MetricSpec(
        "offline.precompute.resumed", COUNTER, "units",
        "units restored from journaled artifacts (not re-derived) "
        "while resuming a crashed offline phase",
    ),
)


SPANS: dict[str, SpanSpec] = {
    spec.name: spec
    for spec in (
        SpanSpec(
            "system.setup", None,
            "MyceliumSystem.setup: the genesis ceremony plus first election",
        ),
        SpanSpec(
            "query.genesis", "system.setup",
            "one-time key material: BGV keygen, relinearization keys, "
            "Groth16 trusted setup, first committee sharing (§4.2)",
        ),
        SpanSpec(
            "query.run", None,
            "one end-to-end query (MyceliumSystem.run_query); "
            "attributes: query, epsilon",
        ),
        SpanSpec(
            "query.compile", "query.run",
            "parse + compile + feasibility check",
        ),
        SpanSpec(
            "query.execute", "query.run",
            "encrypted vertex-program execution (in-process or over the "
            "real mixnet when a MixnetWorld is supplied)",
        ),
        SpanSpec(
            "query.aggregate", "query.run",
            "aggregator: proof verification, relinearization, global sum",
        ),
        SpanSpec(
            "query.decrypt", "query.run",
            "committee threshold decryption of the global ciphertext",
        ),
        SpanSpec(
            "committee.robust_decode", "query.decrypt",
            "single-pass Reed-Solomon robust decode of all ring "
            "coefficients as one batch: codeword partials, shared error "
            "locator, flagged-member identification; "
            "attributes: members, width",
        ),
        SpanSpec(
            "query.release", "query.run",
            "decode, in-MPC Laplace noise, result assembly",
        ),
        SpanSpec(
            "query.rotate", "query.run",
            "extended-VSR key handoff to the next committee",
        ),
        SpanSpec(
            "runtime.map", None,
            "one TaskFabric.map fan-out over a stage's work items; "
            "attributes: label, items, workers (parent varies by stage, "
            "e.g. query.execute or query.aggregate)",
        ),
        SpanSpec(
            "mixnet.send_batch", "query.execute",
            "one forwarding wave over established telescoping paths "
            "(k+2 simulator rounds); attributes: sends, hops",
        ),
        SpanSpec(
            "mixnet.send_reliable", "query.execute",
            "reliable delivery: send waves plus bounded retransmission "
            "with exponential backoff and replica failover; "
            "attributes: sends, max_attempts",
        ),
        SpanSpec(
            "sharding.reduce", "query.aggregate",
            "root reduction: claim-checked shard partials combined "
            "through the fixed-shape summation tree into the one "
            "ciphertext handed to the committee; "
            "attributes: shards, partials",
        ),
        SpanSpec(
            "audit.run", None,
            "one invariant-audit run over N seeded trials; "
            "attributes: seed, trials",
        ),
        SpanSpec(
            "audit.trial", "audit.run",
            "one generated trial through its oracle and checks; "
            "attributes: kind, index",
        ),
        SpanSpec(
            "campaign.run", None,
            "one durable campaign execution (fresh or resumed) through "
            "the write-ahead journal; attributes: queries, resumed",
        ),
        SpanSpec(
            "campaign.resume", "campaign.run",
            "journal validation, checkpoint fast-forward, and seeded "
            "state replay before the phase loop continues",
        ),
        SpanSpec(
            "campaign.phase", "campaign.run",
            "one journaled phase of one campaign query (run live or "
            "restored from its record); attributes: query, phase",
        ),
        SpanSpec(
            "service.round", None,
            "one scheduled round of the query service, executed as a "
            "journaled campaign (campaign.run is its child); "
            "attributes: round, batch",
        ),
        SpanSpec(
            "service.admit", None,
            "one atomic admission decision: budget check, charge, and "
            "enqueue under the admission lock; attributes: epsilon",
        ),
        SpanSpec(
            "offline.precompute", None,
            "one journaled offline-precomputation pass (fresh, resumed, "
            "or a between-round pool refill); attributes: units",
        ),
        SpanSpec(
            "adversary.sweep", None,
            "one survivability sweep: a full attack profile driven "
            "across its intensity range with quarantine active; "
            "attributes: profile, seed",
        ),
    )
}
