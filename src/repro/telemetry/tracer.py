"""Nested spans over the monotonic clock.

A :class:`Span` is a context manager; entering it pushes it onto the
tracer's stack (so the span open at that moment becomes its parent) and
records a ``time.perf_counter_ns`` start stamp; exiting records the end
stamp and appends the span to the tracer's finished list.  Exceptions
propagate unchanged but leave an ``error`` attribute on the span.

The :data:`NOOP_SPAN` singleton implements the same surface with no
state and no allocation — it is what instrumentation receives when
telemetry is disabled (the default), which keeps traced code effectively
free when nobody is listening.
"""

from __future__ import annotations

import time


class Span:
    """One timed, attributed node of the trace tree."""

    __slots__ = (
        "tracer",
        "name",
        "span_id",
        "parent_id",
        "trace_id",
        "start_ns",
        "end_ns",
        "attributes",
    )

    def __init__(self, tracer: Tracer, name: str, attributes: dict):
        self.tracer = tracer
        self.name = name
        self.attributes = attributes
        self.span_id: int | None = None
        self.parent_id: int | None = None
        self.trace_id: int | None = None
        self.start_ns: int | None = None
        self.end_ns: int | None = None

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    @property
    def duration_ns(self) -> int:
        if self.start_ns is None or self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def duration_seconds(self) -> float:
        return self.duration_ns / 1e9

    def __enter__(self) -> Span:
        tracer = self.tracer
        self.span_id = tracer._next_id()
        stack = tracer._stack
        if stack:
            parent = stack[-1]
            self.parent_id = parent.span_id
            self.trace_id = parent.trace_id
        else:
            self.trace_id = self.span_id
        stack.append(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_ns = time.perf_counter_ns()
        if exc_type is not None and "error" not in self.attributes:
            self.attributes["error"] = exc_type.__name__
        stack = self.tracer._stack
        # Tolerate out-of-order exits (an inner span leaked past its
        # scope): unwind down to and including this span.
        while stack and stack.pop() is not self:
            pass
        self.tracer._finished.append(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.duration_ns}ns)"
        )


class Tracer:
    """Produces spans and retains the finished ones for export.

    The simulator is single-threaded, so the current span is tracked
    with a plain stack rather than context variables.
    """

    def __init__(self) -> None:
        self._stack: list[Span] = []
        self._finished: list[Span] = []
        self._counter: int = 0

    def _next_id(self) -> int:
        self._counter += 1
        return self._counter

    def span(self, name: str, **attributes) -> Span:
        """Create (but do not start) a span; use it as a context manager."""
        return Span(self, name, attributes)

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def finished_spans(self) -> list[Span]:
        """Finished spans in *end* order (children precede parents)."""
        return list(self._finished)


class _NoopSpan:
    """Shared do-nothing span used whenever telemetry is disabled."""

    __slots__ = ()

    def set_attribute(self, key: str, value) -> None:
        pass

    def __enter__(self) -> _NoopSpan:
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()
