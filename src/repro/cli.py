"""Command-line interface.

    python -m repro catalog
    python -m repro run Q5 --people 16 --epsilon 1.0
    python -m repro run "SELECT HISTO(COUNT(*)) FROM neigh(1)" --noiseless
    python -m repro run Q5 --backend numpy --workers 4
    python -m repro figures
    python -m repro demo
    python -m repro bench --quick
    python -m repro audit --seed 0 --trials 50 --shrink
    python -m repro adversary --profile combined --intensities 0,1,1.5
    python -m repro campaign --dir /tmp/c --num-queries 3
    python -m repro campaign --dir /tmp/c --resume
    python -m repro precompute --dir /tmp/p --num-queries 3 --entries 8
    python -m repro serve --port 7844 --max-inflight 64

``run`` generates a synthetic epidemic workload, stands up a deployment
at the TEST ring, and executes the query end to end; ``figures`` prints
the analytic series behind the paper's evaluation plots; ``demo`` runs a
query over the real mix network; ``bench`` times the ring-multiplication
hot path across every available compute backend and a worker sweep (see
``docs/PERFORMANCE.md``); ``audit`` drives the seeded
differential-testing and invariant-audit harness (see
``docs/CORRECTNESS.md``); ``adversary`` sweeps a seeded Byzantine
attack profile across intensities and prints the
:class:`~repro.adversary.survivability.SurvivabilityReport` — goodput,
quarantines, and exactness under attack (see ``docs/RESILIENCE.md``);
``campaign`` runs a durable multi-query
campaign through the write-ahead journal — killable at any phase
boundary (exit code 42) and resumable bit-identically with ``--resume``
(see ``docs/RESILIENCE.md``); ``precompute`` runs the journaled
*offline phase*, materializing query-independent crypto artifacts —
encryption-randomness pools, dummy streams, relinearization key pieces,
NTT tables — that the online hot path consumes for bit-identical results
at a fraction of the latency (see ``docs/PERFORMANCE.md``), with the
same kill/resume contract as ``campaign``; ``serve`` runs the long-lived
asyncio
query service with DP admission control over a localhost socket (see
``docs/SERVICE.md``).

The full generated reference for every subcommand lives in
``docs/CLI.md`` (regenerate with ``make cli-docs``; a test keeps it in
sync).
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.params import PAPER, SystemParameters
from repro.query.catalog import CATALOG, all_queries


def _build_workload(people: int, degree: int, seed: int):
    from repro.workloads.epidemic import run_epidemic
    from repro.workloads.graphgen import generate_household_graph

    rng = random.Random(seed)
    graph = generate_household_graph(
        people, degree_bound=degree, rng=rng, external_contacts=1
    )
    run_epidemic(graph, rng)
    for u in range(graph.num_vertices):
        for v in graph.neighbors(u):
            edge = graph.edge(u, v)
            edge["duration"] = min(edge["duration"], 20)
            edge["contacts"] = min(edge["contacts"], 8)
    return graph, rng


def cmd_catalog(_args: argparse.Namespace) -> int:
    params = SystemParameters()
    print(f"{'id':<4} {'cts':>3} {'mults':>5} {'paper-feasible':>14}  description")
    for entry in all_queries():
        plan = entry.plan(params)
        budget = plan.budget_report(PAPER)
        print(
            f"{entry.qid:<4} {plan.ciphertexts_per_contribution:>3} "
            f"{budget.multiplications_required:>5} "
            f"{str(budget.feasible):>14}  {entry.description}"
        )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.core.system import MyceliumSystem
    from repro.query.ast import OutputKind
    from repro.query.schema import scaled_schema
    from repro.runtime import RuntimeConfig

    # Explicit flags beat the MYCELIUM_* environment overrides.
    base = RuntimeConfig.from_env()
    runtime = RuntimeConfig(
        workers=args.workers if args.workers is not None else base.workers,
        backend=args.backend if args.backend is not None else base.backend,
        chunk_size=base.chunk_size,
        shards=base.shards,
    )
    query = CATALOG[args.query] if args.query in CATALOG else args.query
    graph, rng = _build_workload(args.people, args.degree, args.seed)
    params = SystemParameters(
        num_devices=graph.num_vertices,
        degree_bound=args.degree,
        hops=2,
        committee_size=3,
        replicas=2,
        forwarder_fraction=0.3,
    )
    system = MyceliumSystem.setup(
        num_devices=graph.num_vertices,
        rng=rng,
        params=params,
        schema=scaled_schema(),
        committee_size=3,
        committee_threshold=2,
        total_epsilon=max(10.0, args.epsilon),
    )
    result = system.run_query(
        query, graph, epsilon=args.epsilon, noiseless=args.noiseless,
        runtime=runtime,
    )
    md = result.metadata
    print(f"query: {md.query_text}")
    print(
        f"epsilon={md.epsilon} sensitivity={md.sensitivity:.0f} "
        f"scale={md.noise_scale:.2f} origins={md.contributing_origins} "
        f"rejected={md.rejected_origins}"
    )
    if result.kind is OutputKind.HISTO:
        for group in result.groups:
            nonzero = [
                (value, count)
                for value, count in enumerate(group.counts)
                if abs(count) > 0.5
            ]
            if nonzero:
                print(f"group {group.group}: {nonzero}")
    else:
        for group, value in enumerate(result.values):
            print(f"group {group}: {value:+.3f}")
    return 0


def cmd_figures(_args: argparse.Namespace) -> int:
    from repro.analysis import anonymity, bandwidth, committee_model, duration, goodput

    defaults = SystemParameters()
    print("Figure 5(a) — anonymity set vs hops (r=2, mal=2%):")
    for k, size in anonymity.figure_5a_series()[2]:
        print(f"  k={k}: {size:,.0f}")
    print("Figure 5(c) — goodput at r=2:")
    for failure, success in goodput.figure_5c_series()[2]:
        print(f"  {failure:.0%} failure: {success:.4f}")
    print("Figure 5(d) — C-rounds:")
    for k, rounds in duration.figure_5d_series()["telescoping"]:
        print(f"  k={k}: setup {rounds}, query {duration.forwarding_crounds(k)}")
    print("Figure 7 — per-device MB at (k=3, r=2):")
    print(f"  forwarder {bandwidth.forwarder_mb(defaults):.0f}")
    print(f"  non-forwarder {bandwidth.non_forwarder_mb(defaults):.0f}")
    print(f"  expected {bandwidth.expected_user_mb(defaults):.0f}")
    print("Figure 8(a) — committee privacy failure at 4% malice:")
    for size in (10, 20, 40):
        p = committee_model.privacy_failure_probability(size, 0.04)
        print(f"  C={size}: {p:.2e}")
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    from repro.core.rounds import build_schedule, queries_per_path_epoch
    from repro.query.compiler import compile_query
    from repro.query.parser import parse

    text = CATALOG[args.query].text if args.query in CATALOG else args.query
    params = SystemParameters(hops=args.hops)
    plan = compile_query(parse(text), params)
    schedule = build_schedule(plan, params, reuse_paths=args.reuse_paths)
    print(f"query: {text}")
    print(f"mixnet hops k={args.hops}; one C-round = 1 hour\n")
    for name, crounds, description in schedule.table():
        print(f"  {name:<26} {crounds:>3} C-rounds  ({description})")
    print(
        f"\ntotal: {schedule.total_crounds} C-rounds "
        f"(~{schedule.total_hours():.0f} hours)"
    )
    print(
        f"queries per 7-day path epoch: "
        f"{queries_per_path_epoch(plan, params)}"
    )
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.aggregator import QueryAggregator
    from repro.core.transport import MixnetTransport
    from repro.crypto import bgv
    from repro.crypto.zksnark import Groth16System
    from repro.engine.plaintext import aggregate_coefficients
    from repro.engine.zkcircuits import build_circuits
    from repro.mixnet.network import MixnetWorld
    from repro.params import TEST
    from repro.query.compiler import compile_query
    from repro.query.parser import parse
    from repro.query.schema import scaled_schema

    graph, rng = _build_workload(args.people, 2, args.seed)
    params = SystemParameters(
        num_devices=graph.num_vertices, hops=2, replicas=1,
        forwarder_fraction=0.45, degree_bound=2, pseudonyms_per_device=2,
    )
    world = MixnetWorld(
        params, num_devices=graph.num_vertices, rng=rng, rsa_bits=512,
        pseudonyms_per_device=2,
    )
    secret, public = bgv.keygen(TEST, rng)
    relin = bgv.make_relin_keys(secret, 6, rng)
    zk = Groth16System.setup(build_circuits(), rng)
    plan = compile_query(
        parse("SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE dest.inf"),
        SystemParameters(degree_bound=2),
        scaled_schema(),
    )
    transport = MixnetTransport(
        world=world, graph=graph, plan=plan, public_key=public, zk=zk, rng=rng
    )
    submissions = transport.run()
    aggregation = QueryAggregator(zk=zk, relin_keys=relin).aggregate(submissions)
    plaintext = bgv.decrypt(secret, aggregation.ciphertext)
    coeffs = list(plaintext.coeffs[: plan.layout.total_coefficients])
    expected, _ = aggregate_coefficients(plan, graph)
    print(f"C-rounds: {transport.crounds_used}")
    print(f"proofs verified: {aggregation.proofs_verified}")
    print(f"decrypted == plaintext oracle: {coeffs == expected}")
    print(f"histogram: {coeffs}")
    return 0


def _bench_mul_task(context, seed: int):
    """Fabric task: one seeded negacyclic multiply on the active backend.

    Module-level so worker processes can import it by reference; the
    seed makes every worker's operands independent of scheduling.
    """
    from repro.crypto.polyring import RingElement, RingParams

    n, q = context
    params = RingParams(n=n, q=q)
    rng = random.Random(seed)
    a = RingElement.random_uniform(params, rng)
    b = RingElement.random_uniform(params, rng)
    return (a * b).coeffs[0]


def cmd_bench(args: argparse.Namespace) -> int:
    import time

    from repro.params import SMALL, TEST
    from repro.runtime import TaskFabric, available_backends, use_backend

    profile = TEST if args.quick else SMALL
    ops = 8 if args.quick else 16
    worker_counts = (1, 2) if args.quick else (1, 2, 4)
    ring = profile.ring
    context = (ring.n, ring.q)
    seeds = list(range(1000, 1000 + ops))
    print(
        f"ring multiply: n={ring.n}, log2(q)={ring.q.bit_length()}, "
        f"{ops} ops per cell (profile {profile.name!r})"
    )
    print(f"{'backend':<8} {'workers':>7} {'total_s':>9} {'ms/op':>9} {'speedup':>8}")
    baseline = None
    for backend in available_backends():
        for workers in worker_counts:
            # chunk_size=2 keeps several chunks in flight so workers>1
            # really dispatches out of process (same chunking at every
            # worker count, so all cells do identical work).
            with use_backend(backend), TaskFabric(
                workers=workers, chunk_size=2
            ) as fabric:
                started = time.perf_counter()
                fabric.map(
                    _bench_mul_task, seeds, context=context, label="bench.mul"
                )
                elapsed = time.perf_counter() - started
            if baseline is None:
                baseline = elapsed
            print(
                f"{backend:<8} {workers:>7} {elapsed:>9.3f} "
                f"{1000 * elapsed / ops:>9.3f} {baseline / elapsed:>7.2f}x"
            )
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro import telemetry
    from repro.core.system import MyceliumSystem
    from repro.engine import histogram as histogram_mod
    from repro.engine.plaintext import aggregate_coefficients
    from repro.errors import ProtocolError
    from repro.faults import FaultInjector, FaultPlan
    from repro.mixnet.network import MixnetWorld
    from repro.query.schema import scaled_schema

    graph, rng = _build_workload(args.people, 2, args.seed)
    params = SystemParameters(
        num_devices=graph.num_vertices, hops=2, replicas=2,
        forwarder_fraction=0.45, degree_bound=2, pseudonyms_per_device=2,
        churn_fraction=min(0.9, args.failure),
    )
    world = MixnetWorld(
        params, num_devices=graph.num_vertices, rng=rng, rsa_bits=512,
        pseudonyms_per_device=2,
    )
    system = MyceliumSystem.setup(
        num_devices=graph.num_vertices, rng=rng, params=params,
        schema=scaled_schema(), committee_size=3, committee_threshold=2,
        total_epsilon=max(10.0, args.epsilon),
    )
    members = [m.device_id for m in system.committee.members]
    # Leave path setup fault-free; chaos starts once circuits exist
    # (the §3.4 steady state).  One more dropout than the committee can
    # spare forces the §6.5 liveness retry.
    fault_start = params.telescoping_crounds + 4
    dropouts = members[
        : system.committee.size - system.committee.threshold + 1
    ]
    fault_plan = FaultPlan.generate(
        seed=args.seed,
        num_devices=graph.num_vertices,
        churn_fraction=args.failure / 2,
        churn_window_rounds=4,
        horizon_rounds=96,
        start_round=fault_start,
        wire_drop_rate=args.failure / 2,
        wire_delay_rate=args.failure / 4,
        wire_corrupt_rate=args.failure / 4,
        wire_fault_start=fault_start,
        committee_dropouts=tuple(dropouts),
        committee_offline_attempts=2,
    )
    FaultInjector(fault_plan).attach(world)
    query = "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE dest.inf"
    print(
        f"chaos: people={graph.num_vertices} failure={args.failure} "
        f"seed={args.seed} fault_start=C-round {fault_start}"
    )
    telemetry.enable()
    try:
        result = system.run_query(
            query, graph, epsilon=args.epsilon, noiseless=True, world=world
        )
    except ProtocolError as exc:
        print(f"query failed with a typed error: {type(exc).__name__}: {exc}")
        if args.trace:
            telemetry.export_jsonl(args.trace)
            print(f"telemetry trace written to {args.trace}")
        telemetry.disable()
        return 1
    report = result.metadata.recovery
    print(report.summary())
    plan = system.compile(query)
    expected, _ = aggregate_coefficients(
        plan, graph,
        skipped_origins=report.skipped_origins,
        defaulted=report.defaulted_by_origin,
    )
    expected_counts = [
        [int(c) for c in g.counts]
        for g in histogram_mod.decode_histogram(expected, plan)
    ]
    got_counts = [[int(round(c)) for c in g.counts] for g in result.groups]
    print(f"histogram: {got_counts}")
    print(
        "result matches the degraded plaintext oracle: "
        f"{got_counts == expected_counts}"
    )
    if args.trace:
        telemetry.export_jsonl(args.trace)
        print(f"telemetry trace written to {args.trace}")
    telemetry.disable()
    return 0 if got_counts == expected_counts else 1


#: Process exit code for a simulated coordinator crash (`campaign
#: --kill-at`); distinct from ordinary failures so the chaos driver and
#: the CI crash-recovery matrix can assert the kill actually fired.
CRASH_EXIT_CODE = 42


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.durability.campaign import (
        CampaignConfig,
        CampaignRunner,
        KillSpec,
    )
    from repro.errors import CoordinatorCrash
    from repro.runtime import RuntimeConfig
    from repro.workloads.epidemic import campaign_queries

    base = RuntimeConfig.from_env()
    runtime = RuntimeConfig(
        workers=args.workers if args.workers is not None else base.workers,
        backend=args.backend if args.backend is not None else base.backend,
        chunk_size=base.chunk_size,
        shards=args.shards if args.shards is not None else base.shards,
    )
    kill = None
    if args.kill_at and args.kill_before:
        print("--kill-at and --kill-before are mutually exclusive")
        return 2
    if args.kill_at:
        kill = KillSpec.parse(args.kill_at, before=False)
    elif args.kill_before:
        kill = KillSpec.parse(args.kill_before, before=True)

    if args.resume:
        runner = CampaignRunner.resume(
            args.dir, runtime=runtime, kill=kill, fsync=not args.no_fsync
        )
    else:
        queries = tuple(
            (q, args.epsilon) for q in args.queries
        ) if args.queries else campaign_queries(
            args.num_queries, args.epsilon
        )
        config = CampaignConfig(
            master_seed=args.seed,
            queries=queries,
            people=args.people,
            degree=args.degree,
            total_epsilon=args.total_epsilon,
            rotate_every=args.rotate_every,
            churn_fraction=args.churn,
            fault_seed=args.fault_seed,
            committee_churn_members=args.committee_churn_members,
            committee_churn_start=args.committee_churn_start,
            committee_churn_rounds=args.committee_churn_rounds,
            committee_size=args.committee_size,
            committee_threshold=args.committee_threshold,
            committee_corrupt_members=args.committee_corrupt_members,
            checkpoint_every=args.checkpoint_every,
        )
        runner = CampaignRunner.start(
            config, args.dir, runtime=runtime, kill=kill,
            fsync=not args.no_fsync,
        )
    try:
        result = runner.run()
    except CoordinatorCrash as exc:
        print(
            f"coordinator crashed at phase {exc.phase!r}"
            + (
                f" of query {exc.query_index}"
                if exc.query_index is not None
                else ""
            )
        )
        print(f"journal is resumable: repro campaign --resume --dir {args.dir}")
        return CRASH_EXIT_CODE
    print(f"queries released: {len(result.results)}")
    print(
        "epochs: "
        + ", ".join(f"{e['epoch']}({e['reason']})" for e in result.epochs)
    )
    print(f"emergency reshares: {result.emergency_reshares}")
    print(f"quorum wait rounds: {result.quorum_wait_rounds}")
    print(f"campaign clock: {result.clock_rounds} C-rounds")
    print(f"digest: {result.digest}")
    return 0


def _campaign_relin_power(degree: int, hops: int = 2) -> int:
    """Mirror of ``MyceliumSystem.setup``'s default relin power."""
    neighborhood = 1 + sum(degree**i for i in range(1, hops + 1))
    return max(2, neighborhood + 2)


def cmd_precompute(args: argparse.Namespace) -> int:
    from repro.errors import CoordinatorCrash
    from repro.offline.precompute import OfflineConfig, PrecomputeRunner
    from repro.offline.store import campaign_keys

    kill = None
    if args.kill_at:
        kill = args.kill_at
        if ":" not in kill or kill.split(":", 1)[0] not in ("before", "after"):
            print("--kill-at expects before:UNIT or after:UNIT")
            return 2

    max_power = _campaign_relin_power(args.degree)
    if args.resume:
        from repro.durability.journal import load_records
        from repro.offline.precompute import START_RECORD

        records = load_records(args.dir, drop_torn_tail=True)
        if not records or records[0].type != START_RECORD:
            print(f"no resumable precompute journal under {args.dir}")
            return 2
        config = OfflineConfig.from_json(records[0].data["config"])
        # Relin keys are prefix-stable in max power, so covering the
        # journaled powers can only add keys, never change them.
        max_power = max(max_power, *config.relin_powers, 2)
        public_key, relin_keys = campaign_keys(
            config.master_seed, max_power
        )
        runner = PrecomputeRunner.resume(
            args.dir, public_key=public_key, relin_keys=relin_keys,
            kill=kill,
        )
    else:
        max_power = max(max_power, args.relin_powers)
        public_key, relin_keys = campaign_keys(args.seed, max_power)
        config = OfflineConfig(
            master_seed=args.seed,
            num_queries=args.num_queries,
            origins=tuple(range(args.people)),
            entries=args.entries,
            dummy_seed=args.dummy_seed,
            dummy_devices=tuple(range(args.dummy_devices)),
            dummy_blocks=args.dummy_blocks,
            relin_powers=tuple(range(2, args.relin_powers + 1))
            if args.relin_powers >= 2
            else (),
        )
        runner = PrecomputeRunner.start(
            config, args.dir, public_key=public_key,
            relin_keys=relin_keys, kill=kill, fsync=not args.no_fsync,
        )
    try:
        store = runner.run()
    except CoordinatorCrash as exc:
        print(f"precompute crashed: {exc}")
        print(
            f"journal is resumable: repro precompute --resume --dir {args.dir}"
        )
        return CRASH_EXIT_CODE
    pools = store.encryption_pools()
    print(f"pools: {len(pools)} ({sum(p.level for p in pools)} entries)")
    print(f"dummy streams: {len(runner.config.dummy_devices)}")
    print(f"relin powers prepared: {len(runner.config.relin_powers)}")
    print(f"units journaled: {len(runner.completed)}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.runtime import RuntimeConfig
    from repro.service import QueryService, ServiceConfig

    base = RuntimeConfig.from_env()
    runtime = RuntimeConfig(
        workers=args.workers if args.workers is not None else base.workers,
        backend=args.backend if args.backend is not None else base.backend,
        chunk_size=base.chunk_size,
        shards=args.shards if args.shards is not None else base.shards,
    )
    config = ServiceConfig(
        master_seed=args.seed,
        people=args.people,
        degree=args.degree,
        total_epsilon=args.total_epsilon,
        rotate_every=args.rotate_every,
        max_batch=args.max_batch,
        max_inflight=args.max_inflight,
        directory=args.dir,
        fsync=not args.no_fsync,
        default_deadline_seconds=args.deadline_seconds,
    )

    async def main() -> int:
        service = QueryService(config, runtime=runtime)
        server = await service.serve(args.host, args.port)
        host, port = server.sockets[0].getsockname()[:2]
        print(f"mycelium query service on {host}:{port}")
        print(
            f"  deployment: people={config.people} "
            f"epsilon-budget={config.total_epsilon} "
            f"max-batch={config.max_batch} "
            f"max-inflight={config.max_inflight}"
        )
        print(f"  round journals under {service.directory}")
        print("  Ctrl-C drains in-flight rounds and exits")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            print("draining…")
            await service.shutdown()
            stats = service.stats()
            budget = stats["budget"]
            print(
                f"served {stats['admitted']} queries over "
                f"{stats['scheduler']['rounds']} rounds; "
                f"epsilon spent {budget['spent']:.3f}/"
                f"{budget['total_epsilon']} "
                f"(ledger conserved: {budget['conserved']})"
            )
        return 0

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:
        return 0


def cmd_adversary(args: argparse.Namespace) -> int:
    from repro import telemetry
    from repro.adversary import PROFILES, get_profile, run_survivability

    if args.list:
        for profile in PROFILES.values():
            print(f"{profile.name:<24} {profile.description}")
        return 0
    profile = get_profile(args.profile)
    intensities = tuple(
        float(x) for x in args.intensities.split(",") if x.strip()
    )
    telemetry.enable()
    try:
        report = run_survivability(
            profile,
            seed=args.seed,
            num_devices=args.people,
            num_queries=args.queries,
            intensities=intensities,
            epsilon=args.epsilon,
            log=lambda message: print(message, flush=True),
        )
    finally:
        if args.trace:
            telemetry.export_jsonl(args.trace)
            print(f"telemetry trace written to {args.trace}")
        telemetry.disable()
    if args.json:
        import json

        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.summary())
    return 0 if report.survived else 1


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.audit.runner import run_audit, run_self_test

    def log(message: str) -> None:
        print(message, flush=True)

    if args.self_test:
        report = run_self_test(log=log)
        print(report.summary())
        return 0 if report.passed else 1
    if args.replay:
        from repro.audit.replay import load_bundle
        from repro.audit.runner import run_single_case

        bundle = load_bundle(args.replay)
        case = bundle.reproducer
        print(
            f"replaying {args.replay}: seed={bundle.master_seed} "
            f"trial={bundle.trial_index} kind={case.kind}"
            + (" (shrunk reproducer)" if bundle.shrunk is not None else "")
        )
        outcome = run_single_case(case)
        for check in outcome.checks:
            print(f"  {check}")
        return 0 if outcome.passed else 1
    kinds = None
    if args.kinds:
        kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    report = run_audit(
        args.seed,
        args.trials,
        shrink=args.shrink,
        bundle_dir=args.bundle_dir,
        log=log,
        kinds=kinds,
    )
    print(report.summary())
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mycelium reproduction: private distributed graph queries",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("catalog", help="list the Figure 2 query catalog").set_defaults(
        fn=cmd_catalog
    )

    run = sub.add_parser("run", help="run a query over a synthetic workload")
    run.add_argument("query", help="catalog id (Q1..Q10) or query text")
    run.add_argument("--people", type=int, default=14)
    run.add_argument("--degree", type=int, default=3)
    run.add_argument("--epsilon", type=float, default=1.0)
    run.add_argument("--seed", type=int, default=7)
    run.add_argument("--noiseless", action="store_true")
    run.add_argument(
        "--backend", default=None,
        help="compute backend: pure, numpy, or auto (default: "
        "$MYCELIUM_BACKEND or auto)",
    )
    run.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for parallel stages (default: "
        "$MYCELIUM_WORKERS or 1); results are identical at any count",
    )
    run.set_defaults(fn=cmd_run)

    bench = sub.add_parser(
        "bench",
        help="time the ring-multiply hot path per backend and worker count",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="small ring and short sweep (seconds, not minutes)",
    )
    bench.set_defaults(fn=cmd_bench)

    sub.add_parser(
        "figures", help="print the evaluation-figure series"
    ).set_defaults(fn=cmd_figures)

    schedule = sub.add_parser(
        "schedule", help="show a query's C-round timeline"
    )
    schedule.add_argument("query", help="catalog id (Q1..Q10) or query text")
    schedule.add_argument("--hops", type=int, default=3)
    schedule.add_argument("--reuse-paths", action="store_true")
    schedule.set_defaults(fn=cmd_schedule)

    demo = sub.add_parser("demo", help="full-stack query over the mixnet")
    demo.add_argument("--people", type=int, default=10)
    demo.add_argument("--seed", type=int, default=91)
    demo.set_defaults(fn=cmd_demo)

    chaos = sub.add_parser(
        "chaos",
        help="run one faulted query end-to-end and print the RecoveryReport",
    )
    chaos.add_argument("--people", type=int, default=10)
    chaos.add_argument(
        "--failure", type=float, default=0.1,
        help="overall fault intensity in [0, 1] (split across churn and "
        "wire drop/delay/corrupt rates)",
    )
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--epsilon", type=float, default=1.0)
    chaos.add_argument(
        "--trace", help="write the telemetry JSONL trace to this path"
    )
    chaos.set_defaults(fn=cmd_chaos)

    campaign = sub.add_parser(
        "campaign",
        help="durable multi-query campaign with write-ahead journal, "
        "crash/resume, and committee epoch lifecycle",
    )
    campaign.add_argument(
        "--dir", required=True,
        help="campaign directory (holds journal.jsonl + checkpoints)",
    )
    campaign.add_argument(
        "--resume", action="store_true",
        help="resume a crashed campaign from its journal",
    )
    campaign.add_argument("--seed", type=int, default=7)
    campaign.add_argument("--people", type=int, default=12)
    campaign.add_argument("--degree", type=int, default=3)
    campaign.add_argument(
        "--num-queries", type=int, default=3,
        help="length of the default epidemic campaign cycle",
    )
    campaign.add_argument(
        "--queries", nargs="*", default=None,
        help="explicit catalog ids overriding the default cycle",
    )
    campaign.add_argument("--epsilon", type=float, default=0.5)
    campaign.add_argument("--total-epsilon", type=float, default=10.0)
    campaign.add_argument(
        "--rotate-every", type=int, default=1,
        help="scheduled VSR handoff after every k-th query (0 = never)",
    )
    campaign.add_argument(
        "--churn", type=float, default=0.0,
        help="random device churn fraction per fault-plan window",
    )
    campaign.add_argument("--fault-seed", type=int, default=0)
    campaign.add_argument(
        "--committee-churn-members", type=int, default=0,
        help="knock this many genesis committee members offline "
        "(deterministic emergency-reshare scenario)",
    )
    campaign.add_argument("--committee-churn-start", type=int, default=0)
    campaign.add_argument("--committee-churn-rounds", type=int, default=40)
    campaign.add_argument(
        "--committee-size", type=int, default=3,
        help="members per committee epoch",
    )
    campaign.add_argument(
        "--committee-threshold", type=int, default=2,
        help="Shamir threshold for the committee key sharing",
    )
    campaign.add_argument(
        "--committee-corrupt-members", type=int, default=0,
        help="make this many genesis committee members submit corrupted "
        "partial decryptions (robust decode corrects and flags them)",
    )
    campaign.add_argument(
        "--checkpoint-every", type=int, default=1,
        help="sidecar checkpoint cadence in completed queries (0 = never)",
    )
    campaign.add_argument(
        "--kill-at", default=None, metavar="PHASE[:QUERY]",
        help="crash the coordinator right after this phase's journal "
        f"record is durable (exit code {CRASH_EXIT_CODE})",
    )
    campaign.add_argument(
        "--kill-before", default=None, metavar="PHASE[:QUERY]",
        help="crash after computing the phase but before its record is "
        "written (exercises the re-run path)",
    )
    campaign.add_argument(
        "--no-fsync", action="store_true",
        help="skip the per-record fsync barrier (benchmarking only)",
    )
    campaign.add_argument("--backend", default=None)
    campaign.add_argument("--workers", type=int, default=None)
    campaign.add_argument(
        "--shards", type=int, default=None,
        help="aggregator shard count (K): verify/sum origins in K "
        "independent shards with a claim-checked root reduction; "
        "results are bit-identical at any K (docs/SHARDING.md)",
    )
    campaign.set_defaults(fn=cmd_campaign)

    precompute = sub.add_parser(
        "precompute",
        help="journaled offline phase: materialize encryption-randomness "
        "pools, dummy streams, relin key pieces, and NTT tables for an "
        "upcoming campaign (docs/PERFORMANCE.md)",
    )
    precompute.add_argument(
        "--dir", required=True,
        help="precompute directory (journal.jsonl + binary artifacts)",
    )
    precompute.add_argument(
        "--resume", action="store_true",
        help="resume a crashed precompute from its journal "
        "(bit-identical to an uninterrupted run)",
    )
    precompute.add_argument(
        "--seed", type=int, default=7,
        help="campaign master seed the artifacts are derived for",
    )
    precompute.add_argument("--people", type=int, default=12)
    precompute.add_argument(
        "--degree", type=int, default=3,
        help="degree bound of the target campaign (fixes the mirrored "
        "relinearization key derivation)",
    )
    precompute.add_argument(
        "--num-queries", type=int, default=3,
        help="pool randomness for this many upcoming queries",
    )
    precompute.add_argument(
        "--entries", type=int, default=8,
        help="encryption-randomness entries per (query, origin) pool",
    )
    precompute.add_argument(
        "--relin-powers", type=int, default=0,
        help="prepare relin key pieces for powers 2..N (0 = skip)",
    )
    precompute.add_argument(
        "--dummy-seed", type=int, default=None,
        help="also materialize dummy-onion byte streams from this seed",
    )
    precompute.add_argument(
        "--dummy-devices", type=int, default=0,
        help="dummy streams for devices 0..N-1 (needs --dummy-seed)",
    )
    precompute.add_argument("--dummy-blocks", type=int, default=1)
    precompute.add_argument(
        "--kill-at", default=None, metavar="POINT:UNIT",
        help="crash at a unit boundary, e.g. before:enc-0-1 or "
        f"after:relin-2 (exit code {CRASH_EXIT_CODE})",
    )
    precompute.add_argument(
        "--no-fsync", action="store_true",
        help="skip the per-record fsync barrier (benchmarking only)",
    )
    precompute.set_defaults(fn=cmd_precompute)

    serve = sub.add_parser(
        "serve",
        help="long-lived asyncio query service: budget-gated admission, "
        "batched journaled rounds, localhost frame protocol "
        "(docs/SERVICE.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7844,
        help="listening port (0 picks a free port and prints it)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=64,
        help="bound of the admission queue; submissions past this get a "
        "queue_full rejection (backpressure)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=4,
        help="most submissions batched into one scheduled round",
    )
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--people", type=int, default=8)
    serve.add_argument("--degree", type=int, default=3)
    serve.add_argument(
        "--total-epsilon", type=float, default=10.0,
        help="the deployment's epsilon ledger; admission rejects past it",
    )
    serve.add_argument(
        "--rotate-every", type=int, default=0,
        help="VSR handoff cadence inside each round's campaign (0 = never)",
    )
    serve.add_argument(
        "--dir", default=None,
        help="root for per-round campaign journals (default: a tempdir)",
    )
    serve.add_argument(
        "--no-fsync", action="store_true",
        help="skip per-record journal fsync (benchmarking only)",
    )
    serve.add_argument(
        "--deadline-seconds", type=float, default=None,
        help="default per-query deadline, enforced end to end; a "
        "submission may override it (docs/SERVICE.md)",
    )
    serve.add_argument("--backend", default=None)
    serve.add_argument("--workers", type=int, default=None)
    serve.add_argument(
        "--shards", type=int, default=None,
        help="aggregator shard count for every served round "
        "(docs/SHARDING.md); results are bit-identical at any K",
    )
    serve.set_defaults(fn=cmd_serve)

    audit = sub.add_parser(
        "audit",
        help="seeded differential-testing / invariant-audit harness "
        "(encrypted vs plaintext oracle, budget, sensitivity, Shamir, "
        "mixnet invariants)",
    )
    audit.add_argument("--seed", type=int, default=0)
    audit.add_argument("--trials", type=int, default=50)
    audit.add_argument(
        "--shrink", action="store_true",
        help="minimize any failing case to a small reproducer",
    )
    audit.add_argument(
        "--bundle-dir", default=None,
        help="write a JSON replay bundle per failure into this directory",
    )
    audit.add_argument(
        "--replay", default=None, metavar="BUNDLE",
        help="re-run the reproducer from a replay bundle and exit",
    )
    audit.add_argument(
        "--self-test", action="store_true",
        help="inject the known mutants and verify the harness catches "
        "every one",
    )
    audit.add_argument(
        "--kinds", default=None, metavar="KIND[,KIND...]",
        help="restrict the run to these trial families, round-robin "
        "(e.g. byzantine_survival,quarantine_soundness)",
    )
    audit.set_defaults(fn=cmd_audit)

    adversary = sub.add_parser(
        "adversary",
        help="sweep a seeded Byzantine attack profile across intensities "
        "and report survivability: goodput vs the Figure 5c model, "
        "quarantines, and answer exactness (docs/RESILIENCE.md)",
    )
    adversary.add_argument(
        "--profile", default="combined",
        help="attack profile name (see --list)",
    )
    adversary.add_argument(
        "--list", action="store_true",
        help="list the built-in attack profiles and exit",
    )
    adversary.add_argument(
        "--intensities", default="0,0.5,1,1.5",
        help="comma-separated intensity multipliers to sweep",
    )
    adversary.add_argument("--seed", type=int, default=7)
    adversary.add_argument("--people", type=int, default=10)
    adversary.add_argument(
        "--queries", type=int, default=3,
        help="queries per sweep point (the honest workload)",
    )
    adversary.add_argument("--epsilon", type=float, default=0.5)
    adversary.add_argument(
        "--json", action="store_true",
        help="print the full report as JSON instead of the summary",
    )
    adversary.add_argument(
        "--trace", help="write the telemetry JSONL trace to this path"
    )
    adversary.set_defaults(fn=cmd_adversary)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.runtime import RuntimeConfig, set_runtime_config

    # Every subcommand honors MYCELIUM_WORKERS / MYCELIUM_BACKEND;
    # explicit flags (e.g. `run --workers`) still win over these.
    set_runtime_config(RuntimeConfig.from_env())
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
