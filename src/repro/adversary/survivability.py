"""Attack-intensity sweep: goodput and accuracy under Byzantine load.

``run_survivability`` drives the full in-process pipeline (submit →
aggregate → threshold-decrypt → release) against one attack profile at
a range of intensities, with the suspicion ledger quarantining repeat
offenders between queries.  Every point records:

* **goodput** — the fraction of honest-device contributions that made
  it into the released answer, against the Figure 5(c) delivery model
  at the equivalent effective loss rate;
* **accuracy** — whether every completed query matched the degraded
  plaintext oracle bit-for-bit (the attacker may remove its *own* data,
  never corrupt an honest device's);
* **quarantine** — which origins the ledger demoted, and that no honest
  origin was ever flagged;
* **committee** — for equivocating profiles, that robust decode flagged
  exactly the corrupt members and still landed on the exact plaintext.

Everything derives from ``(seed, profile)``; the same pair replays the
same report bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import telemetry
from repro.adversary.profiles import AttackProfile
from repro.adversary.quarantine import SuspicionLedger
from repro.analysis.goodput import message_success
from repro.core import committee as committee_mod
from repro.core.system import MyceliumSystem
from repro.crypto import bgv
from repro.engine import histogram as histogram_mod
from repro.engine import plaintext as plaintext_mod
from repro.errors import MyceliumError, RobustDecodingError
from repro.params import SystemParameters
from repro.query.schema import scaled_schema
from repro.runtime import derive_rng
from repro.workloads.epidemic import run_epidemic
from repro.workloads.graphgen import generate_household_graph

#: The honest workload every sweep runs (one-hop: the degraded oracle
#: covers faults exactly at one hop).
SURVIVABILITY_QUERY = "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE dest.inf"


@dataclass(frozen=True)
class SurvivabilityPoint:
    """One (profile, intensity) measurement."""

    intensity: float
    num_devices: int
    attackers: tuple[int, ...]
    queries_total: int
    queries_completed: int
    #: Queries whose released counts matched the degraded oracle exactly.
    queries_exact: int
    #: Honest-device contribution slots lost to churn, summed over queries.
    churned_slots: int
    quarantined: tuple[int, ...]
    #: Empirical honest goodput: accepted honest contributions / honest
    #: contribution slots.
    goodput: float
    #: Figure 5(c) delivery model at the equivalent effective loss.
    model_goodput: float
    #: Committee equivocation probe (0/0/True when not applicable).
    committee_corrupt: int = 0
    committee_flagged: int = 0
    committee_exact: bool = True

    @property
    def honest_devices(self) -> int:
        return self.num_devices - len(self.attackers)

    @property
    def survived(self) -> bool:
        """The defense held: every query completed exactly, quarantine
        stayed inside the attacker set, goodput met the benign model,
        and the committee probe (if any) decoded exactly."""
        return (
            self.queries_completed == self.queries_total
            and self.queries_exact == self.queries_total
            and set(self.quarantined) <= set(self.attackers)
            and self.goodput >= self.model_goodput - 1e-12
            and self.committee_exact
        )


@dataclass
class SurvivabilityReport:
    """Attack intensity vs goodput/accuracy for one profile."""

    profile: str
    seed: int
    num_devices: int
    num_queries: int
    points: list[SurvivabilityPoint] = field(default_factory=list)

    @property
    def survived(self) -> bool:
        return all(p.survived for p in self.points)

    def to_json(self) -> dict:
        return {
            "profile": self.profile,
            "seed": self.seed,
            "num_devices": self.num_devices,
            "num_queries": self.num_queries,
            "survived": self.survived,
            "points": [
                {
                    "intensity": p.intensity,
                    "attackers": list(p.attackers),
                    "queries_total": p.queries_total,
                    "queries_completed": p.queries_completed,
                    "queries_exact": p.queries_exact,
                    "churned_slots": p.churned_slots,
                    "quarantined": list(p.quarantined),
                    "goodput": p.goodput,
                    "model_goodput": p.model_goodput,
                    "committee_corrupt": p.committee_corrupt,
                    "committee_flagged": p.committee_flagged,
                    "committee_exact": p.committee_exact,
                    "survived": p.survived,
                }
                for p in self.points
            ],
        }

    def summary(self) -> str:
        lines = [
            f"survivability: profile={self.profile} seed={self.seed} "
            f"devices={self.num_devices} queries/point={self.num_queries} "
            f"=> {'SURVIVED' if self.survived else 'DEGRADED'}",
            "  intensity  attackers  quarantined  goodput  model   exact",
        ]
        for p in self.points:
            lines.append(
                f"  {p.intensity:9.2f}  {len(p.attackers):9d}  "
                f"{len(p.quarantined):11d}  {p.goodput:7.3f}  "
                f"{p.model_goodput:5.3f}  {p.queries_exact}/{p.queries_total}"
            )
        return "\n".join(lines)


def _decoded_counts(result) -> list[list[int]]:
    return [[int(round(c)) for c in g.counts] for g in result.groups]


def _expected_counts(plan, expectation) -> list[list[int]]:
    return [
        [int(c) for c in g.counts]
        for g in histogram_mod.decode_histogram(
            list(expectation.coefficients), plan
        )
    ]


def _committee_probe(
    system: MyceliumSystem, profile: AttackProfile, seed: int
) -> tuple[int, int, bool]:
    """Equivocating-partial check: robust decode must flag exactly the
    corrupt members and still produce the exact plaintext."""
    member_ids = tuple(m.device_id for m in system.committee.members)
    corrupt = set(profile.corrupt_members(member_ids))
    if not corrupt:
        return 0, 0, True
    rng = derive_rng(seed, "adversary", profile.name, "probe")
    exponent = rng.randrange(system.profile.n)
    ciphertext = bgv.encrypt_monomial(system.public_key, exponent, rng)
    oracle = bgv.decrypt(system._genesis_secret, ciphertext)
    radius = (len(member_ids) - system.committee.threshold) // 2
    try:
        plain, flagged = committee_mod.robust_threshold_decrypt(
            system.committee,
            ciphertext,
            derive_rng(seed, "adversary", profile.name, "probe-decrypt"),
            corrupt_members=corrupt,
        )
    except RobustDecodingError:
        # Past the unique decoding radius the specified behaviour is a
        # typed refusal, never a silently wrong plaintext (the
        # RESILIENCE.md tolerance table) — the defense held, so the
        # point survives; within the radius a refusal is a failure.
        return len(corrupt), 0, len(corrupt) > radius
    exact = tuple(plain.coeffs) == tuple(oracle.coeffs) and flagged == corrupt
    return len(corrupt), len(flagged), exact


def run_survivability(
    profile: AttackProfile,
    seed: int,
    num_devices: int = 10,
    num_queries: int = 3,
    intensities: tuple[float, ...] = (0.0, 0.5, 1.0, 1.5),
    epsilon: float = 0.5,
    log=None,
) -> SurvivabilityReport:
    """Sweep one profile across ``intensities``; see the module docstring."""
    report = SurvivabilityReport(
        profile=profile.name,
        seed=seed,
        num_devices=num_devices,
        num_queries=num_queries,
    )
    with telemetry.span(
        "adversary.sweep", profile=profile.name, seed=seed
    ):
        for index, intensity in enumerate(intensities):
            point = _run_point(
                profile.scaled(intensity), seed, index, num_devices,
                num_queries, epsilon,
            )
            report.points.append(point)
            if log is not None:
                log(
                    f"adversary: {profile.name} intensity={intensity:g} "
                    f"goodput={point.goodput:.3f} "
                    f"quarantined={len(point.quarantined)}"
                )
    return report


def _run_point(
    scaled: AttackProfile,
    seed: int,
    index: int,
    num_devices: int,
    num_queries: int,
    epsilon: float,
) -> SurvivabilityPoint:
    graph_rng = derive_rng(seed, "adversary", scaled.name, "graph", index)
    graph = generate_household_graph(
        num_devices, degree_bound=2, rng=graph_rng, external_contacts=1
    )
    run_epidemic(graph, graph_rng)
    # Clamp edge magnitudes into the scaled schema's domain, exactly as
    # the mixnet audit trial does.
    for u in range(graph.num_vertices):
        for v in graph.neighbors(u):
            edge = graph.edge(u, v)
            edge["duration"] = min(edge["duration"], 20)
            edge["contacts"] = min(edge["contacts"], 8)
    n = graph.num_vertices
    params = SystemParameters(
        num_devices=n, degree_bound=2, hops=2, replicas=2,
        forwarder_fraction=0.3,
    )
    sys_seed = derive_rng(seed, "adversary", scaled.name, "system", index)
    system = MyceliumSystem.setup(
        num_devices=n,
        rng=random.Random(sys_seed.getrandbits(48)),
        params=params,
        schema=scaled_schema(),
        committee_size=5,
        committee_threshold=2,
        total_epsilon=max(10.0, num_queries * epsilon + 1.0),
    )
    behaviors = scaled.behaviors_for(seed, n)
    attackers = tuple(sorted(behaviors))
    honest = tuple(d for d in range(n) if d not in behaviors)
    ledger = SuspicionLedger()

    completed = 0
    exact = 0
    churned_slots = 0
    accepted_honest = 0
    for q in range(num_queries):
        churned = set(
            scaled.churn_for_round(seed, q, honest)
        )
        churned_slots += len(churned)
        quarantined = set(ledger.quarantined)
        try:
            result = system.run_query(
                SURVIVABILITY_QUERY,
                graph,
                epsilon=epsilon,
                behaviors=behaviors,
                offline=set(churned),
                noiseless=True,
                quarantined=quarantined,
            )
        except MyceliumError:
            telemetry.count("adversary.queries.failed")
            continue
        completed += 1
        ledger.record_rejections(result.metadata.byzantine_origins)
        plan = system.compile(SURVIVABILITY_QUERY)
        expectation = plaintext_mod.expected_under_faults(
            plan,
            graph,
            offline=churned | quarantined,
            behaviors=behaviors,
        )
        if _decoded_counts(result) == _expected_counts(plan, expectation):
            exact += 1
        accepted_honest += len(honest) - len(churned)

    honest_slots = len(honest) * num_queries
    goodput = accepted_honest / honest_slots if honest_slots else 1.0
    effective_loss = churned_slots / honest_slots if honest_slots else 0.0
    # In-process transport delivers directly (one hop, one replica), so
    # Figure 5(c) collapses to 1 - f at the empirical loss rate.
    model = message_success(1, 1, effective_loss)
    corrupt, flagged, committee_exact = _committee_probe(
        system, scaled, seed
    )
    return SurvivabilityPoint(
        intensity=scaled.intensity,
        num_devices=n,
        attackers=attackers,
        queries_total=num_queries,
        queries_completed=completed,
        queries_exact=exact,
        churned_slots=churned_slots,
        quarantined=ledger.quarantined,
        goodput=goodput,
        model_goodput=model,
        committee_corrupt=corrupt,
        committee_flagged=flagged,
        committee_exact=committee_exact,
    )
