"""Seeded Byzantine adversary engine and the defenses that survive it.

* :mod:`repro.adversary.profiles` — composable attack profiles
  (malformed-proof waves, equivocating committee partials, claim
  tampering, phase-locked churn bursts), all derived from one seed and
  expressible as :class:`repro.faults.FaultPlan` schedules.
* :mod:`repro.adversary.quarantine` — the per-origin suspicion ledger
  that demotes repeat proof-failers to quarantine.
* :mod:`repro.adversary.survivability` — the intensity sweep producing
  a :class:`SurvivabilityReport` (goodput/accuracy vs attack intensity)
  behind ``python -m repro adversary``.

See docs/RESILIENCE.md for the threat-model table mapping each
adversary class to its defense, guarantee, and audit trial kind.
"""

from repro.adversary.profiles import PROFILES, AttackProfile, get_profile
from repro.adversary.quarantine import SuspicionLedger
from repro.adversary.survivability import (
    SurvivabilityPoint,
    SurvivabilityReport,
    run_survivability,
)

__all__ = [
    "PROFILES",
    "AttackProfile",
    "get_profile",
    "SuspicionLedger",
    "SurvivabilityPoint",
    "SurvivabilityReport",
    "run_survivability",
]
