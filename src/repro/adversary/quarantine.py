"""Per-origin suspicion ledger and quarantine (docs/RESILIENCE.md).

The aggregator already rejects a submission whose aggregation proof
fails (§4.6) — but rejection alone lets a Byzantine device burn
verification time on every query forever.  The suspicion ledger closes
the loop: each rejection increments the origin's suspicion count, and
an origin rejected ``threshold`` times is *quarantined* — subsequent
queries treat it as offline, so its contribution defaults to
``Enc(x^0)`` and the aggregator never sees (or verifies) its proofs
again.  Quarantined origins are reported in ``QueryResult`` metadata.

Soundness matters more than liveness here: an honest device's proofs
always verify, so an honest origin is *never* rejected and therefore
never accumulates suspicion — the ``quarantine_soundness`` audit kind
asserts exactly this, and the ``unquarantined-attacker`` mutant patches
:meth:`SuspicionLedger.record_rejections` to a no-op to prove the audit
notices when the ledger stops doing its job.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import telemetry

#: Rejections before an origin is quarantined.  Two, not one: a single
#: rejection could in principle be a transient (e.g. a corrupted wire
#: frame that fails verification); a repeat offender is demoted.
DEFAULT_THRESHOLD = 2


@dataclass
class SuspicionLedger:
    """Counts proof rejections per origin and quarantines repeat offenders.

    The ledger is deliberately monotone: suspicion only accumulates and
    quarantine is never lifted within a ledger's lifetime.  Parole would
    reopen the verification-burn attack the quarantine exists to stop;
    operators reset by constructing a fresh ledger.
    """

    threshold: int = DEFAULT_THRESHOLD
    suspicion: dict[int, int] = field(default_factory=dict)
    _quarantined: set[int] = field(default_factory=set)

    def record_rejections(self, rejected) -> tuple[int, ...]:
        """Charge one suspicion point per rejected origin; returns the
        origins newly quarantined by this call (sorted)."""
        newly = []
        for origin in rejected:
            if origin in self._quarantined:
                continue
            count = self.suspicion.get(origin, 0) + 1
            self.suspicion[origin] = count
            telemetry.count("adversary.suspicion.total")
            if count >= self.threshold:
                self._quarantined.add(origin)
                newly.append(origin)
                telemetry.count("adversary.quarantined.total")
        return tuple(sorted(newly))

    def is_quarantined(self, origin: int) -> bool:
        return origin in self._quarantined

    @property
    def quarantined(self) -> tuple[int, ...]:
        """All currently quarantined origins (sorted)."""
        return tuple(sorted(self._quarantined))

    def snapshot(self) -> dict:
        """JSON-friendly state: suspicion counts plus the quarantine set."""
        return {
            "threshold": self.threshold,
            "suspicion": dict(sorted(self.suspicion.items())),
            "quarantined": list(self.quarantined),
        }
