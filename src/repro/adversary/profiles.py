"""Composable, seeded Byzantine attack profiles.

An :class:`AttackProfile` is pure data: which fraction of devices turns
malicious (and with which behaviours), how many committee members
equivocate in their partial decryptions, and how churn bursts are
phase-locked to round boundaries.  Every concrete schedule is derived
from ``(seed, profile name)`` via :func:`repro.runtime.derive_rng`, and
the churn/committee side is expressed as a plain
:class:`repro.faults.FaultPlan` — so an attack run replays bit-for-bit
through the exact same injector machinery as the benign chaos layer
(PR 2), and profiles compose with wire faults by construction.

The built-in profiles (``PROFILES``) cover the ISSUE's four adversary
classes: malformed/invalid-proof device waves, equivocating committee
partials, colluding aggregators tampering their claims, and adversarial
churn bursts timed against epoch handoffs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.engine.malicious import Behavior
from repro.errors import ParameterError
from repro.faults.plan import ChurnWindow, FaultKind, FaultPlan
from repro.runtime import derive_rng

#: Behaviours a malformed-wave attacker may be assigned.  All are
#: detectable (the ZKP layer rejects them); LIE_IN_RANGE is excluded
#: because it is undetectable by design and has no exact oracle (§4.7).
MALFORMED_POOL = (
    Behavior.FORGED_PROOF,
    Behavior.OVERSIZED_EXPONENT,
    Behavior.MULTI_COEFFICIENT,
    Behavior.LARGE_COEFFICIENT,
)


@dataclass(frozen=True)
class AttackProfile:
    """One composable adversary configuration.

    ``intensity`` scales the attack linearly (fractions and committee
    corruption multiply by it, capped so at least one honest device and
    a decodable committee always remain — the adversary controls *at
    most* the MC-assumption share, never the whole population).
    """

    name: str
    description: str
    #: Fraction of devices that turn Byzantine (at intensity 1.0).
    malformed_fraction: float = 0.0
    #: Behaviours drawn (seeded, uniformly) for each attacker.
    behaviors_pool: tuple[Behavior, ...] = ()
    #: Committee members returning equivocating (corrupted) partials.
    equivocating_committee: int = 0
    #: Fraction of devices yanked offline in each churn burst.
    churn_burst_fraction: float = 0.0
    #: How many C-rounds each phase-locked burst lasts.
    churn_burst_rounds: int = 0
    intensity: float = 1.0

    def __post_init__(self) -> None:
        if self.intensity < 0:
            raise ParameterError("attack intensity must be >= 0")
        for fraction in (self.malformed_fraction, self.churn_burst_fraction):
            if not 0.0 <= fraction <= 1.0:
                raise ParameterError(f"fraction {fraction} outside [0, 1]")

    def scaled(self, intensity: float) -> AttackProfile:
        """The same attack at a different intensity."""
        return dataclasses.replace(self, intensity=intensity)

    # -- device-level attacks ------------------------------------------------

    def num_attackers(self, num_devices: int) -> int:
        """Attacker head-count: scaled fraction, at least one honest
        device always left standing."""
        effective = min(1.0, self.malformed_fraction * self.intensity)
        count = round(effective * num_devices)
        if effective > 0 and count == 0:
            count = 1
        return min(count, max(0, num_devices - 1))

    def behaviors_for(self, seed: int, num_devices: int) -> dict[int, Behavior]:
        """Seeded attacker assignment: which devices misbehave, and how."""
        if not self.behaviors_pool:
            return {}
        count = self.num_attackers(num_devices)
        if count == 0:
            return {}
        rng = derive_rng(seed, "adversary", self.name, "devices")
        attackers = sorted(rng.sample(range(num_devices), count))
        return {
            device: rng.choice(self.behaviors_pool) for device in attackers
        }

    # -- churn + committee, expressed as a FaultPlan -------------------------

    def churn_for_round(
        self, seed: int, round_index: int, candidates: tuple[int, ...]
    ) -> tuple[int, ...]:
        """Seeded per-round churn burst over ``candidates`` (honest
        devices, typically) — the in-process analogue of the
        phase-locked :class:`ChurnWindow` schedule."""
        effective = min(0.9, self.churn_burst_fraction * self.intensity)
        if effective <= 0 or not candidates:
            return ()
        rng = derive_rng(seed, "adversary", self.name, "churn", round_index)
        churned = tuple(d for d in candidates if rng.random() < effective)
        # Never churn the entire candidate set: the MC assumption keeps
        # a majority of devices honest *and online*.
        if len(churned) == len(candidates):
            churned = churned[:-1]
        return churned

    def corrupt_members(self, committee_members: tuple[int, ...]) -> tuple[int, ...]:
        """Which committee members equivocate — capped below the unique
        decoding radius is the *defense's* job, not the adversary's."""
        count = min(
            round(self.equivocating_committee * max(self.intensity, 0.0)),
            len(committee_members),
        )
        if self.equivocating_committee > 0 and self.intensity > 0:
            count = max(count, 1)
        return tuple(committee_members[:count])

    def fault_plan(
        self,
        seed: int,
        num_devices: int,
        round_boundaries: tuple[int, ...] = (),
        committee_members: tuple[int, ...] = (),
    ) -> FaultPlan:
        """The profile as a replayable fault schedule.

        Churn bursts open exactly at each round boundary (epoch handoff
        / campaign round start) and last ``churn_burst_rounds`` C-rounds
        — the adversary times its churn against the protocol's own
        schedule instead of drizzling it iid like the benign model.
        """
        plan_seed = derive_rng(seed, "adversary", self.name, "plan").getrandbits(48)
        windows: list[ChurnWindow] = []
        effective = min(0.9, self.churn_burst_fraction * self.intensity)
        if effective > 0 and self.churn_burst_rounds > 0:
            rng = derive_rng(seed, "adversary", self.name, "windows")
            for boundary in round_boundaries:
                for device_id in range(num_devices):
                    if rng.random() < effective:
                        windows.append(
                            ChurnWindow(
                                device_id=device_id,
                                start_round=boundary,
                                end_round=boundary + self.churn_burst_rounds,
                                kind=FaultKind.CHURN,
                            )
                        )
        return FaultPlan(
            seed=plan_seed,
            churn_windows=tuple(windows),
            corrupt_committee=self.corrupt_members(committee_members),
        )


#: The built-in attack library, keyed by profile name.
PROFILES: dict[str, AttackProfile] = {
    p.name: p
    for p in (
        AttackProfile(
            name="malformed-wave",
            description=(
                "A wave of devices submits malformed ciphertexts and "
                "invalid proofs (oversized exponents, multi-coefficient "
                "payloads, forged proofs)."
            ),
            malformed_fraction=0.25,
            behaviors_pool=MALFORMED_POOL,
        ),
        AttackProfile(
            name="equivocating-committee",
            description=(
                "A committee member returns equivocating partial "
                "decryptions; robust decode must flag it and still land "
                "on the exact plaintext."
            ),
            equivocating_committee=1,
        ),
        AttackProfile(
            name="claim-tamper",
            description=(
                "Colluding aggregator-side origins tamper their "
                "aggregation claims (submitted ciphertext is not the "
                "product of the declared inputs)."
            ),
            malformed_fraction=0.2,
            behaviors_pool=(Behavior.BAD_AGGREGATION,),
        ),
        AttackProfile(
            name="churn-burst",
            description=(
                "Adversarial churn bursts phase-locked to epoch "
                "handoffs and round boundaries."
            ),
            churn_burst_fraction=0.3,
            churn_burst_rounds=4,
        ),
        AttackProfile(
            name="combined",
            description=(
                "All of the above at once: malformed wave + committee "
                "equivocation + claim tampering + phase-locked churn."
            ),
            malformed_fraction=0.2,
            behaviors_pool=MALFORMED_POOL + (Behavior.BAD_AGGREGATION,),
            equivocating_committee=1,
            churn_burst_fraction=0.2,
            churn_burst_rounds=4,
        ),
    )
}


def get_profile(name: str) -> AttackProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ParameterError(
            f"unknown attack profile {name!r}; "
            f"known: {', '.join(sorted(PROFILES))}"
        ) from None
