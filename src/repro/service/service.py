"""The long-lived asyncio query service (ROADMAP item 1).

``QueryService`` promotes the one-shot campaign runner into a persistent
server: analysts submit a *stream* of queries, a
:class:`~repro.service.scheduler.Scheduler` batches compatible queries
into rounds, each round executes as one write-ahead-journaled campaign,
and results stream back with latency/goodput percentiles.  Admission is
gated by the DP epsilon ledger through the
:class:`~repro.service.admission.AdmissionController`; the ledger is
the deployment's authoritative privacy budget, and its conservation is
an audited invariant.

Two client surfaces share one submission path:

* **in-process** — ``await service.submit("Q5", epsilon=0.5)`` from any
  coroutine in the same process (used by tests and the sustained-traffic
  benchmark);
* **socket** — ``await service.serve(host, port)`` speaks the
  length-prefixed JSON frame protocol of
  :mod:`repro.service.protocol`; :class:`repro.service.client.ServiceClient`
  is the reference client.  ``python -m repro serve`` wires this up.

Submission lifecycle (documented with its state machine in
``docs/SERVICE.md``)::

    received -> validated -> admitted -> queued -> batched -> done
                   |            |                     |
                   v            v                     v
               bad_query   budget/queue-full      round error
               (rejected)     (rejected)           (failed)

Shutdown is graceful by default: the service stops admitting, the
scheduler drains every queued round, and in-flight clients get their
results before ``shutdown()`` returns.
"""

from __future__ import annotations

import asyncio
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro import telemetry
from repro.dp.budget import PrivacyBudget
from repro.errors import QueueFullRejected, ServiceShutdown
from repro.offline.store import OfflineStore
from repro.params import SystemParameters
from repro.query.catalog import CATALOG
from repro.query.compiler import compile_query
from repro.query.parser import parse
from repro.query.schema import scaled_schema
from repro.runtime import RuntimeConfig
from repro.service import protocol
from repro.service.admission import AdmissionController
from repro.service.results import ResultStream
from repro.service.scheduler import SHUTDOWN, Scheduler, Submission


@dataclass(frozen=True)
class ServiceConfig:
    """Everything that defines one service deployment."""

    master_seed: int = 7
    people: int = 8
    degree: int = 3
    #: The deployment's total epsilon ledger (admission gate).
    total_epsilon: float = 10.0
    committee_size: int = 3
    committee_threshold: int = 2
    #: Scheduled VSR handoff cadence inside each round's campaign
    #: (0 = never; served rounds default to no rotation).
    rotate_every: int = 0
    #: Most submissions batched into one scheduled round.
    max_batch: int = 4
    #: Bound of the admission queue — backpressure past this depth.
    max_inflight: int = 64
    #: Root directory for per-round campaign journals (``round-NNNN/``);
    #: ``None`` uses a fresh temporary directory.
    directory: str | None = None
    #: Per-record fsync in the round journals (disable for benchmarks).
    fsync: bool = True
    #: Precompute ``pool_entries`` leaf-randomness entries per (query,
    #: origin) before each round (the offline/online split; see
    #: docs/PERFORMANCE.md).  The scheduler blocks the round on the
    #: refill and retires consumed pools afterwards.
    offline_pools: bool = False
    pool_entries: int = 8
    #: Default per-query deadline in seconds (``None`` = none); a
    #: submission may override it per request.  Enforced end to end:
    #: before the round launches (epsilon refunded) and after decode
    #: (answer withheld, epsilon stands) — docs/SERVICE.md.
    default_deadline_seconds: float | None = None
    #: How many aborted rounds a submission survives by re-queueing
    #: (blast-radius isolation; 1 = re-queue once with a fresh seed).
    max_round_retries: int = 1


class QueryService:
    """A persistent, budget-gated query service over one deployment."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        runtime: RuntimeConfig | None = None,
    ):
        self.config = config or ServiceConfig()
        self.runtime = runtime
        self.directory = Path(
            self.config.directory
            or tempfile.mkdtemp(prefix="mycelium-service-")
        )
        self.admission = AdmissionController(
            PrivacyBudget(total_epsilon=self.config.total_epsilon)
        )
        self.stream = ResultStream()
        self.queue: asyncio.Queue = asyncio.Queue(
            maxsize=max(1, self.config.max_inflight)
        )
        self.scheduler = Scheduler(
            self.queue,
            self.stream,
            self.directory,
            master_seed=self.config.master_seed,
            people=self.config.people,
            degree=self.config.degree,
            committee_size=self.config.committee_size,
            committee_threshold=self.config.committee_threshold,
            rotate_every=self.config.rotate_every,
            max_batch=self.config.max_batch,
            fsync=self.config.fsync,
            runtime=runtime,
            offline_store=(
                OfflineStore() if self.config.offline_pools else None
            ),
            pool_entries=self.config.pool_entries,
            admission=self.admission,
            max_retries=self.config.max_round_retries,
        )
        self._params = SystemParameters(
            num_devices=self.config.people,
            degree_bound=self.config.degree,
            hops=2,
            committee_size=self.config.committee_size,
            replicas=2,
            forwarder_fraction=0.3,
        )
        self._schema = scaled_schema()
        self._scheduler_task: asyncio.Task | None = None
        self._accepting = False
        self._server: asyncio.Server | None = None
        self.submissions_seen = 0
        self.inflight = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Start the scheduler loop; idempotent."""
        if self._scheduler_task is None or self._scheduler_task.done():
            self._scheduler_task = asyncio.ensure_future(
                self.scheduler.run()
            )
        self._accepting = True

    async def shutdown(self) -> None:
        """Stop admitting, drain every queued round, close the socket
        server.  In-flight submissions resolve before this returns."""
        self._accepting = False
        if self._scheduler_task is not None:
            await self.queue.put(SHUTDOWN)
            await self._scheduler_task
            self._scheduler_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def accepting(self) -> bool:
        return self._accepting

    # -- in-process client API ----------------------------------------------

    def _validate(self, query: str) -> str:
        """Resolve catalog ids and compile at the door, so malformed or
        infeasible queries are rejected before touching the ledger."""
        text = CATALOG[query].text if query in CATALOG else query
        compile_query(parse(text), self._params, self._schema)
        return text

    async def submit(
        self,
        query: str,
        epsilon: float,
        label: str | None = None,
        deadline_seconds: float | None = None,
    ) -> dict:
        """Submit one query; resolves when its round releases.

        Returns ``{"result": <released payload>, "latency_seconds": ...,
        "round": <int>}``.  Raises a typed error on rejection:
        :class:`~repro.errors.QueryError` (invalid/unsupported query),
        :class:`~repro.errors.BudgetRejected`,
        :class:`~repro.errors.QueueFullRejected`,
        :class:`~repro.errors.DeadlineExceeded` (per-query deadline
        expired anywhere along admission → campaign → decode), or
        :class:`~repro.errors.ServiceShutdown`.

        ``deadline_seconds`` overrides the config's default deadline for
        this submission (``None`` inherits the default; pass a
        non-positive value to fail immediately without charging).
        """
        from repro.errors import DeadlineExceeded

        self.submissions_seen += 1
        telemetry.count("service.submissions.total")
        if not self._accepting:
            raise ServiceShutdown("service is not accepting submissions")
        text = self._validate(query)
        label = label or query
        if deadline_seconds is None:
            deadline_seconds = self.config.default_deadline_seconds
        if deadline_seconds is not None and deadline_seconds <= 0:
            # Already expired at the door: reject before the ledger is
            # ever touched.
            telemetry.count("service.rejected.deadline")
            raise DeadlineExceeded(
                f"query {label!r} arrived with a non-positive deadline "
                f"({deadline_seconds}s)"
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        submission = Submission(
            text=text, epsilon=epsilon, label=label, future=future,
            deadline_seconds=deadline_seconds,
        )

        def enqueue() -> None:
            try:
                self.queue.put_nowait(submission)
            except asyncio.QueueFull:
                telemetry.count("service.rejected.queue_full")
                raise QueueFullRejected(
                    f"admission queue is full "
                    f"({self.config.max_inflight} in flight); retry later"
                ) from None
            self.inflight += 1
            telemetry.set_gauge("service.inflight", float(self.inflight))

        await self.admission.admit(epsilon, label, enqueue=enqueue)
        try:
            return await future
        finally:
            self.inflight -= 1
            telemetry.set_gauge("service.inflight", float(self.inflight))

    def stats(self) -> dict[str, Any]:
        """Operator snapshot: ledger, queue, rounds, and SLO numbers."""
        return {
            "accepting": self._accepting,
            "submissions": self.submissions_seen,
            "admitted": self.admission.admitted,
            "rejected_budget": self.admission.rejected_budget,
            "inflight": self.inflight,
            "budget": {
                "total_epsilon": self.admission.budget.total_epsilon,
                "spent": self.admission.spent,
                "remaining": self.admission.remaining,
                "ledger": [
                    [label, eps] for label, eps in self.admission.ledger()
                ],
                "conserved": self.admission.conserved(),
            },
            "scheduler": self.scheduler.stats(),
            "results": self.stream.summary(),
        }

    # -- socket server -------------------------------------------------------

    async def serve(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.Server:
        """Listen for frame-protocol clients; returns the live server
        (its first socket's port is ``server.sockets[0].getsockname()[1]``)."""
        await self.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        return self._server

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()

        async def respond(payload: dict) -> None:
            async with write_lock:
                await protocol.write_frame(writer, payload)

        async def handle_submit(request: dict) -> None:
            request_id = request.get("id")
            try:
                deadline = request.get("deadline_seconds")
                outcome = await self.submit(
                    str(request["query"]),
                    float(request["epsilon"]),
                    label=request.get("label"),
                    deadline_seconds=(
                        None if deadline is None else float(deadline)
                    ),
                )
            except Exception as exc:  # noqa: BLE001 - typed on the wire
                await respond(protocol.error_frame(request_id, exc))
            else:
                await respond(
                    {"type": "result", "id": request_id, **outcome}
                )

        try:
            while True:
                try:
                    request = await protocol.read_frame(reader)
                except protocol.FrameError as exc:
                    await respond(protocol.error_frame(None, exc))
                    break
                if request is None:
                    break
                kind = request.get("type")
                request_id = request.get("id")
                if kind == "submit":
                    # Per-request task: one slow round must not block
                    # this connection's later frames.
                    task = asyncio.ensure_future(handle_submit(request))
                    pending.add(task)
                    task.add_done_callback(pending.discard)
                elif kind == "stats":
                    await respond(
                        {
                            "type": "stats",
                            "id": request_id,
                            "stats": self.stats(),
                        }
                    )
                elif kind == "ping":
                    await respond({"type": "pong", "id": request_id})
                else:
                    await respond(
                        protocol.error_frame(
                            request_id,
                            protocol.FrameError(
                                f"unknown request type {kind!r}"
                            ),
                        )
                    )
        finally:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
