"""The reference frame-protocol client for the query service.

``ServiceClient`` multiplexes any number of concurrent ``submit`` calls
over one localhost connection: every request carries a client-assigned
``id``, a background reader task dispatches response frames to the
matching awaiting future, and server-side error frames are re-raised as
the same typed exceptions the in-process API throws (see
:data:`repro.service.protocol.ERROR_CODES`).

Usage (also in ``docs/SERVICE.md``)::

    client = await ServiceClient.connect("127.0.0.1", 7844)
    try:
        outcome = await client.submit("Q5", epsilon=0.5)
        print(outcome["result"], outcome["latency_seconds"])
    finally:
        await client.close()

Because responses are matched by id, a batch of submissions can ride
one connection::

    outcomes = await asyncio.gather(
        *(client.submit("Q5", epsilon=0.25) for _ in range(4)),
        return_exceptions=True,   # budget rejections arrive as exceptions
    )
"""

from __future__ import annotations

import asyncio
import itertools

from repro.errors import ClientTimeout, ServiceError
from repro.service import protocol


class ServiceClient:
    """One multiplexed frame-protocol connection to a QueryService.

    ``read_timeout`` bounds how long any one request waits for its
    response frame; ``connect`` takes a separate ``connect_timeout``.
    Both raise the typed :class:`~repro.errors.ClientTimeout` instead of
    hanging forever on a dead or wedged server socket.  ``None`` (the
    default) preserves the wait-forever behaviour for interactive use.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        read_timeout: float | None = None,
    ):
        self._reader = reader
        self._writer = writer
        self._read_timeout = read_timeout
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 7844,
        connect_timeout: float | None = None,
        read_timeout: float | None = None,
    ) -> "ServiceClient":
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), connect_timeout
            )
        except asyncio.TimeoutError:
            raise ClientTimeout(
                f"connecting to {host}:{port} exceeded "
                f"{connect_timeout}s"
            ) from None
        return cls(reader, writer, read_timeout=read_timeout)

    # -- request plumbing ----------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await protocol.read_frame(self._reader)
                if frame is None:
                    break
                future = self._pending.pop(frame.get("id"), None)
                if future is None or future.done():
                    continue
                if frame.get("type") == "error":
                    future.set_exception(
                        protocol.exception_for_code(
                            frame.get("code", "service_error"),
                            frame.get("message", ""),
                        )
                    )
                else:
                    future.set_result(frame)
        except Exception as exc:  # noqa: BLE001 - fan out to waiters
            self._fail_pending(exc)
        else:
            self._fail_pending(
                ServiceError("connection closed by the server")
            )

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def _request(self, payload: dict) -> dict:
        request_id = next(self._ids)
        payload = {**payload, "id": request_id}
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        async with self._write_lock:
            await protocol.write_frame(self._writer, payload)
        if self._read_timeout is None:
            return await future
        try:
            return await asyncio.wait_for(future, self._read_timeout)
        except asyncio.TimeoutError:
            # The response may still arrive later; drop the slot so a
            # late frame is discarded instead of resolving a future
            # nobody awaits.
            self._pending.pop(request_id, None)
            raise ClientTimeout(
                f"request {request_id} ({payload.get('type')}) got no "
                f"response within {self._read_timeout}s"
            ) from None

    # -- the client surface --------------------------------------------------

    async def submit(
        self,
        query: str,
        epsilon: float,
        label: str | None = None,
        deadline_seconds: float | None = None,
    ) -> dict:
        """Submit one query; returns the same outcome dict as
        :meth:`repro.service.service.QueryService.submit`, or raises the
        typed rejection the server sent."""
        payload = {"type": "submit", "query": query, "epsilon": epsilon}
        if label is not None:
            payload["label"] = label
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        frame = await self._request(payload)
        return {
            "result": frame["result"],
            "latency_seconds": frame["latency_seconds"],
            "round": frame["round"],
        }

    async def stats(self) -> dict:
        """The server's operator snapshot (ledger, rounds, percentiles)."""
        frame = await self._request({"type": "stats"})
        return frame["stats"]

    async def ping(self) -> bool:
        frame = await self._request({"type": "ping"})
        return frame.get("type") == "pong"

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
