"""The service's result feed and its latency/goodput accounting.

Every query the scheduler completes (or fails) is recorded here with
its end-to-end latency — submission arrival to result resolution, on
the telemetry clock (:mod:`repro.telemetry.clock`, so tests can inject
virtual time).  The stream serves three consumers:

* in-process callers awaiting :meth:`QueryService.submit` get their
  result directly from the submission future — the stream is the
  *service-wide* record;
* subscribers iterate completions as they happen
  (:meth:`ResultStream.subscribe`);
* operators and the sustained-traffic benchmark read
  :meth:`ResultStream.summary`: completed/failed counts, queries per
  second over the observation window, and p50/p90/p99 latency, the
  numbers ``benchmarks/bench_service_traffic.py`` writes into
  ``BENCH_*.json``.

Latencies are also observed into the ``service.query.seconds``
telemetry histogram, so a JSONL trace carries the same distribution the
summary reports.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro import telemetry
from repro.telemetry import clock

#: Percentiles reported by :meth:`ResultStream.summary`.
PERCENTILES = (50, 90, 99)


@dataclass(frozen=True)
class CompletedQuery:
    """One finished submission: payload on success, error on failure."""

    label: str
    round_index: int
    latency_seconds: float
    result: dict | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def percentile(samples: list[float], p: float) -> float:
    """Nearest-rank percentile (inclusive) of a non-empty sample list."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * p // 100))  # ceil(n * p / 100)
    return ordered[int(rank) - 1]


@dataclass
class ResultStream:
    """Accumulates completions and computes the service's SLO numbers."""

    completed: list[CompletedQuery] = field(default_factory=list)
    _subscribers: list[asyncio.Queue] = field(default_factory=list)
    _started_at: float | None = None
    _last_at: float | None = None

    def record(self, entry: CompletedQuery) -> None:
        now = clock.perf_counter()
        if self._started_at is None:
            self._started_at = now
        self._last_at = now
        self.completed.append(entry)
        telemetry.observe("service.query.seconds", entry.latency_seconds)
        for queue in self._subscribers:
            queue.put_nowait(entry)

    def subscribe(self) -> asyncio.Queue:
        """A queue receiving every completion recorded from now on."""
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.append(queue)
        return queue

    # -- accounting ----------------------------------------------------------

    @property
    def ok_count(self) -> int:
        return sum(1 for e in self.completed if e.ok)

    @property
    def failed_count(self) -> int:
        return sum(1 for e in self.completed if not e.ok)

    def latencies(self) -> list[float]:
        return [e.latency_seconds for e in self.completed if e.ok]

    def goodput_qps(self) -> float:
        """Successful queries per second over the observation window
        (first recorded completion to the last)."""
        if self._started_at is None or self._last_at is None:
            return 0.0
        window = self._last_at - self._started_at
        if window <= 0:
            return float(self.ok_count)
        return self.ok_count / window

    def summary(self) -> dict:
        """The operator-facing numbers (also the benchmark's record)."""
        latencies = self.latencies()
        out = {
            "completed": self.ok_count,
            "failed": self.failed_count,
            "goodput_qps": self.goodput_qps(),
        }
        for p in PERCENTILES:
            out[f"p{p}_seconds"] = (
                percentile(latencies, p) if latencies else None
            )
        return out
