"""Round scheduling: batch admitted submissions, run each batch as a
journaled campaign.

The scheduler consumes the bounded admission queue and forms *rounds*:
FIFO batches of up to ``max_batch`` already-admitted submissions.  A
round executes as one :class:`repro.durability.CampaignRunner` campaign
in a worker thread — every round is therefore write-ahead journaled
under ``<service dir>/round-NNNN/``, and a crashed round is resumable
with the ordinary ``python -m repro campaign --resume`` machinery.
Queries batched into one round share the campaign's telescoping paths
(`reuse_paths` applies from the second query on), which is the §3.4
amortization that makes batching worth doing.

Determinism: round ``n`` of a service seeded with ``master_seed`` runs
its campaign with ``derive_seed(master_seed, "service", n)``, so a
seeded submission stream drained by the scheduler produces bit-identical
batches, campaigns, and results on every run — the property
``tests/service/test_scheduler.py`` pins.

Rounds run strictly one at a time.  That keeps the telemetry tracer's
span stack coherent (one campaign thread at a time) and makes admission
order the only scheduling freedom; concurrency lives in the *clients*,
whose submissions overlap the in-flight round through the queue.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import telemetry
from repro.durability.campaign import CampaignConfig, CampaignRunner
from repro.runtime import RuntimeConfig
from repro.runtime.seeding import derive_seed
from repro.service.results import CompletedQuery, ResultStream
from repro.telemetry import clock

#: Queue sentinel: drain what remains, then exit the scheduler loop.
SHUTDOWN = object()


@dataclass
class Submission:
    """One admitted query waiting for (or riding in) a round."""

    text: str
    epsilon: float
    label: str
    future: asyncio.Future
    submitted_at: float = field(default_factory=clock.perf_counter)
    #: Per-query deadline (seconds from submission, end to end through
    #: admission → campaign → decode); ``None`` means no deadline.
    deadline_seconds: float | None = None
    #: Aborted-round re-queues consumed (at most ``max_retries``).
    retries: int = 0

    def expired(self, now: float | None = None) -> bool:
        if self.deadline_seconds is None:
            return False
        now = clock.perf_counter() if now is None else now
        return now - self.submitted_at >= self.deadline_seconds

    def resolve(self, round_index: int, payload: dict) -> CompletedQuery:
        latency = clock.perf_counter() - self.submitted_at
        entry = CompletedQuery(
            label=self.label,
            round_index=round_index,
            latency_seconds=latency,
            result=payload,
        )
        if not self.future.done():
            self.future.set_result(
                {
                    "result": payload,
                    "latency_seconds": latency,
                    "round": round_index,
                }
            )
        return entry

    def fail(self, round_index: int, exc: Exception) -> CompletedQuery:
        latency = clock.perf_counter() - self.submitted_at
        if not self.future.done():
            self.future.set_exception(exc)
        return CompletedQuery(
            label=self.label,
            round_index=round_index,
            latency_seconds=latency,
            error=f"{type(exc).__name__}: {exc}",
        )


class Scheduler:
    """Drains the admission queue into sequential journaled rounds."""

    def __init__(
        self,
        queue: asyncio.Queue,
        stream: ResultStream,
        directory: Path,
        *,
        master_seed: int,
        people: int,
        degree: int,
        committee_size: int = 3,
        committee_threshold: int = 2,
        rotate_every: int = 0,
        max_batch: int = 4,
        fsync: bool = True,
        runtime: RuntimeConfig | None = None,
        offline_store=None,
        pool_entries: int = 8,
        admission=None,
        max_retries: int = 1,
    ):
        self.queue = queue
        self.stream = stream
        self.directory = Path(directory)
        self.master_seed = master_seed
        self.people = people
        self.degree = degree
        self.committee_size = committee_size
        self.committee_threshold = committee_threshold
        self.rotate_every = rotate_every
        self.max_batch = max(1, max_batch)
        self.fsync = fsync
        self.runtime = runtime
        #: Optional repro.offline.store.OfflineStore the scheduler
        #: refills between rounds: round seeds are predictable
        #: (derive_seed(master, "service", n) then the per-query
        #: submission-seed chain), so pools can be topped up for round
        #: n+1 while round n's results stream out.
        self.offline_store = offline_store
        self.pool_entries = max(1, pool_entries)
        #: The service's AdmissionController, when attached: deadline
        #: drops that never executed refund their epsilon through it.
        self.admission = admission
        #: How many aborted rounds a submission may ride out before its
        #: round's exception is forwarded to the client.
        self.max_retries = max(0, max_retries)
        self.rounds_run = 0
        self.rounds_aborted = 0
        self.batch_log: list[list[str]] = []
        #: Survivors of an aborted round, re-queued internally (the
        #: shared asyncio queue may already hold the SHUTDOWN sentinel
        #: behind them, so retries never travel through it).
        self._retry: list[Submission] = []

    async def run(self) -> None:
        """The scheduler loop: block for work, drain a batch, execute.

        Re-queued survivors of an aborted round take priority over new
        queue work and are drained even after SHUTDOWN is seen — a
        poisoned round never wedges the service or strands a client
        future (blast-radius isolation; docs/RESILIENCE.md).
        """
        stopping = False
        while True:
            if self._retry:
                batch, self._retry = self._retry, []
                await self._execute_round(batch)
                continue
            if stopping:
                break
            head = await self.queue.get()
            if head is SHUTDOWN:
                stopping = True
                continue
            batch = [head]
            while len(batch) < self.max_batch:
                try:
                    item = self.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is SHUTDOWN:
                    stopping = True
                    break
                batch.append(item)
            await self._execute_round(batch)

    # -- one round -----------------------------------------------------------

    def _campaign_config(self, batch: list[Submission]) -> CampaignConfig:
        return CampaignConfig(
            master_seed=derive_seed(
                self.master_seed, "service", self.rounds_run
            ),
            queries=tuple((s.text, s.epsilon) for s in batch),
            people=self.people,
            degree=self.degree,
            # The service ledger already charged these epsilons; the
            # campaign's internal budget only needs to admit exactly
            # this batch (fsum matches can_afford's exact arithmetic).
            total_epsilon=math.fsum(s.epsilon for s in batch),
            committee_size=self.committee_size,
            committee_threshold=self.committee_threshold,
            rotate_every=self.rotate_every,
            checkpoint_every=0,
        )

    def _refill_pools(self, config: CampaignConfig) -> None:
        """Top up the offline store for this round's predicted seeds.

        Runs synchronously before the round launches — the round *blocks*
        on the refill rather than starting with dry pools, so exhaustion
        inside the batch can only happen if consumption outruns
        ``pool_entries`` (and then the pools extend their own chains; see
        :class:`repro.offline.pools.EncryptionPool`).
        """
        store = self.offline_store
        if store is None:
            return
        from repro.offline.store import campaign_public_key, submission_seed

        with telemetry.span("offline.precompute") as span:
            store.observe_levels()  # counts offline.pool.low per dry pool
            # Each round's campaign regenerates its keys from the round
            # seed; mirror that derivation so the masks match.
            public_key = campaign_public_key(config.master_seed)
            store.public_key = public_key
            derived = 0
            for qi in range(len(config.queries)):
                seed = submission_seed(config.master_seed, qi)
                derived += store.ensure_encryption_pools(
                    public_key,
                    seed,
                    range(self.people),
                    self.pool_entries,
                )
            span.set_attribute("units", derived)
            if derived:
                telemetry.count("offline.precompute.units", derived)

    def _retire_pools(self, config: CampaignConfig) -> None:
        """Drop pools for a completed round's single-use seeds."""
        store = self.offline_store
        if store is None:
            return
        from repro.offline.store import submission_seed

        for qi in range(len(config.queries)):
            store.retire(submission_seed(config.master_seed, qi))

    def _run_campaign(self, config: CampaignConfig, directory: Path):
        """Executed in a worker thread; the only place service spans may
        open, so they nest cleanly around the campaign's own spans."""
        self._refill_pools(config)
        with telemetry.span(
            "service.round",
            round=self.rounds_run,
            batch=len(config.queries),
        ):
            runner = CampaignRunner.start(
                config,
                directory,
                runtime=self.runtime,
                fsync=self.fsync,
                offline_store=self.offline_store,
            )
            try:
                return runner.run()
            finally:
                self._retire_pools(config)

    def _drop_expired_before_round(
        self, batch: list[Submission]
    ) -> list[Submission]:
        """Shed submissions whose deadline passed before their round
        launched.  These never executed, so their epsilon charge is
        refunded to the ledger."""
        from repro.errors import DeadlineExceeded

        now = clock.perf_counter()
        live: list[Submission] = []
        for submission in batch:
            if not submission.expired(now):
                live.append(submission)
                continue
            telemetry.count("service.rejected.deadline")
            if self.admission is not None:
                self.admission.refund(submission.label, submission.epsilon)
            self.stream.record(
                submission.fail(
                    self.rounds_run,
                    DeadlineExceeded(
                        f"query {submission.label!r} missed its "
                        f"{submission.deadline_seconds}s deadline before "
                        "its round launched; epsilon refunded"
                    ),
                )
            )
        return live

    async def _execute_round(self, batch: list[Submission]) -> None:
        from repro.errors import DeadlineExceeded

        batch = self._drop_expired_before_round(batch)
        if not batch:
            return
        round_index = self.rounds_run
        config = self._campaign_config(batch)
        directory = self.directory / f"round-{round_index:04d}"
        self.batch_log.append([s.label for s in batch])
        telemetry.count("service.rounds.total")
        telemetry.observe("service.batch.size", float(len(batch)))
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                None, self._run_campaign, config, directory
            )
        except Exception as exc:  # noqa: BLE001 - forwarded to clients
            # Blast-radius isolation: the poisoned round is aborted and
            # each survivor is re-queued once.  The retry round runs
            # under a fresh seed and a fresh round-NNNN/ journal (the
            # rounds_run bump below renumbers both), so a seed-dependent
            # poison cannot strike the same queries twice.  The epsilon
            # stays charged either way — the round *executed*; only its
            # answer was lost (docs/SERVICE.md).
            self.rounds_aborted += 1
            telemetry.count("service.rounds.aborted")
            for submission in batch:
                if submission.retries < self.max_retries:
                    submission.retries += 1
                    telemetry.count("service.requeued.total")
                    self._retry.append(submission)
                else:
                    self.stream.record(submission.fail(round_index, exc))
        else:
            now = clock.perf_counter()
            for submission, payload in zip(batch, result.results):
                if submission.expired(now):
                    # The query ran — the charge stands — but the answer
                    # came back past the deadline, so it is withheld.
                    telemetry.count("service.rejected.deadline")
                    self.stream.record(
                        submission.fail(
                            round_index,
                            DeadlineExceeded(
                                f"query {submission.label!r} completed "
                                "after its "
                                f"{submission.deadline_seconds}s deadline"
                            ),
                        )
                    )
                else:
                    self.stream.record(
                        submission.resolve(round_index, payload)
                    )
        finally:
            self.rounds_run += 1

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "rounds": self.rounds_run,
            "rounds_aborted": self.rounds_aborted,
            "max_batch": self.max_batch,
            "batches": [list(b) for b in self.batch_log],
        }
