"""Round scheduling: batch admitted submissions, run each batch as a
journaled campaign.

The scheduler consumes the bounded admission queue and forms *rounds*:
FIFO batches of up to ``max_batch`` already-admitted submissions.  A
round executes as one :class:`repro.durability.CampaignRunner` campaign
in a worker thread — every round is therefore write-ahead journaled
under ``<service dir>/round-NNNN/``, and a crashed round is resumable
with the ordinary ``python -m repro campaign --resume`` machinery.
Queries batched into one round share the campaign's telescoping paths
(`reuse_paths` applies from the second query on), which is the §3.4
amortization that makes batching worth doing.

Determinism: round ``n`` of a service seeded with ``master_seed`` runs
its campaign with ``derive_seed(master_seed, "service", n)``, so a
seeded submission stream drained by the scheduler produces bit-identical
batches, campaigns, and results on every run — the property
``tests/service/test_scheduler.py`` pins.

Rounds run strictly one at a time.  That keeps the telemetry tracer's
span stack coherent (one campaign thread at a time) and makes admission
order the only scheduling freedom; concurrency lives in the *clients*,
whose submissions overlap the in-flight round through the queue.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import telemetry
from repro.durability.campaign import CampaignConfig, CampaignRunner
from repro.runtime import RuntimeConfig
from repro.runtime.seeding import derive_seed
from repro.service.results import CompletedQuery, ResultStream
from repro.telemetry import clock

#: Queue sentinel: drain what remains, then exit the scheduler loop.
SHUTDOWN = object()


@dataclass
class Submission:
    """One admitted query waiting for (or riding in) a round."""

    text: str
    epsilon: float
    label: str
    future: asyncio.Future
    submitted_at: float = field(default_factory=clock.perf_counter)

    def resolve(self, round_index: int, payload: dict) -> CompletedQuery:
        latency = clock.perf_counter() - self.submitted_at
        entry = CompletedQuery(
            label=self.label,
            round_index=round_index,
            latency_seconds=latency,
            result=payload,
        )
        if not self.future.done():
            self.future.set_result(
                {
                    "result": payload,
                    "latency_seconds": latency,
                    "round": round_index,
                }
            )
        return entry

    def fail(self, round_index: int, exc: Exception) -> CompletedQuery:
        latency = clock.perf_counter() - self.submitted_at
        if not self.future.done():
            self.future.set_exception(exc)
        return CompletedQuery(
            label=self.label,
            round_index=round_index,
            latency_seconds=latency,
            error=f"{type(exc).__name__}: {exc}",
        )


class Scheduler:
    """Drains the admission queue into sequential journaled rounds."""

    def __init__(
        self,
        queue: asyncio.Queue,
        stream: ResultStream,
        directory: Path,
        *,
        master_seed: int,
        people: int,
        degree: int,
        committee_size: int = 3,
        committee_threshold: int = 2,
        rotate_every: int = 0,
        max_batch: int = 4,
        fsync: bool = True,
        runtime: RuntimeConfig | None = None,
        offline_store=None,
        pool_entries: int = 8,
    ):
        self.queue = queue
        self.stream = stream
        self.directory = Path(directory)
        self.master_seed = master_seed
        self.people = people
        self.degree = degree
        self.committee_size = committee_size
        self.committee_threshold = committee_threshold
        self.rotate_every = rotate_every
        self.max_batch = max(1, max_batch)
        self.fsync = fsync
        self.runtime = runtime
        #: Optional repro.offline.store.OfflineStore the scheduler
        #: refills between rounds: round seeds are predictable
        #: (derive_seed(master, "service", n) then the per-query
        #: submission-seed chain), so pools can be topped up for round
        #: n+1 while round n's results stream out.
        self.offline_store = offline_store
        self.pool_entries = max(1, pool_entries)
        self.rounds_run = 0
        self.batch_log: list[list[str]] = []

    async def run(self) -> None:
        """The scheduler loop: block for work, drain a batch, execute."""
        stopping = False
        while not stopping:
            head = await self.queue.get()
            if head is SHUTDOWN:
                break
            batch = [head]
            while len(batch) < self.max_batch:
                try:
                    item = self.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is SHUTDOWN:
                    stopping = True
                    break
                batch.append(item)
            await self._execute_round(batch)

    # -- one round -----------------------------------------------------------

    def _campaign_config(self, batch: list[Submission]) -> CampaignConfig:
        return CampaignConfig(
            master_seed=derive_seed(
                self.master_seed, "service", self.rounds_run
            ),
            queries=tuple((s.text, s.epsilon) for s in batch),
            people=self.people,
            degree=self.degree,
            # The service ledger already charged these epsilons; the
            # campaign's internal budget only needs to admit exactly
            # this batch (fsum matches can_afford's exact arithmetic).
            total_epsilon=math.fsum(s.epsilon for s in batch),
            committee_size=self.committee_size,
            committee_threshold=self.committee_threshold,
            rotate_every=self.rotate_every,
            checkpoint_every=0,
        )

    def _refill_pools(self, config: CampaignConfig) -> None:
        """Top up the offline store for this round's predicted seeds.

        Runs synchronously before the round launches — the round *blocks*
        on the refill rather than starting with dry pools, so exhaustion
        inside the batch can only happen if consumption outruns
        ``pool_entries`` (and then the pools extend their own chains; see
        :class:`repro.offline.pools.EncryptionPool`).
        """
        store = self.offline_store
        if store is None:
            return
        from repro.offline.store import campaign_public_key, submission_seed

        with telemetry.span("offline.precompute") as span:
            store.observe_levels()  # counts offline.pool.low per dry pool
            # Each round's campaign regenerates its keys from the round
            # seed; mirror that derivation so the masks match.
            public_key = campaign_public_key(config.master_seed)
            store.public_key = public_key
            derived = 0
            for qi in range(len(config.queries)):
                seed = submission_seed(config.master_seed, qi)
                derived += store.ensure_encryption_pools(
                    public_key,
                    seed,
                    range(self.people),
                    self.pool_entries,
                )
            span.set_attribute("units", derived)
            if derived:
                telemetry.count("offline.precompute.units", derived)

    def _retire_pools(self, config: CampaignConfig) -> None:
        """Drop pools for a completed round's single-use seeds."""
        store = self.offline_store
        if store is None:
            return
        from repro.offline.store import submission_seed

        for qi in range(len(config.queries)):
            store.retire(submission_seed(config.master_seed, qi))

    def _run_campaign(self, config: CampaignConfig, directory: Path):
        """Executed in a worker thread; the only place service spans may
        open, so they nest cleanly around the campaign's own spans."""
        self._refill_pools(config)
        with telemetry.span(
            "service.round",
            round=self.rounds_run,
            batch=len(config.queries),
        ):
            runner = CampaignRunner.start(
                config,
                directory,
                runtime=self.runtime,
                fsync=self.fsync,
                offline_store=self.offline_store,
            )
            try:
                return runner.run()
            finally:
                self._retire_pools(config)

    async def _execute_round(self, batch: list[Submission]) -> None:
        round_index = self.rounds_run
        config = self._campaign_config(batch)
        directory = self.directory / f"round-{round_index:04d}"
        self.batch_log.append([s.label for s in batch])
        telemetry.count("service.rounds.total")
        telemetry.observe("service.batch.size", float(len(batch)))
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                None, self._run_campaign, config, directory
            )
        except Exception as exc:  # noqa: BLE001 - forwarded to clients
            for submission in batch:
                self.stream.record(submission.fail(round_index, exc))
        else:
            for submission, payload in zip(batch, result.results):
                self.stream.record(
                    submission.resolve(round_index, payload)
                )
        finally:
            self.rounds_run += 1

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "rounds": self.rounds_run,
            "max_batch": self.max_batch,
            "batches": [list(b) for b in self.batch_log],
        }
