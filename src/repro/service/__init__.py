"""The long-lived asyncio query service (ROADMAP item 1).

This package turns the one-shot ``run_query()`` / ``CampaignRunner``
pipeline into a persistent, budget-gated service boundary:

* :mod:`repro.service.service` — :class:`QueryService`: the asyncio
  orchestrator, its in-process client API, and the localhost socket
  server;
* :mod:`repro.service.admission` — :class:`AdmissionController`: atomic
  DP admission against the deployment's epsilon ledger;
* :mod:`repro.service.scheduler` — :class:`Scheduler`: bounded-queue
  batching of compatible queries into journaled campaign rounds;
* :mod:`repro.service.results` — :class:`ResultStream`: per-query
  results plus latency/goodput percentiles;
* :mod:`repro.service.protocol` — the length-prefixed JSON frame
  protocol;
* :mod:`repro.service.client` — :class:`ServiceClient`, the reference
  socket client.

Operator and client documentation: ``docs/SERVICE.md``.  Run a server
with ``python -m repro serve``; measure sustained traffic with
``benchmarks/bench_service_traffic.py``.
"""

from repro.service.admission import AdmissionController
from repro.service.client import ServiceClient
from repro.service.results import CompletedQuery, ResultStream, percentile
from repro.service.scheduler import Scheduler, Submission
from repro.service.service import QueryService, ServiceConfig

__all__ = [
    "AdmissionController",
    "CompletedQuery",
    "QueryService",
    "ResultStream",
    "Scheduler",
    "ServiceClient",
    "ServiceConfig",
    "Submission",
    "percentile",
]
