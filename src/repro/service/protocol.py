"""The service's localhost wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON encoding a single object.  The framing is
deliberately minimal — the same shape HoneyBadgerMPC's ``ipc.py`` uses
for its party sockets — so any language can speak it with a dozen lines
of code.  ``docs/SERVICE.md`` is the normative description of the frame
vocabulary; this module is the reference implementation used by both
:class:`repro.service.service.QueryService` (server side) and
:class:`repro.service.client.ServiceClient`.

Request frames (client → server)::

    {"type": "submit", "id": <any>, "query": "Q5", "epsilon": 0.5}
    {"type": "submit", "id": <any>, "query": "Q5", "epsilon": 0.5,
     "deadline_seconds": 30}
    {"type": "stats",  "id": <any>}
    {"type": "ping",   "id": <any>}

Response frames (server → client), matched to requests by ``id``::

    {"type": "result", "id": ..., "result": {...}, "latency_seconds": ...,
     "round": <int>}
    {"type": "stats",  "id": ..., "stats": {...}}
    {"type": "pong",   "id": ...}
    {"type": "error",  "id": ..., "code": "<code>", "message": "..."}

Error codes map one-to-one onto the typed exceptions in
:mod:`repro.errors` (see :data:`ERROR_CODES`), so a
:class:`~repro.service.client.ServiceClient` re-raises exactly the
exception the server raised.
"""

from __future__ import annotations

import asyncio
import json
import struct

from repro.errors import (
    AdmissionRejected,
    BudgetRejected,
    DeadlineExceeded,
    FrameError,
    QueryError,
    QueueFullRejected,
    ServiceError,
    ServiceShutdown,
)

#: Frame length prefix: 4-byte big-endian unsigned int.
_LENGTH = struct.Struct(">I")

#: Hard ceiling on one frame's payload; a released histogram result for
#: the TEST ring is a few KiB, so anything near this is a protocol bug.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Wire error code → exception type.  The server picks the most derived
#: matching code via :func:`code_for_exception`; the client re-raises
#: with :func:`exception_for_code`.
ERROR_CODES: dict[str, type[Exception]] = {
    "budget_rejected": BudgetRejected,
    "queue_full": QueueFullRejected,
    "admission_rejected": AdmissionRejected,
    "deadline_exceeded": DeadlineExceeded,
    "shutdown": ServiceShutdown,
    "bad_query": QueryError,
    "bad_request": FrameError,
    "service_error": ServiceError,
}


def encode_frame(payload: dict) -> bytes:
    """Serialize one frame: length prefix plus compact JSON body."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return _LENGTH.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Parse one frame body; the payload must be a JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError("frame payload must be a JSON object")
    return payload


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; returns ``None`` on clean EOF at a frame boundary."""
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid length prefix") from exc
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"announced frame of {length} bytes exceeds {MAX_FRAME_BYTES}"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid frame body") from exc
    return decode_body(body)


async def write_frame(writer: asyncio.StreamWriter, payload: dict) -> None:
    """Write one frame and drain the transport."""
    writer.write(encode_frame(payload))
    await writer.drain()


def code_for_exception(exc: Exception) -> str:
    """The most specific wire code for ``exc`` (its exact class first,
    then the nearest registered base class)."""
    for code, exc_type in ERROR_CODES.items():
        if type(exc) is exc_type:
            return code
    for code, exc_type in ERROR_CODES.items():
        if isinstance(exc, exc_type):
            return code
    return "service_error"


def exception_for_code(code: str, message: str) -> Exception:
    """Rebuild the typed exception a server-side error frame encodes."""
    return ERROR_CODES.get(code, ServiceError)(message)


def error_frame(request_id: object, exc: Exception) -> dict:
    """The error response for one failed request."""
    return {
        "type": "error",
        "id": request_id,
        "code": code_for_exception(exc),
        "message": str(exc),
    }
