"""DP admission control: the atomic gate in front of the scheduler.

The controller owns the service's :class:`repro.dp.PrivacyBudget` — the
*authoritative* epsilon ledger for the whole deployment — and makes the
admit-or-reject decision for every submission.  The decision and the
ledger charge are one atomic step under an :class:`asyncio.Lock`: the
affordability check, the charge, and the enqueue into the scheduler's
bounded queue all happen inside the same critical section, so two
submissions racing through ``asyncio.gather`` can never both be admitted
when only one fits the remaining budget.

The bug class this guards against is real: an earlier draft checked
``can_afford`` at submission time and charged at round-formation time,
with scheduler awaits in between — two concurrent submissions both saw
the full remaining budget and both got an "admitted" reply, and the
loser later died deep inside the round with a raw
:class:`~repro.errors.PrivacyBudgetExceeded` instead of a clean
rejection.  ``tests/service/test_admission.py`` keeps the regression
pinned: it widens the check-to-charge window with :attr:`race_window`
and asserts exactly one of two simultaneous submissions is admitted.

Rejections are typed (``docs/SERVICE.md`` documents the client-visible
contract): :class:`~repro.errors.BudgetRejected` when the ledger cannot
afford the epsilon, :class:`~repro.errors.QueueFullRejected` when the
bounded queue pushes back — in which case the just-made charge is rolled
back, keeping the ledger conserved.
"""

from __future__ import annotations

import asyncio
import math
from typing import Awaitable, Callable

from repro import telemetry
from repro.dp.budget import PrivacyBudget
from repro.errors import BudgetRejected


class AdmissionController:
    """Atomic check-charge-enqueue admission against one epsilon ledger."""

    def __init__(self, budget: PrivacyBudget):
        self.budget = budget
        self._lock = asyncio.Lock()
        self.admitted = 0
        self.rejected_budget = 0
        #: Test hook: an awaitable factory awaited between the
        #: affordability check and the charge, *inside* the lock.  The
        #: atomicity regression test sets this to ``asyncio.sleep(0)``
        #: to widen the race window that an unlocked implementation
        #: loses; production leaves it ``None``.
        self.race_window: Callable[[], Awaitable[None]] | None = None

    @property
    def remaining(self) -> float:
        return self.budget.remaining

    @property
    def spent(self) -> float:
        return self.budget.spent

    def ledger(self) -> list[tuple[str, float]]:
        """A copy of the charge history ``(label, epsilon)``."""
        return list(self.budget.history)

    def conserved(self) -> bool:
        """The audited invariant: ``fsum(history) <= total_epsilon``."""
        return (
            math.fsum(eps for _, eps in self.budget.history)
            <= self.budget.total_epsilon
        )

    async def admit(
        self,
        epsilon: float,
        label: str,
        enqueue: Callable[[], None] | None = None,
    ) -> None:
        """Admit one submission or raise a typed rejection.

        ``enqueue`` (if given) runs inside the critical section after
        the charge; if it raises — the scheduler queue is full — the
        charge is rolled back before the exception propagates, so a
        rejected submission never leaves a ledger entry behind.
        """
        async with self._lock:
            with telemetry.span("service.admit", epsilon=epsilon):
                if self.race_window is not None:
                    await self.race_window()
                if not self.budget.can_afford(epsilon):
                    self.rejected_budget += 1
                    telemetry.count("service.rejected.budget")
                    raise BudgetRejected(
                        f"query {label!r} needs epsilon={epsilon} but only "
                        f"{self.budget.remaining:.4f} of "
                        f"{self.budget.total_epsilon} remains"
                    )
                self.budget.charge(epsilon, label)
                if enqueue is not None:
                    try:
                        enqueue()
                    except Exception:
                        self._rollback(label, epsilon)
                        raise
                self.admitted += 1
                telemetry.count("service.admitted.total")

    def _rollback(self, label: str, epsilon: float) -> None:
        """Undo the charge just made in this critical section."""
        assert self.budget.history and self.budget.history[-1] == (
            label,
            epsilon,
        ), "rollback outside the admitting critical section"
        self.budget.history.pop()

    def refund(self, label: str, epsilon: float) -> bool:
        """Refund one admitted-but-never-executed charge.

        Used by the scheduler when a submission's deadline expires
        before its round launches: the query consumed no privacy, so its
        epsilon goes back to the ledger.  Scans the history from the
        newest entry (the expired submission is usually near the tail)
        and removes the first exact ``(label, epsilon)`` match.
        Synchronous and loop-safe: the event loop never yields inside,
        and the ledger only shrinks, so a concurrent ``admit`` cannot be
        tricked into over-admission.
        """
        for i in range(len(self.budget.history) - 1, -1, -1):
            if self.budget.history[i] == (label, epsilon):
                del self.budget.history[i]
                return True
        return False
