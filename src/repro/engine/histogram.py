"""Decoding the aggregated plaintext polynomial (§4.1, §4.4).

After global aggregation and threshold decryption, the committee holds a
plaintext polynomial whose coefficient p_e counts the origin vertices
whose local result encoded to exponent e.  This module turns those
coefficients into the released statistics:

* **HISTO** — per-group histograms, optionally coarsened into the
  analyst's bins ("we can also compute the values in a coarser bin by
  adding up the coefficients");
* **GSUM** — per-group clipped sums, using the paper's clipping formula
  sum(i * p_i for a < i < b) + a * sum(p_i, i <= a) + b * sum(p_i, i >= b),
  generalized to ratio encodings where an exponent packs (count, sum).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.query.plans import ExecutionPlan, ExponentLayout


@dataclass(frozen=True)
class GroupHistogram:
    """One group's histogram: either raw per-value counts or binned."""

    group: int
    counts: tuple[float, ...]
    bin_edges: tuple[int, ...] | None


def _group_coefficients(
    coeffs: list[int], layout: ExponentLayout, group: int
) -> list[int]:
    start = group * layout.block_size
    block = coeffs[start : start + layout.block_size]
    return list(block) + [0] * (layout.block_size - len(block))


def bin_counts(
    values: list[int], bin_edges: tuple[int, ...]
) -> list[float]:
    """Coarsen per-value counts into bins.

    ``bin_edges = (e0, e1, ..., em)`` yields bins [e0,e1), [e1,e2), ...,
    [em, end-of-block].
    """
    if list(bin_edges) != sorted(bin_edges):
        raise QueryError("bin edges must be sorted")
    totals = []
    for i, low in enumerate(bin_edges):
        high = bin_edges[i + 1] if i + 1 < len(bin_edges) else len(values)
        totals.append(float(sum(values[low:high])))
    return totals


def decode_histogram(
    coeffs: list[int], plan: ExecutionPlan
) -> list[GroupHistogram]:
    """Per-group histograms from the decrypted coefficient vector."""
    layout = plan.layout
    results = []
    for group in range(layout.num_groups):
        block = _group_coefficients(coeffs, layout, group)
        if plan.bins is not None:
            counts = tuple(bin_counts(block, plan.bins))
        else:
            counts = tuple(float(c) for c in block)
        results.append(
            GroupHistogram(group=group, counts=counts, bin_edges=plan.bins)
        )
    return results


def decode_gsum(coeffs: list[int], plan: ExecutionPlan) -> list[float]:
    """Per-group clipped sums (§4.4 "Final processing" at the committee).

    For plain encodings, exponent e inside a block is the local value;
    for ratio encodings it packs (count, sum) and the released value is
    the clipped rate sum/count (origins with count 0 contributed nothing
    and are skipped).
    """
    if plan.clip is None:
        raise QueryError("GSUM decoding requires a clip range")
    low, high = plan.clip
    layout = plan.layout
    results = []
    for group in range(layout.num_groups):
        block = _group_coefficients(coeffs, layout, group)
        total = 0.0
        for exponent, count in enumerate(block):
            if count == 0:
                continue
            _, pair_count, pair_sum = layout.decode(
                group * layout.block_size + exponent
            )
            if layout.pair_base is None:
                value = float(pair_sum)
            else:
                if pair_count == 0:
                    continue  # no qualifying neighbors: no rate to report
                value = pair_sum / pair_count
            clipped = min(max(value, float(low)), float(high))
            total += count * clipped
        results.append(total)
    return results


def clipping_formula_reference(
    block: list[int], low: int, high: int
) -> float:
    """The paper's clipping expression, verbatim, for cross-checking
    :func:`decode_gsum` on plain encodings."""
    middle = sum(i * p for i, p in enumerate(block) if low < i < high)
    below = low * sum(p for i, p in enumerate(block) if i <= low)
    above = high * sum(p for i, p in enumerate(block) if i >= high)
    return float(middle + below + above)
