"""Query execution engines.

:mod:`repro.engine.semantics` defines the exact per-party computations;
:mod:`repro.engine.plaintext` runs them directly (the correctness
oracle) and :mod:`repro.engine.encrypted` runs them homomorphically with
the §4.6 zero-knowledge proofs (:mod:`repro.engine.zkcircuits`).
:mod:`repro.engine.histogram` decodes the aggregated plaintext into the
released statistics; :mod:`repro.engine.malicious` enumerates Byzantine
behaviours.
"""
