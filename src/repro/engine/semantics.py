"""Shared execution semantics for the plaintext and encrypted engines.

Both engines must agree *exactly* on what each party computes from its
own plaintext data: the destination-side predicate and SUM evaluation,
the origin-side neighbor selection, and the grouping decisions.  Keeping
that logic here guarantees the encrypted path (which manipulates the
same quantities as exponents of x) matches the reference executor
bit for bit — the property the integration tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnsupportedQueryError
from repro.query import ast
from repro.query.compiler import (
    Bindings,
    bucket_group,
    evaluate_all,
    evaluate_expression,
    qualifying_buckets,
)
from repro.query.plans import ExecutionPlan
from repro.workloads.graphgen import ContactGraph


def origin_bindings(graph: ContactGraph, origin: int) -> Bindings:
    return {
        (ast.ColumnGroup.SELF, name): value
        for name, value in graph.vertex_attrs[origin].items()
    }


def dest_vertex_bindings(graph: ContactGraph, vertex: int) -> Bindings:
    return {
        (ast.ColumnGroup.DEST, name): value
        for name, value in graph.vertex_attrs[vertex].items()
    }


def edge_bindings(graph: ContactGraph, u: int, v: int) -> Bindings:
    return {
        (ast.ColumnGroup.EDGE, name): value
        for name, value in graph.edge(u, v).items()
    }


@dataclass(frozen=True)
class NeighborContribution:
    """What one destination reports for one (origin, neighbor) pair —
    the plaintext the destination's ciphertext(s) encode (§4.3-§4.5).

    ``exponent`` is 0 when the destination-side predicate fails (the
    neutral element of the product).  ``bucket`` is the destination's
    position in the §4.5 sequence, or None when no cross clause exists.
    """

    exponent: int
    bucket: int | None


def neighbor_contribution(
    plan: ExecutionPlan, graph: ContactGraph, origin: int, neighbor: int
) -> NeighborContribution:
    """Destination-side computation: evaluated only over data the
    destination legitimately holds (its own vertex attributes plus the
    shared edge record)."""
    bindings: Bindings = {}
    bindings.update(dest_vertex_bindings(graph, neighbor))
    bindings.update(edge_bindings(graph, origin, neighbor))
    predicate_ok = evaluate_all(plan.dest_clauses, bindings)
    if plan.sum_expr is not None:
        value = max(0, evaluate_expression(plan.sum_expr, bindings))
        value = min(value, plan.layout.max_value)
    else:
        value = 1
    if plan.is_ratio:
        assert plan.layout.pair_base is not None
        inner = plan.layout.pair_base + value  # (count=1, sum=value)
    else:
        inner = value
    exponent = inner if predicate_ok else 0
    bucket = None
    if plan.cross is not None:
        dest_value = bindings[
            (ast.ColumnGroup.DEST, plan.cross.dest_column.name)
        ]
        bucket = plan.cross.spec.bucket_of(dest_value)
    return NeighborContribution(exponent=exponent, bucket=bucket)


@dataclass(frozen=True)
class OriginDecisions:
    """Everything the origin decides from its own plaintext (§4.4-§4.5):
    these choices parameterize both the plaintext result and the
    homomorphic aggregation circuit.

    ``contributes`` is False when a self clause fails (the origin
    submits Enc(0)).  ``selected_neighbors`` survive the per-edge
    filter.  ``group_of_neighbor`` maps neighbors to groups for
    edge-site GROUP BY; ``buckets_per_group`` maps each group to the
    sequence buckets the origin selects for it (cross queries).
    """

    contributes: bool
    selected_neighbors: tuple[int, ...]
    self_group: int
    group_of_neighbor: dict[int, int]
    buckets_per_group: dict[int, tuple[int, ...]]


def origin_decisions(
    plan: ExecutionPlan, graph: ContactGraph, origin: int
) -> OriginDecisions:
    bindings = origin_bindings(graph, origin)
    if not evaluate_all(plan.self_clauses, bindings):
        return OriginDecisions(False, (), 0, {}, {})

    selected = []
    for neighbor in graph.neighbors(origin):
        if plan.per_edge_clauses:
            edge_view = dict(bindings)
            edge_view.update(edge_bindings(graph, origin, neighbor))
            if not evaluate_all(plan.per_edge_clauses, edge_view):
                continue
        selected.append(neighbor)

    self_group = 0
    group_of_neighbor: dict[int, int] = {}
    if plan.group_site is ast.ColumnGroup.SELF:
        self_group = evaluate_expression(plan.group_by, bindings)
    elif plan.group_site is ast.ColumnGroup.EDGE:
        for neighbor in selected:
            group_of_neighbor[neighbor] = evaluate_expression(
                plan.group_by, edge_bindings(graph, origin, neighbor)
            )

    buckets_per_group: dict[int, tuple[int, ...]] = {}
    if plan.cross is not None:
        qualifying = qualifying_buckets(plan.cross, bindings)
        if plan.group_site is ast.ColumnGroup.DEST:
            for group in range(plan.layout.num_groups):
                buckets_per_group[group] = tuple(
                    b
                    for b in qualifying
                    if bucket_group(plan.group_by, plan.cross, b, bindings)
                    == group
                )
        else:
            buckets_per_group[self_group] = tuple(qualifying)
    return OriginDecisions(
        contributes=True,
        selected_neighbors=tuple(selected),
        self_group=self_group,
        group_of_neighbor=group_of_neighbor,
        buckets_per_group=buckets_per_group,
    )


def origin_groups(plan: ExecutionPlan, decisions: OriginDecisions) -> list[int]:
    """Which coefficient blocks this origin's ciphertext touches."""
    if plan.group_site is ast.ColumnGroup.EDGE:
        return sorted(set(decisions.group_of_neighbor.values()))
    if plan.group_site is ast.ColumnGroup.DEST:
        # The origin cannot tell which groups are non-empty (bucket
        # membership is encrypted), so it reports every group.
        return list(range(plan.layout.num_groups))
    return [decisions.self_group]


def local_exponents(
    plan: ExecutionPlan,
    graph: ContactGraph,
    origin: int,
    defaulted: frozenset[int] | set[int] | tuple[int, ...] = (),
) -> list[int]:
    """The exponents of the origin's submitted ciphertext — the ground
    truth the encrypted engine must reproduce.

    Returns [] when the origin submits Enc(0).  ``defaulted`` names
    neighbors whose contribution the origin replaced with ``Enc(x^0)``
    (offline / never responded, §4.4): they stay in their group's
    product but contribute exponent 0, exactly like the encrypted path.
    """
    if plan.hops > 1:
        return _local_exponents_multihop(plan, graph, origin)
    defaulted = frozenset(defaulted)
    decisions = origin_decisions(plan, graph, origin)
    if not decisions.contributes:
        return []
    contributions = {
        neighbor: neighbor_contribution(plan, graph, origin, neighbor)
        for neighbor in decisions.selected_neighbors
    }
    exponents = []
    for group in origin_groups(plan, decisions):
        if plan.group_site is ast.ColumnGroup.EDGE:
            members = [
                n
                for n in decisions.selected_neighbors
                if decisions.group_of_neighbor.get(n) == group
            ]
        else:
            members = list(decisions.selected_neighbors)
        total = 0
        for neighbor in members:
            if neighbor in defaulted:
                continue  # Enc(x^0): a neutral factor in the product
            contribution = contributions[neighbor]
            if plan.cross is not None:
                allowed = decisions.buckets_per_group.get(group, ())
                if contribution.bucket in allowed:
                    total += contribution.exponent
            else:
                total += contribution.exponent
        exponents.append(plan.layout.block_size * group + total)
    return exponents


def _local_exponents_multihop(
    plan: ExecutionPlan, graph: ContactGraph, origin: int
) -> list[int]:
    """k-hop COUNT queries (§4.4): the flooding protocol induces a BFS
    spanning tree; every member (including the origin) contributes its
    indicator once."""
    if plan.cross is not None or plan.group_by is not None or plan.is_ratio:
        raise UnsupportedQueryError("multi-hop supports plain COUNT only")
    bindings = origin_bindings(graph, origin)
    if not evaluate_all(plan.self_clauses, bindings):
        return []
    total = 0
    for member in graph.k_hop_members(origin, plan.hops):
        member_bindings = dest_vertex_bindings(graph, member)
        if evaluate_all(plan.dest_clauses, member_bindings):
            if plan.sum_expr is None:
                total += 1
            else:
                value = max(
                    0, evaluate_expression(plan.sum_expr, member_bindings)
                )
                total += min(value, plan.layout.max_value)
    return [total]
