"""The encrypted distributed executor (§4.3-§4.5).

Runs a compiled plan the way the deployed system would: destinations
encrypt monomial contributions under the system BGV key, origins combine
them homomorphically (bucket selection, products, group shifts) without
ever seeing plaintext neighbor data, and every party attaches the §4.6
zero-knowledge proofs.

The origin combination is a *pure deterministic function* of the
origin's private decisions, the input ciphertexts, and a replay seed for
its fresh encryptions — the same function serves as the body of the
``wf-aggregation`` circuit, so proofs are literally "re-run the
aggregation and compare digests".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import telemetry
from repro.crypto import bgv, zksnark
from repro.crypto.polyring import RingElement
from repro.engine import semantics, zkcircuits
from repro.engine.malicious import Behavior
from repro.errors import ProofError, ProtocolError
from repro.offline.pools import LeafRandomnessSource
from repro.query import ast
from repro.query.plans import ExecutionPlan
from repro.runtime import TaskFabric, derive_rng
from repro.workloads.graphgen import ContactGraph


@dataclass(frozen=True)
class LeafMessage:
    """One proved contribution ciphertext from a destination."""

    sender: int
    ciphertext: bgv.Ciphertext
    statement: zksnark.Statement
    proof: zksnark.Proof


@dataclass(frozen=True)
class DestResponse:
    """Everything a destination sends for one (origin, neighbor) slot:
    one message normally, ``num_buckets`` for §4.5 sequences."""

    messages: tuple[LeafMessage, ...]

    @property
    def ciphertexts(self) -> tuple[bgv.Ciphertext, ...]:
        return tuple(m.ciphertext for m in self.messages)


@dataclass(frozen=True)
class OriginSubmission:
    """What the aggregator receives from one origin vertex."""

    origin: int
    ciphertext: bgv.Ciphertext
    aggregate_statement: zksnark.Statement
    aggregate_proof: zksnark.Proof
    leaves: tuple[LeafMessage, ...]
    #: Multi-hop only: intermediate nodes' (output, statement, proof).
    intermediates: tuple[
        tuple[bgv.Ciphertext, zksnark.Statement, zksnark.Proof], ...
    ] = ()


@dataclass
class RunStats:
    """Bookkeeping for tests and benchmarks."""

    leaf_ciphertexts: int = 0
    multiplications: int = 0
    origin_filtered_leaves: int = 0
    #: Selected neighbors whose term defaulted to Enc(x^0) (§4.4).
    defaulted_members: int = 0
    #: Leaf-randomness pool traffic (offline/online split; see
    #: :mod:`repro.offline.pools`).  Accumulated here because fabric
    #: workers run with telemetry inactive; the parent counts them once.
    pool_hits: int = 0
    pool_misses: int = 0
    pool_refills: int = 0
    behaviors_applied: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class MultihopDecisions:
    """Origin/intermediate decisions for k-hop tree aggregation."""

    contributes: bool


def leaf_max_exponent(plan: ExecutionPlan) -> int:
    """Upper bound on one contribution's exponent (the ZKP range)."""
    if plan.is_ratio:
        assert plan.layout.pair_base is not None
        return plan.layout.pair_base + plan.layout.max_value
    return plan.layout.max_value


# ---------------------------------------------------------------------------
# Destination side
# ---------------------------------------------------------------------------


def _prove_leaf(
    zk: zksnark.Groth16System,
    pk: bgv.PublicKey,
    sender: int,
    ciphertext: bgv.Ciphertext,
    exponent: int,
    randomness: bgv.EncryptionRandomness,
    max_exponent: int,
    forge: bool,
    rng: random.Random,
) -> LeafMessage:
    statement = zkcircuits.leaf_statement(ciphertext, pk, max_exponent)
    if forge:
        proof = zksnark.forge_proof(statement, rng)
    else:
        proof = zk.prove(
            statement,
            zkcircuits.LeafWitness(
                exponent=exponent, randomness=randomness, public_key=pk
            ),
        )
    return LeafMessage(
        sender=sender, ciphertext=ciphertext, statement=statement, proof=proof
    )


def _encrypt_leaf(
    pk: bgv.PublicKey,
    exponent: int,
    rng: random.Random,
    behavior: Behavior,
    max_exponent: int,
    randomness: bgv.EncryptionRandomness | None = None,
) -> tuple[bgv.Ciphertext, int, bgv.EncryptionRandomness, bool]:
    """Encrypt one contribution, applying a Byzantine behaviour.

    Returns (ciphertext, claimed exponent, randomness, needs_forgery):
    behaviours that break well-formedness cannot produce honest proofs.
    ``randomness`` lets a leaf-randomness source supply the ephemeral
    values (possibly mask-prepared by the offline phase); the default
    draws them from ``rng`` as the standalone path always has.
    """
    if randomness is None:
        randomness = bgv.EncryptionRandomness.generate(pk.profile, rng)
    if behavior is Behavior.OVERSIZED_EXPONENT:
        bad = min(pk.profile.n - 1, max_exponent + 5)
        ct = bgv.encrypt_monomial(pk, bad, rng, randomness=randomness)
        return ct, bad, randomness, True
    if behavior is Behavior.MULTI_COEFFICIENT:
        poly = RingElement.from_coeffs(pk.profile.plaintext_ring, [1, 1, 1])
        ct = bgv.encrypt(pk, poly, rng, randomness=randomness)
        return ct, exponent, randomness, True
    if behavior is Behavior.LARGE_COEFFICIENT:
        ct = bgv.encrypt_monomial(
            pk, exponent, rng, coeff=5, randomness=randomness
        )
        return ct, exponent, randomness, True
    if behavior is Behavior.LIE_IN_RANGE:
        lied = (exponent + 1) % (max_exponent + 1)
        ct = bgv.encrypt_monomial(pk, lied, rng, randomness=randomness)
        return ct, lied, randomness, False
    ct = bgv.encrypt_monomial(pk, exponent, rng, randomness=randomness)
    forge = behavior is Behavior.FORGED_PROOF
    return ct, exponent, randomness, forge


def dest_compute(
    plan: ExecutionPlan,
    pk: bgv.PublicKey,
    zk: zksnark.Groth16System,
    graph: ContactGraph,
    origin: int,
    neighbor: int,
    rng: random.Random,
    behavior: Behavior = Behavior.HONEST,
    leaf_source=None,
) -> DestResponse | None:
    """The destination's answer for one neighbor slot (§4.3, §4.5).

    Returns None for :attr:`Behavior.DROP_MESSAGE` (and for offline
    devices, which callers model the same way).  ``leaf_source`` is a
    :class:`repro.offline.pools.LeafRandomnessSource` supplying each
    leaf's encryption randomness from a seed-stable chain; without one,
    randomness comes from ``rng`` (the historical stream).
    """
    if behavior is Behavior.DROP_MESSAGE:
        return None
    contribution = semantics.neighbor_contribution(plan, graph, origin, neighbor)
    max_exponent = leaf_max_exponent(plan)
    messages = []
    if plan.cross is None:
        exponents = [contribution.exponent]
    else:
        exponents = [
            contribution.exponent if bucket == contribution.bucket else 0
            for bucket in range(plan.cross.num_buckets)
        ]
    for exponent in exponents:
        ct, claimed, randomness, forge = _encrypt_leaf(
            pk,
            exponent,
            rng,
            behavior,
            max_exponent,
            randomness=leaf_source.next() if leaf_source is not None else None,
        )
        messages.append(
            _prove_leaf(
                zk, pk, neighbor, ct, claimed, randomness, max_exponent, forge, rng
            )
        )
    return DestResponse(messages=tuple(messages))


# ---------------------------------------------------------------------------
# Origin side (also the body of the wf-aggregation circuit)
# ---------------------------------------------------------------------------


def _origin_combine(
    plan: ExecutionPlan,
    pk: bgv.PublicKey,
    decisions,
    inputs: dict[int, tuple[bgv.Ciphertext, ...]],
    rng: random.Random,
    stats: RunStats | None = None,
) -> bgv.Ciphertext:
    """Deterministically combine neighbor ciphertexts per the plan.

    ``inputs`` maps members to their ciphertexts; members absent from it
    defaulted (offline / dropped / filtered) and are replaced with fresh
    Enc(x^0), which is neutral in the product (§4.4).
    """
    if isinstance(decisions, MultihopDecisions):
        if not decisions.contributes:
            return bgv.encrypt_zero_like(pk, rng)
        product = None
        for member in sorted(inputs):
            for ct in inputs[member]:
                if product is None:
                    product = ct
                else:
                    product = bgv.multiply(product, ct)
                    if stats is not None:
                        stats.multiplications += 1
        if product is None:
            product = bgv.encrypt_monomial(pk, 0, rng)
        return product

    if not decisions.contributes:
        return bgv.encrypt_zero_like(pk, rng)
    _validate_decisions(plan, decisions)
    num_buckets = plan.cross.num_buckets if plan.cross is not None else 1
    for member, cts in inputs.items():
        if len(cts) != num_buckets:
            raise ProtocolError(
                f"member {member} supplied {len(cts)} ciphertexts, "
                f"expected {num_buckets}"
            )

    group_terms: dict[int, bgv.Ciphertext | None] = {}
    for group in semantics.origin_groups(plan, decisions):
        if plan.group_site is ast.ColumnGroup.EDGE:
            members = [
                n
                for n in decisions.selected_neighbors
                if decisions.group_of_neighbor.get(n) == group
            ]
        else:
            members = list(decisions.selected_neighbors)
        product: bgv.Ciphertext | None = None
        for member in members:
            term = _member_term(plan, pk, decisions, inputs, member, group, rng)
            if product is None:
                product = term
            else:
                product = bgv.multiply(product, term)
                if stats is not None:
                    stats.multiplications += 1
        if product is None:
            product = bgv.encrypt_monomial(pk, 0, rng)
        group_terms[group] = product

    if not group_terms:
        # Edge-site GROUP BY with no neighbors: no group exists for this
        # origin to report into, so it submits the additive identity
        # (matching the plaintext semantics of "no contribution").
        return bgv.encrypt_zero_like(pk, rng)
    total: bgv.Ciphertext | None = None
    for group in sorted(group_terms):
        shifted = bgv.shift(group_terms[group], group * plan.layout.block_size)
        total = shifted if total is None else bgv.add(total, shifted)
    return total


def _member_term(
    plan: ExecutionPlan,
    pk: bgv.PublicKey,
    decisions,
    inputs: dict[int, tuple[bgv.Ciphertext, ...]],
    member: int,
    group: int,
    rng: random.Random,
) -> bgv.Ciphertext:
    """One neighbor's factor in a group's product."""
    cts = inputs.get(member)
    if cts is None:
        return bgv.encrypt_monomial(pk, 0, rng)
    if plan.cross is None:
        return cts[0]
    allowed = decisions.buckets_per_group.get(group, ())
    if not allowed:
        return bgv.encrypt_monomial(pk, 0, rng)
    total = None
    for bucket in allowed:
        total = cts[bucket] if total is None else bgv.add(total, cts[bucket])
    if len(allowed) > 1:
        constant = bgv.encrypt(
            pk,
            RingElement.constant(pk.profile.plaintext_ring, len(allowed) - 1),
            rng,
        )
        total = bgv.subtract(total, constant)
    return total


def _validate_decisions(plan: ExecutionPlan, decisions) -> None:
    """Structural constraints the aggregation circuit enforces: no
    double-counting, degree bound, in-range groups and buckets."""
    selected = decisions.selected_neighbors
    if len(set(selected)) != len(selected):
        raise ProtocolError("duplicate members in aggregation")
    if len(selected) > plan.degree_bound:
        raise ProtocolError("aggregation exceeds the degree bound")
    if not 0 <= decisions.self_group < plan.layout.num_groups:
        raise ProtocolError("group index out of range")
    for group in decisions.group_of_neighbor.values():
        if not 0 <= group < plan.layout.num_groups:
            raise ProtocolError("group index out of range")
    if plan.cross is not None:
        for group, buckets in decisions.buckets_per_group.items():
            if not 0 <= group < plan.layout.num_groups:
                raise ProtocolError("group index out of range")
            if len(set(buckets)) != len(buckets):
                raise ProtocolError("duplicate buckets in selection")
            for bucket in buckets:
                if not 0 <= bucket < plan.cross.num_buckets:
                    raise ProtocolError("bucket index out of range")


def replay_origin_compute(
    plan: ExecutionPlan,
    pk: bgv.PublicKey,
    decisions,
    inputs: dict[int, tuple[bgv.Ciphertext, ...]],
    seed: int,
) -> bgv.Ciphertext:
    """Re-run the origin combination from a witness (circuit body)."""
    return _origin_combine(plan, pk, decisions, inputs, random.Random(seed))


def _prove_aggregate(
    plan: ExecutionPlan,
    pk: bgv.PublicKey,
    zk: zksnark.Groth16System,
    output: bgv.Ciphertext,
    decisions,
    inputs: dict[int, tuple[bgv.Ciphertext, ...]],
    seed: int,
    forge: bool,
    rng: random.Random,
) -> tuple[zksnark.Statement, zksnark.Proof]:
    flat_inputs = [ct for member in sorted(inputs) for ct in inputs[member]]
    statement = zkcircuits.aggregate_statement(output, flat_inputs, pk, plan)
    if forge:
        return statement, zksnark.forge_proof(statement, rng)
    witness = zkcircuits.AggregateWitness(
        plan=plan,
        decisions=decisions,
        seed=seed,
        inputs={m: inputs[m] for m in sorted(inputs)},
        public_key=pk,
    )
    return statement, zk.prove(statement, witness)


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------


def _run_origin_task(
    context: tuple, origin: int
) -> tuple[OriginSubmission, RunStats]:
    """Fabric task: one origin's full submission, with private stats.

    Builds a throwaway executor around an RNG derived from the run's
    master seed and the origin id, so the submission is a pure function
    of ``(context, origin)`` — independent of worker count, execution
    order, and of how much randomness other origins consumed.

    Leaf encryption randomness always flows through a
    :class:`~repro.offline.pools.LeafRandomnessSource` on the
    ``(master_seed, origin)`` chain: with an offline store the entries
    come precomputed (mask-prepared), without one they derive lazily —
    the two are bit-identical by construction.
    """
    plan, pk, zk, graph, behaviors, offline, master_seed, store = context
    pool = (
        store.encryption_pool(master_seed, origin)
        if store is not None
        else None
    )
    source = LeafRandomnessSource(pk.profile, master_seed, origin, pool=pool)
    worker = EncryptedExecutor(
        plan,
        pk,
        zk,
        derive_rng(master_seed, "origin", origin),
        leaf_source=source,
    )
    if plan.hops == 1:
        submission = worker._run_one_hop(graph, origin, behaviors, offline)
    else:
        submission = worker._run_multi_hop(graph, origin, behaviors, offline)
    worker.stats.pool_hits = source.hits
    worker.stats.pool_misses = source.misses
    worker.stats.pool_refills = source.refills
    return submission, worker.stats


class EncryptedExecutor:
    """Run a plan over a graph with per-device Byzantine behaviours."""

    def __init__(
        self,
        plan: ExecutionPlan,
        pk: bgv.PublicKey,
        zk: zksnark.Groth16System,
        rng: random.Random,
        fabric: TaskFabric | None = None,
        offline_store=None,
        leaf_source=None,
    ):
        self.plan = plan
        self.pk = pk
        self.zk = zk
        self.rng = rng
        self.fabric = fabric if fabric is not None else TaskFabric()
        #: :class:`repro.offline.store.OfflineStore` of precomputed
        #: artifacts for :meth:`run`, or None for the inline path.
        self.offline_store = offline_store
        #: Per-origin leaf randomness stream (set on worker executors by
        #: :func:`_run_origin_task`); None means draw from ``rng``.
        self.leaf_source = leaf_source
        self.stats = RunStats()

    def _behavior(self, behaviors, device: int) -> Behavior:
        return behaviors.get(device, Behavior.HONEST)

    def _merge_stats(self, other: RunStats) -> None:
        self.stats.leaf_ciphertexts += other.leaf_ciphertexts
        self.stats.multiplications += other.multiplications
        self.stats.origin_filtered_leaves += other.origin_filtered_leaves
        self.stats.defaulted_members += other.defaulted_members
        self.stats.pool_hits += other.pool_hits
        self.stats.pool_misses += other.pool_misses
        self.stats.pool_refills += other.pool_refills
        for name, hits in other.behaviors_applied.items():
            self.stats.behaviors_applied[name] = (
                self.stats.behaviors_applied.get(name, 0) + hits
            )

    def run(
        self,
        graph: ContactGraph,
        behaviors: dict[int, Behavior] | None = None,
        offline: set[int] | None = None,
        master_seed: int | None = None,
    ) -> list[OriginSubmission]:
        """Produce every origin's submission (one per online vertex).

        Origins are independent, so they are sharded across the fabric.
        One master seed is drawn from this executor's RNG up front and
        each origin works from an RNG derived from (master seed, origin
        id): the output is bit-identical at any worker count, and the
        whole run stays a deterministic function of the executor's RNG
        state, exactly as the sequential implementation was.  Passing
        ``master_seed`` pins that draw instead (the offline phase pools
        randomness for a seed it predicts, so callers that hold the
        prediction can make the run an explicit function of it).
        """
        behaviors = behaviors or {}
        offline = offline or set()
        origins = [
            origin
            for origin in range(graph.num_vertices)
            if origin not in offline
        ]
        if master_seed is None:
            master_seed = self.rng.getrandbits(64)
        context = (
            self.plan, self.pk, self.zk, graph, behaviors, offline,
            master_seed, self.offline_store,
        )
        results = self.fabric.map(
            _run_origin_task, origins, context=context, label="engine.origins"
        )
        submissions = []
        defaulted = 0
        pool_hits = pool_misses = pool_refills = 0
        for submission, stats in results:
            submissions.append(submission)
            self._merge_stats(stats)
            defaulted += stats.defaulted_members
            pool_hits += stats.pool_hits
            pool_misses += stats.pool_misses
            pool_refills += stats.pool_refills
        if self.fabric.last_out_of_process and defaulted:
            # Worker processes run with telemetry inactive; account for
            # their defaulted-contribution counts here.  The in-process
            # path already counted them inside build_origin_submission.
            telemetry.count("engine.defaults.total", defaulted)
        # Pool traffic is never counted in workers (their telemetry is
        # inactive and in-process sources only track attributes), so the
        # parent is the single point of accounting.
        if pool_hits:
            telemetry.count("offline.pool.hits", pool_hits)
        if pool_misses:
            telemetry.count("offline.pool.misses", pool_misses)
        if pool_refills:
            telemetry.count("offline.pool.refills", pool_refills)
        return submissions

    def _collect_leaf(
        self,
        graph: ContactGraph,
        origin: int,
        neighbor: int,
        behaviors: dict[int, Behavior],
        offline: set[int],
    ) -> DestResponse | None:
        if neighbor in offline:
            return None
        behavior = self._behavior(behaviors, neighbor)
        if behavior is not Behavior.HONEST:
            name = behavior.value
            self.stats.behaviors_applied[name] = (
                self.stats.behaviors_applied.get(name, 0) + 1
            )
        return dest_compute(
            self.plan,
            self.pk,
            self.zk,
            graph,
            origin,
            neighbor,
            self.rng,
            behavior,
            leaf_source=self.leaf_source,
        )

    def _filter_leaves(
        self, response: DestResponse | None
    ) -> tuple[bgv.Ciphertext, ...] | None:
        """Origin-side proof check: a response with any invalid proof is
        treated as missing (replaced by the neutral element), bounding a
        Byzantine neighbor's influence (§4.6)."""
        if response is None:
            return None
        for message in response.messages:
            if not self.zk.verify(message.statement, message.proof):
                self.stats.origin_filtered_leaves += 1
                return None
        return response.ciphertexts

    def _run_one_hop(
        self,
        graph: ContactGraph,
        origin: int,
        behaviors: dict[int, Behavior],
        offline: set[int],
    ) -> OriginSubmission:
        decisions = semantics.origin_decisions(self.plan, graph, origin)
        inputs: dict[int, tuple[bgv.Ciphertext, ...]] = {}
        leaves: list[LeafMessage] = []
        for neighbor in decisions.selected_neighbors:
            response = self._collect_leaf(graph, origin, neighbor, behaviors, offline)
            cts = self._filter_leaves(response)
            if cts is None:
                continue
            inputs[neighbor] = cts
            leaves.extend(response.messages)
            self.stats.leaf_ciphertexts += len(cts)
        return self.build_origin_submission(
            graph, origin, decisions, inputs, leaves, behaviors
        )

    def build_origin_submission(
        self,
        graph: ContactGraph,
        origin: int,
        decisions,
        inputs: dict[int, tuple[bgv.Ciphertext, ...]],
        leaves: list[LeafMessage],
        behaviors: dict[int, Behavior] | None = None,
    ) -> OriginSubmission:
        """Combine already-collected (and proof-checked) neighbor
        ciphertexts into this origin's proved submission.

        Used both by :meth:`run` (in-process transport) and by the
        mixnet transport, where the inputs arrived as onion-routed
        mailbox payloads.
        """
        plan = self.plan
        behaviors = behaviors or {}
        missing = [
            member
            for member in getattr(decisions, "selected_neighbors", ())
            if inputs.get(member) is None
        ]
        if missing:
            self.stats.defaulted_members += len(missing)
            telemetry.count("engine.defaults.total", len(missing))
        seed = self.rng.getrandbits(64)
        output = _origin_combine(
            plan, self.pk, decisions, inputs, random.Random(seed), self.stats
        )
        origin_behavior = self._behavior(behaviors, origin)
        forge = origin_behavior in (
            Behavior.BAD_AGGREGATION,
            Behavior.FORGED_PROOF,
        )
        if origin_behavior is Behavior.BAD_AGGREGATION:
            # Submit a ciphertext that is *not* the declared combination.
            output = bgv.encrypt_monomial(
                self.pk, min(self.pk.profile.n - 1, 3), self.rng
            )
        statement, proof = _prove_aggregate(
            plan, self.pk, self.zk, output, decisions, inputs, seed, forge, self.rng
        )
        ordered_leaves = tuple(
            message
            for member in sorted(inputs)
            for message in leaves
            if message.sender == member
        )
        return OriginSubmission(
            origin=origin,
            ciphertext=output,
            aggregate_statement=statement,
            aggregate_proof=proof,
            leaves=ordered_leaves,
        )

    def _run_multi_hop(
        self,
        graph: ContactGraph,
        origin: int,
        behaviors: dict[int, Behavior],
        offline: set[int],
    ) -> OriginSubmission:
        """§4.4 flooding/aggregation over the BFS spanning tree."""
        plan = self.plan
        tree = graph.spanning_tree(origin, plan.hops)
        leaves: list[LeafMessage] = []
        intermediates: list[
            tuple[bgv.Ciphertext, zksnark.Statement, zksnark.Proof]
        ] = []
        max_exponent = leaf_max_exponent(plan)

        def node_indicator(node: int) -> bgv.Ciphertext | None:
            if node in offline and node != origin:
                return None
            behavior = self._behavior(behaviors, node)
            if behavior is Behavior.DROP_MESSAGE and node != origin:
                return None
            bindings = semantics.dest_vertex_bindings(graph, node)
            from repro.query.compiler import evaluate_all, evaluate_expression

            if evaluate_all(plan.dest_clauses, bindings):
                if plan.sum_expr is None:
                    exponent = 1
                else:
                    exponent = min(
                        max(0, evaluate_expression(plan.sum_expr, bindings)),
                        plan.layout.max_value,
                    )
            else:
                exponent = 0
            ct, claimed, randomness, forge = _encrypt_leaf(
                self.pk,
                exponent,
                self.rng,
                behavior,
                max_exponent,
                randomness=(
                    self.leaf_source.next()
                    if self.leaf_source is not None
                    else None
                ),
            )
            message = _prove_leaf(
                self.zk,
                self.pk,
                node,
                ct,
                claimed,
                randomness,
                max_exponent,
                forge,
                self.rng,
            )
            if not self.zk.verify(message.statement, message.proof):
                self.stats.origin_filtered_leaves += 1
                return None
            leaves.append(message)
            self.stats.leaf_ciphertexts += 1
            return ct

        def subtree(node: int) -> bgv.Ciphertext | None:
            own = node_indicator(node)
            child_outputs: dict[int, tuple[bgv.Ciphertext, ...]] = {}
            for child in tree.get(node, []):
                result = subtree(child)
                if result is not None:
                    child_outputs[child] = (result,)
            if own is None and not child_outputs:
                return None
            inputs = dict(child_outputs)
            if own is not None:
                inputs[node] = (own,)
            if node != origin and own is not None and not child_outputs:
                # A pure leaf forwards its indicator unchanged; its leaf
                # proof already covers it.
                return own
            seed = self.rng.getrandbits(64)
            output = _origin_combine(
                self.plan,
                self.pk,
                MultihopDecisions(contributes=True),
                inputs,
                random.Random(seed),
                self.stats,
            )
            flat = [ct for m in sorted(inputs) for ct in inputs[m]]
            statement = zkcircuits.aggregate_statement(
                output, flat, self.pk, self.plan
            )
            witness = zkcircuits.AggregateWitness(
                plan=self.plan,
                decisions=MultihopDecisions(contributes=True),
                seed=seed,
                inputs={m: inputs[m] for m in sorted(inputs)},
                public_key=self.pk,
            )
            proof = self.zk.prove(statement, witness)
            intermediates.append((output, statement, proof))
            return output

        bindings = semantics.origin_bindings(graph, origin)
        from repro.query.compiler import evaluate_all

        contributes = evaluate_all(plan.self_clauses, bindings)
        result = subtree(origin) if contributes else None
        if not contributes or result is None:
            seed = self.rng.getrandbits(64)
            output = _origin_combine(
                plan,
                self.pk,
                MultihopDecisions(contributes=False),
                {},
                random.Random(seed),
            )
            statement, proof = _prove_aggregate(
                plan,
                self.pk,
                self.zk,
                output,
                MultihopDecisions(contributes=False),
                {},
                seed,
                False,
                self.rng,
            )
            return OriginSubmission(
                origin=origin,
                ciphertext=output,
                aggregate_statement=statement,
                aggregate_proof=proof,
                leaves=(),
            )
        final_ct, final_statement, final_proof = intermediates.pop()
        return OriginSubmission(
            origin=origin,
            ciphertext=final_ct,
            aggregate_statement=final_statement,
            aggregate_proof=final_proof,
            leaves=tuple(leaves),
            intermediates=tuple(intermediates),
        )
