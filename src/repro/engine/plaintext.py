"""Plaintext reference executor.

Runs a compiled plan directly over the contact graph, producing exactly
the coefficient vector the encrypted pipeline would decrypt (before
noise).  Serves three purposes: the correctness oracle for the encrypted
engine, the noise-free "ground truth" in examples, and the §7 baseline
(alongside :mod:`repro.baselines.graphx`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine import histogram, semantics
from repro.engine.histogram import GroupHistogram
from repro.engine.malicious import Behavior
from repro.errors import UnsupportedQueryError
from repro.query.ast import OutputKind
from repro.query.plans import ExecutionPlan
from repro.workloads.graphgen import ContactGraph

#: Behaviours that break a *leaf* contribution: the affected neighbor's
#: term defaults to Enc(x^0) at every origin that selected it, either
#: because nothing arrived (DROP_MESSAGE) or because the origin-side
#: proof check filtered the response (§4.6).
LEAF_BREAKING_BEHAVIORS = frozenset(
    {
        Behavior.DROP_MESSAGE,
        Behavior.FORGED_PROOF,
        Behavior.OVERSIZED_EXPONENT,
        Behavior.MULTI_COEFFICIENT,
        Behavior.LARGE_COEFFICIENT,
    }
)

#: Behaviours that get a device's *own submission* rejected by the
#: aggregator: its aggregation proof is forged, so the whole origin
#: contribution is discarded (§4.6).
ORIGIN_REJECTING_BEHAVIORS = frozenset(
    {Behavior.FORGED_PROOF, Behavior.BAD_AGGREGATION}
)


@dataclass(frozen=True)
class PlaintextRun:
    """The un-noised outcome of a query."""

    plan: ExecutionPlan
    coefficients: tuple[int, ...]
    contributing_origins: int

    @property
    def histograms(self) -> list[GroupHistogram]:
        if self.plan.output is not OutputKind.HISTO:
            raise ValueError("not a HISTO query")
        return histogram.decode_histogram(list(self.coefficients), self.plan)

    @property
    def gsums(self) -> list[float]:
        if self.plan.output is not OutputKind.GSUM:
            raise ValueError("not a GSUM query")
        return histogram.decode_gsum(list(self.coefficients), self.plan)


def aggregate_coefficients(
    plan: ExecutionPlan,
    graph: ContactGraph,
    skipped_origins: frozenset[int] | set[int] | tuple[int, ...] = (),
    defaulted: dict[int, tuple[int, ...]] | None = None,
) -> tuple[list[int], int]:
    """Sum every origin's local exponents into the global coefficient
    vector (what homomorphic addition computes).

    ``skipped_origins`` / ``defaulted`` replay a
    :class:`repro.faults.report.RecoveryReport` against the oracle: an
    origin that submitted nothing is skipped outright, and a neighbor
    that defaulted to ``Enc(x^0)`` contributes exponent 0 — the
    *degraded* ground truth a faulted-but-recovered query must equal.
    """
    coefficients = [0] * plan.layout.total_coefficients
    contributing = 0
    skipped = frozenset(skipped_origins)
    defaulted = defaulted or {}
    for origin in range(graph.num_vertices):
        if origin in skipped:
            continue
        exponents = semantics.local_exponents(
            plan, graph, origin, defaulted=defaulted.get(origin, ())
        )
        if exponents:
            contributing += 1
        for exponent in exponents:
            coefficients[exponent] += 1
    return coefficients, contributing


@dataclass(frozen=True)
class DegradedExpectation:
    """The exact outcome a faulted-but-recovered run must produce.

    ``coefficients`` is the degraded ground truth;
    ``rejected_origins`` are the online origins whose submission the
    aggregator must discard; ``skipped_origins`` additionally includes
    offline origins (which never submit); ``defaulted`` maps every
    online origin to the selected neighbors whose term must default to
    ``Enc(x^0)`` (it covers rejected origins too, since those still run
    their collection phase and count defaults in their stats).
    """

    coefficients: tuple[int, ...]
    skipped_origins: frozenset[int]
    rejected_origins: frozenset[int]
    defaulted: dict[int, tuple[int, ...]] = field(default_factory=dict)

    @property
    def defaulted_pairs(self) -> int:
        return sum(len(v) for v in self.defaulted.values())


def expected_under_faults(
    plan: ExecutionPlan,
    graph: ContactGraph,
    offline: frozenset[int] | set[int] | tuple[int, ...] = (),
    behaviors: dict[int, Behavior] | None = None,
) -> DegradedExpectation:
    """Predict the degraded result of an encrypted run under faults.

    This is the audit harness's oracle: given which devices are offline
    and which are Byzantine, it derives — from the protocol rules alone,
    without running any cryptography — which origins end up skipped,
    which neighbor terms default, and therefore which coefficient vector
    the decrypted aggregate must equal.

    ``Behavior.LIE_IN_RANGE`` is rejected here: a lying-in-range device
    is *undetectable by design* (§4.7), so no exact oracle exists for it.
    Multi-hop plans only support the fault-free case (mid-tree churn is
    not modelled by ``_local_exponents_multihop``).
    """
    offline = frozenset(offline)
    behaviors = behaviors or {}
    if any(b is Behavior.LIE_IN_RANGE for b in behaviors.values()):
        raise UnsupportedQueryError(
            "lie-in-range is undetectable by design; no exact oracle exists"
        )
    if plan.hops > 1 and (offline or behaviors):
        raise UnsupportedQueryError(
            "the degraded oracle models faults for one-hop plans only"
        )
    rejected = frozenset(
        device
        for device, behavior in behaviors.items()
        if behavior in ORIGIN_REJECTING_BEHAVIORS and device not in offline
    )
    skipped = offline | rejected
    broken = {
        device
        for device, behavior in behaviors.items()
        if behavior in LEAF_BREAKING_BEHAVIORS
    }
    defaulted: dict[int, tuple[int, ...]] = {}
    for origin in range(graph.num_vertices):
        if origin in offline:
            continue
        decisions = semantics.origin_decisions(plan, graph, origin)
        missing = tuple(
            neighbor
            for neighbor in decisions.selected_neighbors
            if neighbor in offline or neighbor in broken
        )
        if missing:
            defaulted[origin] = missing
    coefficients, _ = aggregate_coefficients(
        plan, graph, skipped_origins=skipped, defaulted=defaulted
    )
    return DegradedExpectation(
        coefficients=tuple(coefficients),
        skipped_origins=skipped,
        rejected_origins=rejected,
        defaulted=defaulted,
    )


def run_plaintext(plan: ExecutionPlan, graph: ContactGraph) -> PlaintextRun:
    """Execute the plan without any cryptography or noise."""
    coefficients, contributing = aggregate_coefficients(plan, graph)
    return PlaintextRun(
        plan=plan,
        coefficients=tuple(coefficients),
        contributing_origins=contributing,
    )
