"""Plaintext reference executor.

Runs a compiled plan directly over the contact graph, producing exactly
the coefficient vector the encrypted pipeline would decrypt (before
noise).  Serves three purposes: the correctness oracle for the encrypted
engine, the noise-free "ground truth" in examples, and the §7 baseline
(alongside :mod:`repro.baselines.graphx`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import histogram, semantics
from repro.engine.histogram import GroupHistogram
from repro.query.ast import OutputKind
from repro.query.plans import ExecutionPlan
from repro.workloads.graphgen import ContactGraph


@dataclass(frozen=True)
class PlaintextRun:
    """The un-noised outcome of a query."""

    plan: ExecutionPlan
    coefficients: tuple[int, ...]
    contributing_origins: int

    @property
    def histograms(self) -> list[GroupHistogram]:
        if self.plan.output is not OutputKind.HISTO:
            raise ValueError("not a HISTO query")
        return histogram.decode_histogram(list(self.coefficients), self.plan)

    @property
    def gsums(self) -> list[float]:
        if self.plan.output is not OutputKind.GSUM:
            raise ValueError("not a GSUM query")
        return histogram.decode_gsum(list(self.coefficients), self.plan)


def aggregate_coefficients(
    plan: ExecutionPlan,
    graph: ContactGraph,
    skipped_origins: frozenset[int] | set[int] | tuple[int, ...] = (),
    defaulted: dict[int, tuple[int, ...]] | None = None,
) -> tuple[list[int], int]:
    """Sum every origin's local exponents into the global coefficient
    vector (what homomorphic addition computes).

    ``skipped_origins`` / ``defaulted`` replay a
    :class:`repro.faults.report.RecoveryReport` against the oracle: an
    origin that submitted nothing is skipped outright, and a neighbor
    that defaulted to ``Enc(x^0)`` contributes exponent 0 — the
    *degraded* ground truth a faulted-but-recovered query must equal.
    """
    coefficients = [0] * plan.layout.total_coefficients
    contributing = 0
    skipped = frozenset(skipped_origins)
    defaulted = defaulted or {}
    for origin in range(graph.num_vertices):
        if origin in skipped:
            continue
        exponents = semantics.local_exponents(
            plan, graph, origin, defaulted=defaulted.get(origin, ())
        )
        if exponents:
            contributing += 1
        for exponent in exponents:
            coefficients[exponent] += 1
    return coefficients, contributing


def run_plaintext(plan: ExecutionPlan, graph: ContactGraph) -> PlaintextRun:
    """Execute the plan without any cryptography or noise."""
    coefficients, contributing = aggregate_coefficients(plan, graph)
    return PlaintextRun(
        plan=plan,
        coefficients=tuple(coefficients),
        contributing_origins=contributing,
    )
