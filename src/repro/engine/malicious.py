"""Byzantine device behaviours (§4.6, §4.7).

The MC assumption says 1-2% of devices may be Byzantine.  The attacks
the paper enumerates — and the outcomes the ZKP layer must produce:

* ciphertexts with a coefficient larger than 1, with more than one
  non-zero coefficient, or with an exponent above the allowed bound:
  the prover cannot produce a valid proof, so the forged proof is
  rejected and the data discarded;
* refusing to send a message: the contribution defaults to Enc(x^0)
  (neutral) and nothing leaks;
* encrypting a *plausible but wrong* value: undetectable by design —
  "there is no way to tell what the correct input of a malicious client
  would have been" — so its impact is bounded by the per-device
  contribution limit.
"""

from __future__ import annotations

from enum import Enum


class Behavior(Enum):
    """What a Byzantine device does with one contribution."""

    HONEST = "honest"
    #: Encrypt x^b with b beyond the allowed per-contribution bound.
    OVERSIZED_EXPONENT = "oversized-exponent"
    #: Encrypt a polynomial with several non-zero coefficients.
    MULTI_COEFFICIENT = "multi-coefficient"
    #: Encrypt c * x^b with c > 1 (inflating one bin's count).
    LARGE_COEFFICIENT = "large-coefficient"
    #: Send a valid-looking ciphertext with a forged (random) proof.
    FORGED_PROOF = "forged-proof"
    #: Send nothing at all.
    DROP_MESSAGE = "drop-message"
    #: Encrypt a wrong-but-legal value with an honest proof (§4.7:
    #: cannot be detected; impact bounded).
    LIE_IN_RANGE = "lie-in-range"
    #: As origin: submit a ciphertext that is not the product of the
    #: declared inputs.
    BAD_AGGREGATION = "bad-aggregation"


#: Behaviours the ZKP layer must catch (contribution discarded).
DETECTED_BY_ZKP = frozenset(
    {
        Behavior.OVERSIZED_EXPONENT,
        Behavior.MULTI_COEFFICIENT,
        Behavior.LARGE_COEFFICIENT,
        Behavior.FORGED_PROOF,
        Behavior.BAD_AGGREGATION,
    }
)

#: Behaviours that are tolerated with bounded impact.
UNDETECTABLE = frozenset({Behavior.LIE_IN_RANGE, Behavior.DROP_MESSAGE})
