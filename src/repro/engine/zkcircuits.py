"""The two zkSNARK circuits of §4.6.

* ``wf-encryption`` — a submitted ciphertext is *well-formed*: it
  encrypts a monomial x^b with coefficient 1 and b inside the allowed
  range.  This is what stops a Byzantine device from reporting a vector
  with several non-zero coefficients or a coefficient larger than 1.

* ``wf-aggregation`` — an origin's submitted ciphertext really is the
  prescribed homomorphic combination (bucket selection, products,
  group shifts) of the declared input ciphertexts.  The witness contains
  the origin's private decisions and the replay seed for its fresh
  encryptions; the circuit re-executes the public aggregation function
  and compares digests.

Statements carry ciphertext digests and the public-key fingerprint; the
Groth16 cost model therefore scales verification time with ciphertext
size, reproducing the aggregator-cost behaviour of Figure 9(b).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto import bgv, zksnark
from repro.crypto.hashes import protocol_hash
from repro.query.plans import ExecutionPlan

LEAF_CIRCUIT = "wf-encryption"
AGGREGATE_CIRCUIT = "wf-aggregation"

#: Constraint-count estimates for the cost model: the encryption circuit
#: is dominated by the ring multiplications of one BGV encryption; the
#: aggregation circuit by d ciphertext products.
LEAF_CONSTRAINTS = 500_000
AGGREGATE_CONSTRAINTS = 100_000


@dataclass(frozen=True)
class LeafWitness:
    """Private inputs of a well-formedness proof."""

    exponent: int
    randomness: bgv.EncryptionRandomness
    public_key: bgv.PublicKey


@dataclass(frozen=True)
class AggregateWitness:
    """Private inputs of an aggregation proof."""

    plan: ExecutionPlan
    decisions: object  # semantics.OriginDecisions
    seed: int
    inputs: dict  # neighbor -> tuple[Ciphertext, ...]
    public_key: bgv.PublicKey


def plan_digest(plan: ExecutionPlan) -> bytes:
    """A public identifier binding proofs to one query plan."""
    return protocol_hash(b"plan", str(plan.query).encode())


def leaf_statement(
    ciphertext: bgv.Ciphertext, pk: bgv.PublicKey, max_exponent: int
) -> zksnark.Statement:
    return zksnark.Statement(
        circuit=LEAF_CIRCUIT,
        public_inputs=(
            ciphertext.serialize(),
            pk.fingerprint(),
            max_exponent,
        ),
    )


def aggregate_statement(
    output: bgv.Ciphertext,
    inputs: list[bgv.Ciphertext],
    pk: bgv.PublicKey,
    plan: ExecutionPlan,
) -> zksnark.Statement:
    return zksnark.Statement(
        circuit=AGGREGATE_CIRCUIT,
        public_inputs=(
            output.serialize(),
            tuple(ct.digest() for ct in inputs),
            pk.fingerprint(),
            plan_digest(plan),
        ),
    )


def _check_leaf(public_inputs: tuple, witness: object) -> bool:
    if not isinstance(witness, LeafWitness):
        return False
    ct_bytes, pk_fp, max_exponent = public_inputs
    if witness.public_key.fingerprint() != pk_fp:
        return False
    if not 0 <= witness.exponent <= max_exponent:
        return False
    rebuilt = bgv.encrypt_monomial(
        witness.public_key,
        witness.exponent,
        random.Random(0),
        randomness=witness.randomness,
    )
    return rebuilt.serialize() == ct_bytes


def _check_aggregate(public_inputs: tuple, witness: object) -> bool:
    # Imported here: engine.encrypted depends on this module for the
    # statement builders.
    from repro.engine.encrypted import replay_origin_compute

    if not isinstance(witness, AggregateWitness):
        return False
    out_bytes, input_digests, pk_fp, plan_id = public_inputs
    if witness.public_key.fingerprint() != pk_fp:
        return False
    if plan_digest(witness.plan) != plan_id:
        return False
    provided = tuple(
        ct.digest()
        for cts in witness.inputs.values()
        for ct in cts
    )
    if tuple(input_digests) != provided:
        return False
    rebuilt = replay_origin_compute(
        witness.plan,
        witness.public_key,
        witness.decisions,
        witness.inputs,
        witness.seed,
    )
    return rebuilt.serialize() == out_bytes


def build_circuits() -> list[zksnark.Circuit]:
    """The circuit set the genesis committee performs trusted setup for."""
    return [
        zksnark.Circuit(LEAF_CIRCUIT, _check_leaf, LEAF_CONSTRAINTS),
        zksnark.Circuit(AGGREGATE_CIRCUIT, _check_aggregate, AGGREGATE_CONSTRAINTS),
    ]
