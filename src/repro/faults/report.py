"""Per-query recovery bookkeeping.

A :class:`RecoveryReport` is attached to ``QueryResult.metadata`` by
:meth:`repro.core.system.MyceliumSystem.run_query` whenever the query
ran over a :class:`repro.mixnet.network.MixnetWorld`.  It records what
the recovery machinery actually did — retransmissions, replica
failovers, ``Enc(x^0)`` defaults, decryption retries — in enough detail
that the released answer can be *explained*: the chaos property tests
recompute the plaintext oracle with exactly the report's skipped
origins and defaulted pairs excluded and require equality.

This module is deliberately free of mixnet imports so result types can
depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RecoveryReport:
    """What it took to finish one query under injected faults."""

    #: FaultKind value -> number of fault events the injector applied.
    faults_injected: dict[str, int] = field(default_factory=dict)
    #: Payload re-sends after an unconfirmed delivery (any replica).
    retransmissions: int = 0
    #: Re-sends that switched to a redundant pre-established replica path.
    failovers: int = 0
    #: Payloads still unconfirmed after bounded retransmission.
    undelivered: int = 0
    #: Origins that were offline at collection time and submitted nothing.
    skipped_origins: tuple[int, ...] = ()
    #: origin -> neighbors whose contribution defaulted to Enc(x^0).
    defaulted_by_origin: dict[int, tuple[int, ...]] = field(
        default_factory=dict
    )
    #: Threshold-decryption attempts (1 = no committee fault).
    decrypt_attempts: int = 1
    #: Members excluded by robust decryption for bad partials.
    flagged_members: tuple[int, ...] = ()
    #: Bulletin-board complaint payloads observed after the query.
    complaints: tuple[str, ...] = ()
    #: C-rounds consumed by the query's communication phases.
    crounds: int = 0

    @property
    def defaulted_devices(self) -> tuple[int, ...]:
        seen: set[int] = set()
        for neighbors in self.defaulted_by_origin.values():
            seen.update(neighbors)
        return tuple(sorted(seen))

    @property
    def defaulted_pairs(self) -> int:
        return sum(len(v) for v in self.defaulted_by_origin.values())

    @property
    def decrypt_retries(self) -> int:
        return max(0, self.decrypt_attempts - 1)

    @property
    def total_faults(self) -> int:
        return sum(self.faults_injected.values())

    def summary(self) -> str:
        """Human-readable multi-line digest (the ``repro chaos`` CLI)."""
        lines = ["RecoveryReport"]
        if self.faults_injected:
            injected = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.faults_injected.items())
            )
        else:
            injected = "none"
        lines.append(f"  faults injected:     {injected}")
        lines.append(f"  retransmissions:     {self.retransmissions}")
        lines.append(f"  replica failovers:   {self.failovers}")
        lines.append(f"  undelivered sends:   {self.undelivered}")
        lines.append(
            f"  defaulted pairs:     {self.defaulted_pairs} "
            f"(devices {list(self.defaulted_devices)})"
        )
        lines.append(
            f"  skipped origins:     {list(self.skipped_origins)}"
        )
        lines.append(
            f"  decrypt attempts:    {self.decrypt_attempts} "
            f"({self.decrypt_retries} retries)"
        )
        if self.flagged_members:
            lines.append(
                f"  flagged members:     {list(self.flagged_members)}"
            )
        lines.append(f"  complaints:          {len(self.complaints)}")
        lines.append(f"  C-rounds consumed:   {self.crounds}")
        return "\n".join(lines)
