"""Applying a :class:`FaultPlan` from inside the mixnet clock.

The injector is consulted by :meth:`MixnetWorld.run_round` (churn, wire
faults on deposit), :meth:`MixDevice.process_wire` (fetch-side loss),
and :meth:`MyceliumSystem.run_query` (committee availability).  It is
duck-typed — attached as ``world.fault_injector`` — so the mixnet layer
never imports this package and the dependency points one way.

Determinism: every per-message verdict is a pure function of
``(plan.seed, round, device, message bytes)`` via the protocol hash, so
re-running the same seeded world replays the exact same fault sequence.
The injector only ever toggles ``online`` for devices named in its own
churn windows; devices a test manages by hand are untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import telemetry
from repro.crypto.hashes import hash_fraction, hash_to_int, protocol_hash
from repro.crypto.polyring import RingElement
from repro.faults.plan import ChurnWindow, FaultKind, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mixnet.network import MixnetWorld

#: Wire verdicts returned by :meth:`FaultInjector.on_deposit`.
DELIVER = "deliver"
DROP = "drop"
DELAY = "delay"
CORRUPT = "corrupt"


def _corrupted(data: bytes) -> bytes:
    """Flip the last byte: same shape, different digest."""
    if not data:
        return data
    return data[:-1] + bytes([data[-1] ^ 0xFF])


class FaultInjector:
    """Applies one plan to one world; tracks what it injected."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._seed_bytes = plan.seed.to_bytes(8, "big", signed=False)
        self.counts: dict[str, int] = {}
        self._windows: dict[int, list[ChurnWindow]] = {}
        for window in plan.churn_windows:
            self._windows.setdefault(window.device_id, []).append(window)
        #: (due_round, device_id, mailbox, data) held back by DELAY.
        self._delayed: list[tuple[int, int, bytes, bytes]] = []
        #: Released (device, digest) pairs exempt from a second verdict —
        #: a message is faulted at most once, else a delay never resolves.
        self._released: set[tuple[int, bytes]] = set()
        #: Windows already counted as a fault event (one per window).
        self._counted_windows: set[ChurnWindow] = set()

    # -- bookkeeping --------------------------------------------------------

    def _record(self, kind: FaultKind, count: int = 1) -> None:
        self.counts[kind.value] = self.counts.get(kind.value, 0) + count
        telemetry.count("faults.injected.total", count)

    def fault_counts(self) -> dict[str, int]:
        return dict(self.counts)

    # -- attachment ---------------------------------------------------------

    def attach(self, world: MixnetWorld) -> FaultInjector:
        world.fault_injector = self
        return self

    # -- churn + delayed release (start of every C-round) -------------------

    def begin_round(self, world: MixnetWorld, round_number: int) -> None:
        due = [d for d in self._delayed if d[0] <= round_number]
        if due:
            self._delayed = [d for d in self._delayed if d[0] > round_number]
            for _, device_id, mailbox, data in due:
                self._released.add((device_id, protocol_hash(data)))
                world.devices[device_id].pending_deposits.append(
                    (mailbox, data)
                )
        for device_id, windows in self._windows.items():
            device = world.devices.get(device_id)
            if device is None:
                continue
            active = [w for w in windows if w.covers(round_number)]
            if active:
                if device.online:
                    device.online = False
                    telemetry.count("faults.churn.offline")
                    for window in active:
                        if window not in self._counted_windows:
                            self._counted_windows.add(window)
                            self._record(window.kind)
            elif not device.online:
                device.online = True

    # -- wire faults --------------------------------------------------------

    def _uniform(
        self, domain: bytes, round_number: int, device_id: int, data: bytes
    ) -> float:
        return hash_fraction(
            self._seed_bytes,
            domain,
            round_number.to_bytes(8, "big", signed=False),
            device_id.to_bytes(8, "big", signed=False),
            protocol_hash(data),
        )

    def on_deposit(
        self, round_number: int, device_id: int, mailbox: bytes, data: bytes
    ) -> tuple[str, bytes]:
        """Verdict for one mailbox deposit: (action, wire bytes)."""
        plan = self.plan
        if round_number < plan.wire_fault_start or not plan.has_wire_faults:
            return DELIVER, data
        key = (device_id, protocol_hash(data))
        if key in self._released:
            self._released.discard(key)
            return DELIVER, data
        u = self._uniform(b"wire-deposit", round_number, device_id, data)
        if u < plan.wire_drop_rate:
            self._record(FaultKind.WIRE_DROP)
            telemetry.count("faults.wire.dropped")
            return DROP, data
        u -= plan.wire_drop_rate
        if u < plan.wire_delay_rate:
            self._record(FaultKind.WIRE_DELAY)
            telemetry.count("faults.wire.delayed")
            self._delayed.append(
                (round_number + plan.delay_rounds, device_id, mailbox, data)
            )
            return DELAY, data
        u -= plan.wire_delay_rate
        if u < plan.wire_corrupt_rate:
            self._record(FaultKind.WIRE_CORRUPT)
            telemetry.count("faults.wire.corrupted")
            return CORRUPT, _corrupted(data)
        return DELIVER, data

    def drop_on_receive(
        self, round_number: int, device_id: int, handle: bytes, data: bytes
    ) -> bool:
        """Fetch-side silent loss: the batch verified, but this device
        never processes one payload (e.g. a flaky local link)."""
        plan = self.plan
        if (
            round_number < plan.wire_fault_start
            or not plan.receive_drop_rate
        ):
            return False
        u = self._uniform(b"wire-receive", round_number, device_id, data)
        if u < plan.receive_drop_rate:
            self._record(FaultKind.WIRE_DROP)
            telemetry.count("faults.wire.dropped")
            return True
        return False

    # -- committee faults ---------------------------------------------------

    def committee_schedule(self, member_ids: list[int]) -> list[list[int]]:
        """Availability schedule for ``decrypt_with_liveness_retry``:
        dropouts sit out the first attempts, then everyone returns."""
        away = [m for m in member_ids if m in self.plan.committee_dropouts]
        if not away:
            return [list(member_ids)]
        self._record(FaultKind.COMMITTEE_DROPOUT, len(away))
        telemetry.count("faults.committee.dropouts", len(away))
        present = [m for m in member_ids if m not in away]
        attempts = max(1, self.plan.committee_offline_attempts)
        return [list(present) for _ in range(attempts)] + [list(member_ids)]

    def corrupt_members(self, member_ids: list[int]) -> set[int]:
        """Members that will submit bad partials, for
        ``robust_threshold_decrypt``."""
        corrupt = {
            m for m in member_ids if m in self.plan.corrupt_committee
        }
        if corrupt:
            self._record(FaultKind.COMMITTEE_CORRUPT, len(corrupt))
            telemetry.count("faults.committee.dropouts", len(corrupt))
        return corrupt

    def corrupt_partial(
        self, device_id: int, value: RingElement
    ) -> RingElement:
        """Per-value corruption hook for ``robust_threshold_decrypt``.

        Members named in ``plan.corrupt_committee`` have every partial
        decryption perturbed by a seed-derived nonzero constant, so the
        robust decoder must correct *and* flag them; everyone else's
        value passes through untouched.  Deterministic in
        ``(plan.seed, device_id)`` — a resumed campaign injects the
        exact same lie and reproduces the same flagged set.
        """
        if device_id not in self.plan.corrupt_committee:
            return value
        q = value.params.q
        offset = (
            hash_to_int(
                self._seed_bytes,
                b"corrupt-partial",
                device_id.to_bytes(8, "big", signed=False),
            )
            % (q - 1)
        ) + 1
        self._record(FaultKind.CORRUPT_PARTIAL)
        telemetry.count("faults.committee.corrupted")
        return value + RingElement.constant(value.params, offset)

    # -- liveness pings (campaign health monitor) ---------------------------

    def device_online(self, device_id: int, round_number: int) -> bool:
        """One liveness ping: is the device inside any of its churn
        windows at this round?  Pure function of (plan, round), so a
        resumed campaign re-derives the same answer."""
        return not any(
            w.covers(round_number)
            for w in self._windows.get(device_id, ())
        )

    # -- process-level coordinator faults -----------------------------------

    def coordinator_crash_due(self, query_index: int, phase: str) -> bool:
        """Whether the plan kills the coordinator at this boundary.
        Recording is the caller's job (via :meth:`record_coordinator_crash`)
        once the crash actually fires — a resumed run consults the journal
        and skips boundaries it already died at."""
        return self.plan.kills_coordinator_at(query_index, phase)

    def record_coordinator_crash(self) -> None:
        self._record(FaultKind.COORDINATOR_CRASH)
