"""Seeded, deterministic fault schedules.

A :class:`FaultPlan` is pure data: which devices go offline in which
C-round windows, which wire-fault rates apply from which round, and
which committee members sit out the first decryption attempts.  The
same ``(seed, parameters)`` pair always yields the same plan, and every
per-message verdict drawn from the plan (see
:class:`repro.faults.injector.FaultInjector`) hashes the plan seed with
the round number and message bytes, so chaos runs are replayable
bit-for-bit — no hidden RNG state, no dependence on Python hash
randomization.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.errors import ParameterError

#: "Forever" for crash faults — a round no simulation reaches.
NEVER_RECOVERS = 1 << 31


class FaultKind(enum.Enum):
    """The fault families the injector can schedule."""

    CHURN = "churn"
    CRASH = "crash"
    WIRE_DROP = "wire-drop"
    WIRE_DELAY = "wire-delay"
    WIRE_CORRUPT = "wire-corrupt"
    COMMITTEE_DROPOUT = "committee-dropout"
    COMMITTEE_CORRUPT = "committee-corrupt"
    #: One member's partial decryption perturbed on the wire — the
    #: per-value fault :meth:`FaultInjector.corrupt_partial` applies
    #: inside the robust-decode path (§5).
    CORRUPT_PARTIAL = "corrupt-partial"
    COORDINATOR_CRASH = "coordinator-crash"


@dataclass(frozen=True)
class ChurnWindow:
    """One device-offline interval: [start_round, end_round)."""

    device_id: int
    start_round: int
    end_round: int
    kind: FaultKind = FaultKind.CHURN

    def covers(self, round_number: int) -> bool:
        return self.start_round <= round_number < self.end_round


@dataclass(frozen=True)
class FaultPlan:
    """A complete, replayable fault schedule for one chaos run."""

    seed: int
    churn_windows: tuple[ChurnWindow, ...] = ()
    #: Per-deposit fault probabilities, applied from
    #: ``wire_fault_start`` onward.  Their sum must stay <= 1.
    wire_drop_rate: float = 0.0
    wire_delay_rate: float = 0.0
    wire_corrupt_rate: float = 0.0
    #: Fetch-side silent loss (the aggregator serves the batch but the
    #: device never sees one payload) — recovered purely by retransmission.
    receive_drop_rate: float = 0.0
    wire_fault_start: int = 0
    #: How many C-rounds a delayed deposit is held back.  Round-keyed
    #: AEAD nonces mean a late message no longer decrypts, so a delay is
    #: a loss the sender can only fix by retransmitting (§3.5).
    delay_rounds: int = 2
    #: Committee members unavailable for the first
    #: ``committee_offline_attempts`` decryption attempts (§6.5).
    committee_dropouts: tuple[int, ...] = ()
    committee_offline_attempts: int = 2
    #: Committee members that return corrupted partial decryptions,
    #: routed into ``robust_threshold_decrypt`` (§5).
    corrupt_committee: tuple[int, ...] = ()
    #: Process-level coordinator kills: ``(query_index, phase)`` pairs.
    #: The campaign runner raises :class:`repro.errors.CoordinatorCrash`
    #: right after that phase's journal record is durable; a resumed run
    #: sees the record in the journal and does not crash again.
    coordinator_kills: tuple[tuple[int, str], ...] = ()

    def __post_init__(self) -> None:
        total = self.wire_drop_rate + self.wire_delay_rate + self.wire_corrupt_rate
        if total > 1.0:
            raise ParameterError(
                f"wire fault rates sum to {total:.3f} > 1"
            )
        for rate in (
            self.wire_drop_rate,
            self.wire_delay_rate,
            self.wire_corrupt_rate,
            self.receive_drop_rate,
        ):
            if not 0.0 <= rate <= 1.0:
                raise ParameterError(f"fault rate {rate} outside [0, 1]")
        if self.delay_rounds < 1:
            raise ParameterError("delay_rounds must be >= 1")

    @property
    def has_wire_faults(self) -> bool:
        return bool(
            self.wire_drop_rate
            or self.wire_delay_rate
            or self.wire_corrupt_rate
            or self.receive_drop_rate
        )

    def managed_devices(self) -> frozenset[int]:
        """Devices whose ``online`` flag the injector owns."""
        return frozenset(w.device_id for w in self.churn_windows)

    def kills_coordinator_at(self, query_index: int, phase: str) -> bool:
        """Whether the coordinator process dies at this phase boundary."""
        return (query_index, phase) in self.coordinator_kills

    @classmethod
    def generate(
        cls,
        seed: int,
        num_devices: int,
        *,
        churn_fraction: float = 0.0,
        churn_window_rounds: int = 4,
        horizon_rounds: int = 64,
        start_round: int = 0,
        protected_devices: tuple[int, ...] = (),
        crash_devices: tuple[int, ...] = (),
        crash_round: int | None = None,
        wire_drop_rate: float = 0.0,
        wire_delay_rate: float = 0.0,
        wire_corrupt_rate: float = 0.0,
        receive_drop_rate: float = 0.0,
        wire_fault_start: int = 0,
        delay_rounds: int = 2,
        committee_dropouts: tuple[int, ...] = (),
        committee_offline_attempts: int = 2,
        corrupt_committee: tuple[int, ...] = (),
        coordinator_kills: tuple[tuple[int, str], ...] = (),
    ) -> FaultPlan:
        """Sample a plan: iid per-window churn plus the given wire rates.

        ``churn_fraction`` is the probability that an eligible device is
        offline during any given window of ``churn_window_rounds``
        C-rounds — the quantity ``SystemParameters.churn_fraction``
        models analytically in ``analysis/goodput.py``.
        ``protected_devices`` never churn (e.g. the endpoints a test is
        measuring); ``crash_devices`` go down at ``crash_round`` (default
        ``start_round``) and never come back.
        """
        rng = random.Random(seed)
        windows: list[ChurnWindow] = []
        excluded = set(protected_devices) | set(crash_devices)
        eligible = [d for d in range(num_devices) if d not in excluded]
        if churn_fraction > 0:
            for window_start in range(
                start_round, start_round + horizon_rounds, churn_window_rounds
            ):
                for device_id in eligible:
                    if rng.random() < churn_fraction:
                        windows.append(
                            ChurnWindow(
                                device_id=device_id,
                                start_round=window_start,
                                end_round=window_start + churn_window_rounds,
                            )
                        )
        for device_id in crash_devices:
            windows.append(
                ChurnWindow(
                    device_id=device_id,
                    start_round=(
                        start_round if crash_round is None else crash_round
                    ),
                    end_round=NEVER_RECOVERS,
                    kind=FaultKind.CRASH,
                )
            )
        return cls(
            seed=seed,
            churn_windows=tuple(windows),
            wire_drop_rate=wire_drop_rate,
            wire_delay_rate=wire_delay_rate,
            wire_corrupt_rate=wire_corrupt_rate,
            receive_drop_rate=receive_drop_rate,
            wire_fault_start=wire_fault_start,
            delay_rounds=delay_rounds,
            committee_dropouts=tuple(committee_dropouts),
            committee_offline_attempts=committee_offline_attempts,
            corrupt_committee=tuple(corrupt_committee),
            coordinator_kills=tuple(coordinator_kills),
        )
