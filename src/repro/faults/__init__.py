"""Deterministic fault injection and recovery bookkeeping.

The paper's resilience story (§3.4 churn, Figure 5(c) goodput under
forwarder failure, §6.5 committee liveness) is exercised here as an
executable protocol property rather than a closed-form estimate: a
seeded :class:`FaultPlan` schedules per-C-round faults, a
:class:`FaultInjector` applies them from inside the mixnet clock, and
the recovery machinery spread across ``mixnet``/``core``/``engine``
reports what it had to do in a :class:`RecoveryReport`.

See ``docs/RESILIENCE.md`` for the fault model and the recovery
semantics layer by layer.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import ChurnWindow, FaultKind, FaultPlan
from repro.faults.report import RecoveryReport

__all__ = [
    "ChurnWindow",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "RecoveryReport",
]
