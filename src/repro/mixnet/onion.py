"""Onion encryption helpers (§3.2, §3.5).

A source s holding symmetric keys sk_1..sk_k (one per hop, established by
telescoping) wraps a payload as

    SEnc(sk_1, rho,   SEnc(sk_2, rho+1, ... SEnc(sk_k, rho+k-1, payload)))

where rho is the C-round in which hop 1 processes the message.  Each hop
strips one layer (ChaCha20 is its own inverse) and forwards under the
next link's path id.  Outer layers are deliberately MAC-less so a hop
that is missing an expected input can substitute a random dummy that
colluding downstream hops cannot distinguish from real traffic; only the
innermost payload (source to destination) carries authentication.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.crypto import aead
from repro.errors import ProtocolError

PATH_ID_BYTES = 16


def new_path_id(rng=None) -> bytes:
    """A fresh random path id."""
    if rng is None:
        return os.urandom(PATH_ID_BYTES)
    return bytes(rng.randrange(256) for _ in range(PATH_ID_BYTES))


@dataclass(frozen=True)
class WireMessage:
    """What actually sits in a mailbox: path id plus opaque body."""

    path_id: bytes
    body: bytes

    def encode(self) -> bytes:
        if len(self.path_id) != PATH_ID_BYTES:
            raise ProtocolError("path ids are 16 bytes")
        return self.path_id + self.body

    @classmethod
    def decode(cls, data: bytes) -> WireMessage:
        if len(data) < PATH_ID_BYTES:
            raise ProtocolError("wire message shorter than a path id")
        return cls(path_id=data[:PATH_ID_BYTES], body=data[PATH_ID_BYTES:])


def wrap(payload: bytes, hop_keys: list[bytes], base_round: int) -> bytes:
    """Build the onion body handed to hop 1.

    ``hop_keys[i]`` is the key shared with hop i+1; layer i is encrypted
    under the round number at which that hop will peel it.
    """
    body = payload
    for offset in reversed(range(len(hop_keys))):
        body = aead.senc(hop_keys[offset], base_round + offset, body)
    return body


def peel(hop_key: bytes, round_number: int, body: bytes) -> bytes:
    """Strip one onion layer (what a forwarder does each C-round)."""
    return aead.senc(hop_key, round_number, body)


def unwrap_reverse(payload: bytes, hop_keys: list[bytes], base_round: int) -> bytes:
    """Peel a *reverse-path* onion at the source.

    On the way back, hop i (closest to the source last) adds a layer
    under its shared key and the round it forwarded in; the source knows
    every key and removes them all.  ``hop_keys`` is ordered from the hop
    nearest the source outward, and ``base_round`` is the round in which
    the nearest hop deposited to the source.
    """
    body = payload
    for offset, key in enumerate(hop_keys):
        body = aead.senc(key, base_round - offset, body)
    return body


def dummy_body(length: int, rng=None) -> bytes:
    """A random body indistinguishable from an SEnc ciphertext (§3.5)."""
    return aead.random_dummy(length, rng)
