"""Public bulletin board.

Assumption 5 of §3.1: a public bulletin board (a blockchain in
deployment) prevents the aggregator from equivocating.  The board is an
append-only log; every participant reads the same entries, so a root
posted here is a commitment the aggregator cannot later change.

The board also hosts the collectively chosen random bitstring B used to
seed hop selection (§3.4, "chosen collectively as, e.g., in Honeycrisp")
and the challenge/response protocol for dropped messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashes import protocol_hash
from repro.errors import EquivocationError, ProtocolError


@dataclass(frozen=True)
class BulletinEntry:
    """One immutable log entry."""

    sequence: int
    author: str
    tag: str
    payload: bytes


@dataclass
class BulletinBoard:
    """Append-only, globally consistent log."""

    entries: list[BulletinEntry] = field(default_factory=list)

    def post(self, author: str, tag: str, payload: bytes) -> BulletinEntry:
        entry = BulletinEntry(
            sequence=len(self.entries), author=author, tag=tag, payload=payload
        )
        self.entries.append(entry)
        return entry

    def find(self, tag: str) -> list[BulletinEntry]:
        return [e for e in self.entries if e.tag == tag]

    def latest(self, tag: str) -> BulletinEntry:
        matches = self.find(tag)
        if not matches:
            raise ProtocolError(f"no bulletin entry tagged '{tag}'")
        return matches[-1]

    def require_unique(self, tag: str) -> BulletinEntry:
        """Fetch a tag that must have been posted exactly once.

        Two different payloads under the same unique tag is equivocation —
        exactly what the board exists to expose.
        """
        matches = self.find(tag)
        if not matches:
            raise ProtocolError(f"no bulletin entry tagged '{tag}'")
        payloads = {m.payload for m in matches}
        if len(payloads) > 1:
            raise EquivocationError(f"conflicting bulletin entries for '{tag}'")
        return matches[0]

    def head_digest(self) -> bytes:
        """Digest of the whole log — a cheap consistency fingerprint."""
        digest = b""
        for entry in self.entries:
            digest = protocol_hash(
                digest,
                entry.author.encode(),
                entry.tag.encode(),
                entry.payload,
            )
        return digest


def derive_beacon(board: BulletinBoard, label: str) -> bytes:
    """The shared random bitstring B (§3.4).

    In deployment B is chosen collectively (Honeycrisp-style) so the
    aggregator cannot bias it; here it is derived from the board state at
    the moment the directory roots were committed, which the aggregator
    equally cannot control after the fact.
    """
    return protocol_hash(b"beacon", label.encode(), board.head_digest())
