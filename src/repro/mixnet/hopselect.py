"""Hop selection for telescoping paths (§3.4).

Devices select hop i of a path by drawing pseudonym numbers x uniformly
from [0, Np*P) until

    (i-1) * f  <=  H(x || B) / H_max  <  i * f,

where B is the collectively chosen beacon.  Because the directory M1 is
committed *before* B is revealed, the aggregator cannot bias hop
positions toward colluding devices.  Buckets for different hop positions
are disjoint, so a k*f fraction of devices serve as forwarders overall
(this is the "k*f proportion of participants will serve as forwarders"
used by the Figure 7 bandwidth analysis).
"""

from __future__ import annotations

import random

from repro.crypto.hashes import hash_fraction
from repro.errors import ParameterError


def bucket_value(index: int, beacon: bytes) -> float:
    """H(x || B) / H_max in [0, 1)."""
    return hash_fraction(index.to_bytes(8, "big"), beacon)


def is_eligible(
    index: int, beacon: bytes, hop_position: int, fraction: float
) -> bool:
    """Whether pseudonym number ``index`` may serve as hop ``hop_position``
    (1-based)."""
    if hop_position < 1:
        raise ParameterError("hop positions are 1-based")
    value = bucket_value(index, beacon)
    return (hop_position - 1) * fraction <= value < hop_position * fraction


def hop_position_for(
    index: int, beacon: bytes, num_hops: int, fraction: float
) -> int | None:
    """Which hop position (1-based) this pseudonym serves, or None."""
    value = bucket_value(index, beacon)
    if value >= num_hops * fraction:
        return None
    return int(value // fraction) + 1


def sample_hop(
    rng: random.Random,
    beacon: bytes,
    hop_position: int,
    fraction: float,
    num_slots: int,
    exclude: set[int] | None = None,
) -> int:
    """Rejection-sample a pseudonym number eligible for ``hop_position``.

    ``exclude`` avoids picking the same pseudonym twice on one path (or
    picking the sender itself).
    """
    if num_slots < 1:
        raise ParameterError("empty directory")
    excluded = exclude or set()
    # Expected tries: 1/fraction; cap generously to surface configuration
    # errors instead of spinning forever.
    max_tries = max(1000, int(50 / fraction))
    for _ in range(max_tries):
        candidate = rng.randrange(num_slots)
        if candidate in excluded:
            continue
        if is_eligible(candidate, beacon, hop_position, fraction):
            return candidate
    raise ParameterError(
        f"could not sample an eligible hop for position {hop_position}; "
        f"directory too small for f={fraction}"
    )


def forwarder_slots(
    beacon: bytes, num_hops: int, fraction: float, num_slots: int
) -> dict[int, int]:
    """Map every forwarder-eligible pseudonym number to its hop position.

    Used by simulations to enumerate who will carry traffic.
    """
    positions = {}
    for index in range(num_slots):
        position = hop_position_for(index, beacon, num_hops, fraction)
        if position is not None:
            positions[index] = position
    return positions
