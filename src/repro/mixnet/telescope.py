"""Telescoping path setup (§3.4).

A source s establishes a k-hop path to a destination pseudonym by
extending one hop at a time, Tor-style, so that no party other than s
ever sees more than its own neighbors on the path:

* **Level 1**: s looks up hop 1 directly at the aggregator (safe: the
  aggregator observes the s -> h1 connection anyway), then deposits a
  CONNECT blob carrying a fresh link key and a lookup request for hop 2.
* **Level i**: the CONNECT blob for h_i travels through the established
  prefix (h_1 .. h_{i-1} peel one layer each); h_{i-1} mints the new
  link path id; h_i returns h_{i+1}'s verified public key along the
  reverse path.
* **Level k**: the request names the *destination* pseudonym.  h_k first
  ACKs along the reverse path, waits k C-rounds for complaints on the
  bulletin board, and only then fetches the destination key — this is
  the anonymity-set defence against a malicious penultimate hop
  described in §3.4.

The schedule costs sum(2i, i=1..k-1) + 3k = k^2 + 2k C-rounds, exactly
the paper's figure.
"""

from __future__ import annotations

import random
import struct

from repro.crypto import aead, rsa
from repro.crypto.merkle import InclusionProof
from repro.errors import CryptoError, ProtocolError
from repro.mixnet import hopselect, maps, onion
from repro.mixnet.network import (
    COMPLAINT_TAG,
    InLink,
    MixDevice,
    MixnetWorld,
    SourcePathState,
    TAG_CONNECT,
    TAG_FORWARD,
    TAG_REVERSE,
    link_keys,
)

_REQ_EXT = b"E"
_REQ_DST = b"D"
_RESP_KEY = b"K"
_RESP_ACK = b"A"


def encode_lookup(lookup: maps.M1Lookup) -> bytes:
    leaf = lookup.leaf.encode()
    out = struct.pack(">QH", lookup.index, len(leaf)) + leaf
    out += struct.pack(">H", len(lookup.proof.siblings))
    out += b"".join(lookup.proof.siblings)
    return out


def decode_lookup(data: bytes) -> maps.M1Lookup:
    index, leaf_len = struct.unpack(">QH", data[:10])
    leaf = maps.M1Leaf.decode(data[10 : 10 + leaf_len])
    offset = 10 + leaf_len
    (num_siblings,) = struct.unpack(">H", data[offset : offset + 2])
    offset += 2
    siblings = tuple(
        data[offset + 32 * i : offset + 32 * (i + 1)] for i in range(num_siblings)
    )
    return maps.M1Lookup(
        index=index, leaf=leaf, proof=InclusionProof(index=index, siblings=siblings)
    )


def _encode_request(
    prev_handle: bytes, position: int, request_tag: bytes, payload: bytes
) -> bytes:
    return prev_handle + bytes([position]) + request_tag + payload


def _decode_request(data: bytes) -> tuple[bytes, int, bytes, bytes]:
    return data[:32], data[32], data[33:34], data[34:]


def build_connect_blob(
    hop_pk: rsa.RsaPublicKey,
    base_key: bytes,
    arrival_round: int,
    prev_handle: bytes,
    position: int,
    request_tag: bytes,
    request_payload: bytes,
    rng: random.Random,
) -> bytes:
    """The CONNECT blob h_i parses on arrival: PEnc of the link key plus
    an AE-sealed request (who the predecessor is, and what to look up)."""
    penc = rsa.encrypt(hop_pk, base_key, rng)
    _, k_req, _ = link_keys(base_key)
    sealed = aead.ae_seal(
        k_req,
        arrival_round,
        _encode_request(prev_handle, position, request_tag, request_payload),
    )
    return struct.pack(">H", len(penc)) + penc + sealed


class TelescopeHandler:
    """Protocol logic shared by the driver and the device callbacks."""

    def __init__(self, world: MixnetWorld):
        self.world = world
        world.telescope_handler = self

    # -- source side ----------------------------------------------------------

    def start_path(
        self,
        device: MixDevice,
        slot: int,
        replica: int,
        dest_handle: bytes,
    ) -> SourcePathState:
        """Choose hops, perform the level-1 direct lookup, and deposit
        the first CONNECT blob."""
        world = self.world
        k = world.params.hops
        # The source must not pick one of its own pseudonyms as hop 1:
        # it performs that lookup directly (§3.4) and can trivially
        # resample, and a source-as-first-hop link would alias its two
        # roles onto one path id.  Later hops get fresh link path ids,
        # so self-selection there is harmless.
        exclude: set[int] = {
            world.directory.index_of_handle(handle)
            for handle in device.handles
        }
        hop_indices = []
        for position in range(1, k + 1):
            index = hopselect.sample_hop(
                device.rng,
                world.beacon,
                position,
                world.params.forwarder_fraction,
                world.directory.num_slots,
                exclude=exclude,
            )
            exclude.add(index)
            hop_indices.append(index)
        source_handle = device.identity.primary().handle
        path = SourcePathState(
            key=(slot, replica),
            dest_handle=dest_handle,
            hop_indices=hop_indices,
            source_handle=source_handle,
        )
        device.paths[(slot, replica)] = path

        lookup = world.verified_lookup(hop_indices[0])
        path.hop_handles.append(lookup.leaf.handle)
        path.hop_pks.append(lookup.leaf.public_key)
        base_key = bytes(device.rng.randrange(256) for _ in range(32))
        path.hop_keys.append(base_key)
        path.first_path_id = onion.new_path_id(device.rng)
        path.next_level = 1
        path.connect_round = world.current_round
        request_tag, payload = self._request_for_level(path, 1)
        blob = build_connect_blob(
            hop_pk=lookup.leaf.public_key,
            base_key=base_key,
            arrival_round=world.current_round + 1,
            prev_handle=source_handle,
            position=1,
            request_tag=request_tag,
            request_payload=payload,
            rng=device.rng,
        )
        device.queue_deposit(lookup.leaf.handle, path.first_path_id, blob)
        return path

    def _request_for_level(
        self, path: SourcePathState, level: int
    ) -> tuple[bytes, bytes]:
        """What hop ``level`` is asked to look up."""
        k = self.world.params.hops
        if level < k:
            return _REQ_EXT, struct.pack(">Q", path.hop_indices[level])
        return _REQ_DST, path.dest_handle

    def _extend(self, device: MixDevice, path: SourcePathState) -> None:
        """Send CONNECT for the next level through the established
        prefix."""
        world = self.world
        level = path.next_level + 1
        path.next_level = level
        rho = world.current_round
        path.connect_round = rho
        base_key = bytes(device.rng.randrange(256) for _ in range(32))
        path.hop_keys.append(base_key)
        request_tag, payload = self._request_for_level(path, level)
        blob = build_connect_blob(
            hop_pk=path.hop_pks[level - 1],
            base_key=base_key,
            arrival_round=rho + level,
            prev_handle=path.hop_handles[level - 2],
            position=level,
            request_tag=request_tag,
            request_payload=payload,
            rng=device.rng,
        )
        # Wrap: hops 1..level-2 see FORWARD, hop level-1 sees CONNECT.
        body = TAG_CONNECT + blob
        for j in range(level - 1, 0, -1):
            k_fwd, _, _ = link_keys(path.hop_keys[j - 1])
            body = aead.senc(k_fwd, rho + j, body)
            if j > 1:
                body = TAG_FORWARD + body
        device.queue_deposit(path.hop_handles[0], path.first_path_id, body)

    def source_reverse(
        self,
        world: MixnetWorld,
        device: MixDevice,
        path: SourcePathState,
        round_number: int,
        wrapped: bytes,
    ) -> None:
        """Unwrap a reverse-path message at the source and advance the
        path state machine."""
        level = path.next_level
        rho = path.connect_round
        k = world.params.hops
        # Candidate (inner AE round, description) schedules: EXT/ACK
        # responses arrive at rho + 2*level; the final KEY response (after
        # the complaint window) arrives at rho + 3*k.
        candidates = []
        if not path.got_ack or level < k:
            candidates.append(rho + level)
        if level == k:
            candidates.append(rho + 2 * k)
        # Peel intermediate hops' layers (hop j wrapped at round
        # arrival_round - j, for j = 1..level-1, nearest hop last).
        payload = None
        for inner_round in candidates:
            body = wrapped
            arrival = round_number
            for j in range(1, level):
                _, _, k_rev = link_keys(path.hop_keys[j - 1])
                body = aead.senc(k_rev, arrival - j, body)
            _, _, k_rev_target = link_keys(path.hop_keys[level - 1])
            try:
                payload = aead.ae_open(k_rev_target, inner_round, body)
                break
            except CryptoError:
                continue
        if payload is None:
            return
        tag, rest = payload[:1], payload[1:]
        if tag == _RESP_ACK:
            path.got_ack = True
            return
        if tag != _RESP_KEY:
            return
        lookup = decode_lookup(rest)
        if not maps.verify_m1_lookup(world.m1_root, lookup):
            device.protocol_violations.append("invalid lookup in response")
            path.failed = True
            return
        if level < k:
            if lookup.index != path.hop_indices[level]:
                device.protocol_violations.append("hop returned wrong index")
                path.failed = True
                return
            path.hop_handles.append(lookup.leaf.handle)
            path.hop_pks.append(lookup.leaf.public_key)
            self._extend(device, path)
        else:
            if lookup.leaf.handle != path.dest_handle:
                device.protocol_violations.append("wrong destination key")
                path.failed = True
                return
            path.dest_pk = lookup.leaf.public_key
            path.established = True

    # -- hop side --------------------------------------------------------------

    def hop_connect(
        self,
        world: MixnetWorld,
        device: MixDevice,
        round_number: int,
        dest_handle: bytes,
        message: onion.WireMessage,
    ) -> None:
        """Parse a CONNECT blob arriving on a fresh path id."""
        body = message.body
        if len(body) < 2:
            return
        (penc_len,) = struct.unpack(">H", body[:2])
        if len(body) < 2 + penc_len:
            return
        try:
            identity = device.identity.identity_for_handle(dest_handle)
            base_key = rsa.decrypt(identity.private_key, body[2 : 2 + penc_len])
            if len(base_key) != 32:
                return
            _, k_req, _ = link_keys(base_key)
            request = aead.ae_open(k_req, round_number, body[2 + penc_len :])
        except (CryptoError, ProtocolError):
            return  # dummy / not for us
        prev_handle, position, tag, payload = _decode_request(request)
        link = InLink(
            path_id=message.path_id,
            base_key=base_key,
            prev_mailbox=prev_handle,
            my_handle=dest_handle,
            position=position,
            # Every hop masks missing inputs during forwarding (§3.5);
            # links that never grow an out-link simply have nowhere to
            # send dummies and are skipped there.
            expects_forward_traffic=True,
        )
        device.in_links[message.path_id] = link
        _, _, k_rev = link_keys(base_key)
        if tag == _REQ_EXT:
            (next_index,) = struct.unpack(">Q", payload)
            lookup = world.verified_lookup(next_index)
            link.pending_next = lookup.leaf.handle
            response = aead.ae_seal(
                k_rev, round_number, _RESP_KEY + encode_lookup(lookup)
            )
            device.queue_deposit(
                prev_handle, message.path_id, TAG_REVERSE + response
            )
        elif tag == _REQ_DST:
            link.pending_dst = payload
            ack = aead.ae_seal(k_rev, round_number, _RESP_ACK)
            device.queue_deposit(prev_handle, message.path_id, TAG_REVERSE + ack)
            device.schedule(
                round_number + world.params.hops, "dst-lookup", message.path_id
            )

    def scheduled(
        self,
        world: MixnetWorld,
        device: MixDevice,
        round_number: int,
        action: str,
        path_id: bytes,
    ) -> None:
        if action != "dst-lookup":
            return
        link = device.in_links.get(path_id)
        if link is None or getattr(link, "pending_dst", None) is None:
            return
        # §3.4: if any source complained, *no* last hop fetches keys.
        if world.complaints():
            device.protocol_violations.append("complaint seen; aborting key fetch")
            return
        dst_handle = link.pending_dst
        link.pending_dst = None
        try:
            lookup = world.verified_lookup_by_handle(dst_handle)
        except ProtocolError:
            return
        link.next_mailbox = dst_handle
        link.out_path_id = onion.new_path_id(device.rng)
        link.expects_forward_traffic = True
        device.out_to_in[link.out_path_id] = link.path_id
        _, _, k_rev = link_keys(link.base_key)
        response = aead.ae_seal(
            k_rev, round_number, _RESP_KEY + encode_lookup(lookup)
        )
        device.queue_deposit(link.prev_mailbox, link.path_id, TAG_REVERSE + response)


class TelescopeDriver:
    """Run path setup for a batch of (device, slot, replica, dest)."""

    def __init__(self, world: MixnetWorld):
        self.world = world
        self.handler = (
            world.telescope_handler
            if isinstance(world.telescope_handler, TelescopeHandler)
            else TelescopeHandler(world)
        )

    def setup_paths(
        self,
        requests: list[tuple[int, int, int, bytes]],
        extra_rounds: int = 2,
    ) -> dict[tuple[int, int, int], SourcePathState]:
        """``requests`` holds (device_id, slot, replica, dest_handle).

        Runs k^2 + 2k C-rounds (plus slack) and returns the path states.
        """
        world = self.world
        k = world.params.hops
        paths: dict[tuple[int, int, int], SourcePathState] = {}
        for device_id, slot, replica, dest_handle in requests:
            device = world.devices[device_id]
            if not device.online:
                continue
            paths[(device_id, slot, replica)] = self.handler.start_path(
                device, slot, replica, dest_handle
            )
        # The initial CONNECT deposit happens in round 0; the protocol's
        # k^2 + 2k C-rounds then play out in rounds 1 .. k^2 + 2k.
        total_rounds = k * k + 2 * k + 1 + extra_rounds
        for _ in range(total_rounds):
            world.run_round()
            self._check_timeouts(paths)
        for path in paths.values():
            if not path.established:
                path.failed = True
        return paths

    def _check_timeouts(
        self, paths: dict[tuple[int, int, int], SourcePathState]
    ) -> None:
        """Sources complain when an expected ACK never arrives (§3.4)."""
        world = self.world
        k = world.params.hops
        for (device_id, _, _), path in paths.items():
            if path.established or path.failed:
                continue
            if path.next_level == k and not path.got_ack:
                if world.current_round > path.connect_round + 2 * k + 1:
                    world.board.post(
                        f"device-{device_id}", COMPLAINT_TAG, b"missing-ack"
                    )
                    path.failed = True
