"""The mixnet world: devices, aggregator-side services, and the C-round
clock.

This module holds the *state machine* each device runs (link tables,
onion peeling, reverse routing, dummy injection) and the shared world
object that the protocol drivers in :mod:`repro.mixnet.telescope` and
:mod:`repro.mixnet.forwarding` advance round by round.

Faithfulness notes:

* Devices act only on information they legitimately hold: mailbox
  batches for their own pseudonyms, verified directory lookups, bulletin
  entries, and link state established by the telescoping protocol.
* Every fetch verifies the mailbox batch against the committed C-round
  root, and every deposit is receipt-checked after the round closes, so
  an aggregator that drops messages is detected and challenged (§3.4).
* Devices can be marked offline (churn) or malicious (colluding with the
  aggregator); malicious devices follow the protocol but report their
  link tables to the adversary (honest-but-curious collusion, §3.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import telemetry
from repro.crypto import rsa
from repro.crypto.hashes import derive_key
from repro.errors import CryptoError, ProtocolError
from repro.mixnet import maps, onion
from repro.mixnet.bulletin import BulletinBoard, derive_beacon
from repro.mixnet.mailbox import MailboxServer, verify_batch, verify_receipt
from repro.mixnet.pseudonym import DeviceIdentity, mint_device
from repro.params import SystemParameters

# Wire tags (first byte of a peeled onion layer / mailbox body).
TAG_FORWARD = b"F"
TAG_CONNECT = b"C"
TAG_REVERSE = b"V"
TAG_PAYLOAD = b"P"

COMPLAINT_TAG = "complaint/path-setup"


def link_keys(base_key: bytes) -> tuple[bytes, bytes, bytes]:
    """Derive the per-direction keys of one source-hop link.

    Separate forward / request / reverse keys keep (key, nonce) pairs
    unique even though every layer uses the C-round number as its nonce.
    """
    return (
        derive_key(base_key, b"fwd"),
        derive_key(base_key, b"req"),
        derive_key(base_key, b"rev"),
    )


@dataclass
class InLink:
    """Hop-side state for one incoming path segment."""

    path_id: bytes
    base_key: bytes
    prev_mailbox: bytes
    my_handle: bytes
    out_path_id: bytes | None = None
    next_mailbox: bytes | None = None
    pending_next: bytes | None = None  # next hop's handle, learned via EXT lookup
    pending_dst: bytes | None = None  # destination handle awaiting key fetch
    position: int = 0  # 1-based hop position on the path
    expects_forward_traffic: bool = False
    last_traffic_round: int = -1


@dataclass
class SourcePathState:
    """Source-side state for one of its r*d paths."""

    key: tuple[int, int]  # (message slot, replica)
    dest_handle: bytes
    hop_indices: list[int]
    source_handle: bytes
    first_path_id: bytes = b""
    hop_handles: list[bytes] = field(default_factory=list)
    hop_pks: list[rsa.RsaPublicKey] = field(default_factory=list)
    hop_keys: list[bytes] = field(default_factory=list)  # base keys
    connect_round: int = -1  # round the latest CONNECT was deposited
    next_level: int = 1  # which hop we are extending to next (1-based)
    got_ack: bool = False
    dest_pk: rsa.RsaPublicKey | None = None
    established: bool = False
    failed: bool = False


@dataclass
class ReceivedPayload:
    """A payload delivered to a destination pseudonym."""

    round_number: int
    dest_handle: bytes
    plaintext: bytes


class MixDevice:
    """One participant's mixnet state machine."""

    def __init__(self, identity: DeviceIdentity, rng: random.Random):
        self.identity = identity
        self.rng = rng
        self.online = True
        self.malicious = False
        self.in_links: dict[bytes, InLink] = {}
        self.out_to_in: dict[bytes, bytes] = {}
        self.paths: dict[tuple[int, int], SourcePathState] = {}
        self.received: list[ReceivedPayload] = []
        self.pending_deposits: list[tuple[bytes, bytes]] = []  # (mailbox, data)
        self._scheduled: list[tuple[int, str, bytes]] = []  # (round, action, pid)
        self.protocol_violations: list[str] = []
        #: Seed-chained dummy byte supply (repro.offline.pools.DummyStream).
        #: None keeps the historical per-device RNG draw.
        self.dummy_source = None

    @property
    def device_id(self) -> int:
        return self.identity.device_id

    @property
    def handles(self) -> list[bytes]:
        return [p.handle for p in self.identity.pseudonyms]

    # -- deposit helpers ----------------------------------------------------

    def queue_deposit(self, mailbox: bytes, path_id: bytes, body: bytes) -> None:
        self.pending_deposits.append(
            (mailbox, onion.WireMessage(path_id, body).encode())
        )

    def drain_deposits(self) -> list[tuple[bytes, bytes]]:
        out = self.pending_deposits
        self.pending_deposits = []
        return out

    def schedule(self, due_round: int, action: str, path_id: bytes) -> None:
        self._scheduled.append((due_round, action, path_id))

    def due_actions(self, round_number: int) -> list[tuple[str, bytes]]:
        due = [(a, p) for (r, a, p) in self._scheduled if r == round_number]
        self._scheduled = [
            (r, a, p) for (r, a, p) in self._scheduled if r != round_number
        ]
        return due

    # -- message processing --------------------------------------------------

    def process_wire(
        self, world: MixnetWorld, round_number: int, dest_handle: bytes, data: bytes
    ) -> None:
        """Handle one mailbox message fetched in ``round_number`` (it was
        deposited in ``round_number - 1``)."""
        injector = world.fault_injector
        if injector is not None and injector.drop_on_receive(
            round_number, self.device_id, dest_handle, data
        ):
            return
        try:
            message = onion.WireMessage.decode(data)
        except ProtocolError:
            return
        # Routing is by (path id, mailbox): the same device may serve
        # two consecutive hop positions under different pseudonyms, in
        # which case one path id legitimately appears in both its link
        # tables — the mailbox the message arrived in disambiguates.
        link = self.in_links.get(message.path_id)
        if link is not None and link.my_handle == dest_handle:
            self._process_forward(world, round_number, message)
            return
        in_pid = self.out_to_in.get(message.path_id)
        if (
            in_pid is not None
            and self.in_links[in_pid].my_handle == dest_handle
        ):
            self._process_reverse(world, round_number, message)
            return
        self._process_new(world, round_number, dest_handle, message)

    def _process_forward(
        self, world: MixnetWorld, round_number: int, message: onion.WireMessage
    ) -> None:
        link = self.in_links[message.path_id]
        k_fwd, _, _ = link_keys(link.base_key)
        inner = onion.peel(k_fwd, round_number, message.body)
        if not inner:
            return
        tag, rest = inner[:1], inner[1:]
        link.last_traffic_round = round_number
        if tag == TAG_FORWARD:
            if link.out_path_id is None or link.next_mailbox is None:
                # Garbled or dummy traffic: keep the pattern unchanged by
                # emitting a dummy of the same shape (§3.5).
                return
            self.queue_deposit(link.next_mailbox, link.out_path_id, rest)
        elif tag == TAG_CONNECT:
            if link.pending_next is None:
                self.protocol_violations.append("connect without pending lookup")
                return
            link.next_mailbox = link.pending_next
            link.pending_next = None
            link.out_path_id = onion.new_path_id(self.rng)
            self.out_to_in[link.out_path_id] = link.path_id
            # The blob is deposited as-is: the next hop parses it as a
            # fresh CONNECT.
            self.queue_deposit(link.next_mailbox, link.out_path_id, rest)
        elif link.expects_forward_traffic and link.out_path_id is not None:
            # A dummy injected upstream peels to garbage with a random
            # tag; the hop cannot tell (§3.5) and forwards it like any
            # other message, keeping the traffic pattern intact.
            self.queue_deposit(link.next_mailbox, link.out_path_id, rest)

    def _process_reverse(
        self, world: MixnetWorld, round_number: int, message: onion.WireMessage
    ) -> None:
        in_pid = self.out_to_in[message.path_id]
        link = self.in_links[in_pid]
        if not message.body.startswith(TAG_REVERSE):
            return
        _, _, k_rev = link_keys(link.base_key)
        wrapped = TAG_REVERSE + onion.peel(
            k_rev, round_number, message.body[1:]
        )
        self.queue_deposit(link.prev_mailbox, link.path_id, wrapped)

    def _process_new(
        self,
        world: MixnetWorld,
        round_number: int,
        dest_handle: bytes,
        message: onion.WireMessage,
    ) -> None:
        """A message with an unknown path id: either a CONNECT blob
        creating a new in-link, a reverse message for one of our source
        paths, or an end-to-end payload for us as destination."""
        # Reverse traffic arriving at the source?
        for path in self.paths.values():
            if path.first_path_id == message.path_id:
                if message.body.startswith(TAG_REVERSE):
                    world.telescope_handler.source_reverse(
                        world, self, path, round_number, message.body[1:]
                    )
                return
        if message.body.startswith(TAG_PAYLOAD):
            self._receive_payload(world, round_number, dest_handle, message.body[1:])
            return
        self._receive_connect(world, round_number, dest_handle, message)

    def _receive_connect(
        self,
        world: MixnetWorld,
        round_number: int,
        dest_handle: bytes,
        message: onion.WireMessage,
    ) -> None:
        world.telescope_handler.hop_connect(
            world, self, round_number, dest_handle, message
        )

    def emit_dummies(self, world: MixnetWorld, round_number: int) -> None:
        """§3.5: in the round where a hop should forward a path's
        message, a missing input is masked with a random dummy so the
        communication pattern is unchanged."""
        start = world.forwarding_phase_start
        if start is None:
            return
        for link in self.in_links.values():
            if not link.expects_forward_traffic or link.out_path_id is None:
                continue
            if start + link.position != round_number:
                continue
            if link.last_traffic_round == round_number:
                continue
            length = world.forwarding_body_bytes + (
                world.params.hops - link.position
            )
            telemetry.count("mixnet.round.dummies")
            if self.dummy_source is not None:
                body = self.dummy_source.take(length)
            else:
                body = onion.dummy_body(length, self.rng)
            self.queue_deposit(link.next_mailbox, link.out_path_id, body)

    def _receive_payload(
        self, world: MixnetWorld, round_number: int, dest_handle: bytes, body: bytes
    ) -> None:
        """Final-destination handling: PEnc-unwrap the session key, then
        AE-open the payload; garbage (dummies) fails and is dropped."""
        from repro.crypto import aead  # local import to avoid cycle noise

        try:
            identity = self.identity.identity_for_handle(dest_handle)
        except ProtocolError:
            return
        if len(body) < 2:
            return
        penc_len = int.from_bytes(body[:2], "big")
        if len(body) < 2 + penc_len:
            return
        try:
            session_key = rsa.decrypt(identity.private_key, body[2 : 2 + penc_len])
            if len(session_key) != 32:
                return
            plaintext = aead.ae_open(
                session_key, round_number, body[2 + penc_len :]
            )
        except CryptoError:
            return  # dummy or corrupted replica
        self.received.append(
            ReceivedPayload(
                round_number=round_number,
                dest_handle=dest_handle,
                plaintext=plaintext,
            )
        )


class MixnetWorld:
    """Shared state: devices, aggregator services, clock, adversary log."""

    def __init__(
        self,
        params: SystemParameters,
        num_devices: int,
        rng: random.Random,
        rsa_bits: int = 512,
        pseudonyms_per_device: int | None = None,
        collective_beacon: bool = False,
    ):
        self.params = params
        self.rng = rng
        self.board = BulletinBoard()
        self.mailboxes = MailboxServer(self.board)
        per_device = pseudonyms_per_device or params.pseudonyms_per_device
        self.devices: dict[int, MixDevice] = {}
        for device_id in range(num_devices):
            identity = mint_device(device_id, per_device, rng, rsa_bits)
            self.devices[device_id] = MixDevice(
                identity, random.Random(rng.getrandbits(64))
            )
        registrations = {
            d.device_id: [p.pseudonym for p in d.identity.pseudonyms]
            for d in self.devices.values()
        }
        self.directory = maps.build_directory(registrations, rng)
        self.board.post("aggregator", "m1-root", self.directory.m1_root)
        self.board.post("aggregator", "m2-root", self.directory.m2_root)
        if collective_beacon:
            # The Honeycrisp-style commit-reveal exchange (§3.4): the
            # aggregator cannot bias B because the directory roots were
            # committed before any seed is revealed.
            from repro.mixnet.beacon import run_beacon_protocol

            self.beacon = run_beacon_protocol(
                self.board, "epoch-0", sorted(self.devices), rng
            )
        else:
            self.beacon = derive_beacon(self.board, "epoch-0")
        self.handle_owner: dict[bytes, int] = {}
        for device in self.devices.values():
            for handle in device.handles:
                self.handle_owner[handle] = device.device_id
        # Filled in by the telescoping driver; device callbacks route
        # protocol-specific events through it.
        self.telescope_handler = None
        # Adversary wiretap: (round, depositor_device, mailbox, data digest)
        self.deposit_log: list[tuple[int, int, bytes, bytes]] = []
        self.aggregator_drop_predicate = None
        # Optional chaos hook (duck-typed FaultInjector; see repro.faults):
        # consulted at the top of run_round (churn, delayed releases), per
        # deposit (drop/delay/corrupt), and per fetched payload.
        self.fault_injector = None
        # Forwarding-phase bookkeeping (set by the forwarding driver).
        self.forwarding_phase_start: int | None = None
        self.forwarding_body_bytes: int = 0

    def install_dummy_streams(self, dummy_seed: int, store=None) -> None:
        """Switch every device's dummy-body supply to seed-chained
        :class:`~repro.offline.pools.DummyStream` instances.

        With an :class:`~repro.offline.store.OfflineStore` the streams
        come precomputed (journaled by the offline phase); without one
        they derive lazily from the same ``(dummy_seed, device_id)``
        chains — byte-identical deposits either way, which is what makes
        pooled and inline mixnet rounds comparable on the wiretap log.
        """
        from repro.offline.pools import DummyStream

        for device_id, device in self.devices.items():
            stream = store.dummy_stream(device_id) if store is not None else None
            if stream is None:
                stream = DummyStream(dummy_seed, device_id)
            device.dummy_source = stream

    # -- directory plumbing --------------------------------------------------

    @property
    def m1_root(self) -> bytes:
        return self.board.require_unique("m1-root").payload

    @property
    def m2_root(self) -> bytes:
        return self.board.require_unique("m2-root").payload

    def verified_lookup(self, index: int) -> maps.M1Lookup:
        """A device-side lookup by pseudonym number, proof-checked."""
        lookup = self.directory.lookup(index)
        if not maps.verify_m1_lookup(self.m1_root, lookup):
            raise ProtocolError("aggregator served an invalid M1 lookup")
        return lookup

    def verified_lookup_by_handle(self, handle: bytes) -> maps.M1Lookup:
        index = self.directory.index_of_handle(handle)
        return self.verified_lookup(index)

    def run_audits(self, sample_devices: int = 5, samples_each: int = 8) -> bool:
        """Run the §3.3 audits from a sample of devices' perspectives."""
        device_ids = self.rng.sample(
            sorted(self.devices), min(sample_devices, len(self.devices))
        )
        for device_id in device_ids:
            device = self.devices[device_id]
            own = [p.pseudonym for p in device.identity.pseudonyms]
            served = [
                self.directory.lookup(self.directory.index_of_handle(p.handle))
                for p in own
            ]
            if not maps.audit_own_pseudonyms(self.m1_root, own, served):
                return False
            if not maps.cross_audit(
                self.m1_root,
                self.m2_root,
                self.directory,
                device.rng,
                samples_each,
            ):
                return False
        return True

    # -- clock ---------------------------------------------------------------

    @property
    def current_round(self) -> int:
        return self.mailboxes.current_round

    def run_round(self) -> int:
        """Advance one C-round.

        Order of events: every online device processes the batches from
        the *previous* round and its due scheduled actions, queueing
        deposits; the aggregator (possibly Byzantine) commits the round;
        every depositor receipt-checks, challenging drops on the bulletin
        board.
        """
        round_number = self.current_round
        fetch_round = round_number - 1
        injector = self.fault_injector
        if injector is not None:
            injector.begin_round(self, round_number)
        deposits_by_device: dict[int, list] = {}
        injected_drops: list = []
        num_fetched = 0
        num_deposits = 0
        bytes_out = 0
        telemetry.count("mixnet.rounds.total")
        for device in self.devices.values():
            if not device.online:
                continue
            if fetch_round >= 0:
                for handle in device.handles:
                    batch = self.mailboxes.fetch(fetch_round, handle)
                    if not verify_batch(self.board, batch):
                        telemetry.count("mixnet.complaints.total")
                        self.board.post(
                            f"device-{device.device_id}",
                            COMPLAINT_TAG,
                            b"mailbox-batch-invalid",
                        )
                        continue
                    num_fetched += len(batch.payloads)
                    for payload in batch.payloads:
                        device.process_wire(self, round_number, handle, payload)
            for action, path_id in device.due_actions(round_number):
                if self.telescope_handler is not None:
                    self.telescope_handler.scheduled(
                        self, device, round_number, action, path_id
                    )
            device.emit_dummies(self, round_number)
            for mailbox, data in device.drain_deposits():
                action, wire_data = "deliver", data
                if injector is not None:
                    action, wire_data = injector.on_deposit(
                        round_number, device.device_id, mailbox, data
                    )
                if action == "delay":
                    # The injector holds the message and re-queues it
                    # later; round-keyed AEAD nonces mean the late copy
                    # no longer decrypts (§3.5), so the depositor's
                    # receipt check below never sees it this round.
                    continue
                deposit = self.mailboxes.deposit(
                    mailbox, wire_data, device.device_id
                )
                if action == "drop":
                    injected_drops.append(deposit)
                # Receipt-check against the bytes the device *meant* to
                # send — a corrupted wire copy then fails verification.
                deposits_by_device.setdefault(device.device_id, []).append(
                    (deposit, data)
                )
                num_deposits += 1
                bytes_out += len(wire_data)
                self.deposit_log.append(
                    (round_number, device.device_id, mailbox, wire_data)
                )
        if num_fetched:
            telemetry.count("mixnet.round.fetches", num_fetched)
        if num_deposits:
            telemetry.count("mixnet.round.deposits", num_deposits)
            telemetry.count("mixnet.round.bytes_out", bytes_out)
        if injected_drops:
            dropped_ids = {id(d) for d in injected_drops}
            self.mailboxes.drop_pending(lambda dep: id(dep) in dropped_ids)
        if self.aggregator_drop_predicate is not None:
            self.mailboxes.drop_pending(self.aggregator_drop_predicate)
        closed = self.mailboxes.end_round()
        for device_id, deposits in deposits_by_device.items():
            for deposit, original in deposits:
                reason = b"deposit-dropped"
                try:
                    receipt = self.mailboxes.receipt(closed, deposit)
                    ok = verify_receipt(self.board, original, receipt)
                    if not ok:
                        # Round committed, but not over our bytes: the
                        # wire copy was tampered with, not dropped.
                        reason = b"deposit-tampered"
                except ProtocolError:
                    ok = False
                if not ok:
                    telemetry.count("mixnet.complaints.total")
                    self.board.post(
                        f"device-{device_id}", COMPLAINT_TAG, reason
                    )
        return closed

    def complaints(self) -> list[bytes]:
        return [e.payload for e in self.board.find(COMPLAINT_TAG)]
