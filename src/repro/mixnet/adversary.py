"""The adversary's view of the mixnet (§3.2, §6.3).

The aggregator observes every mailbox operation: which device deposited
into which mailbox in which C-round (contents are encrypted).  Colluding
(malicious) forwarders additionally reveal their link tables — the exact
in-path-id to out-path-id mapping — so the adversary can trace a message
*through* a malicious hop but only *to the batch* at an honest hop.

:func:`anonymity_set` reconstructs, for a message deposited into a
target mailbox, the set of devices that could have originated it.  Each
honest hop widens the set to everything that hop downloaded in the
previous round; each malicious hop collapses it back to one sender.
This is the mechanism behind Figure 5(a): with k honest hops the set is
roughly (r/f)^k, and a path of fully malicious hops identifies the
sender exactly (Figure 5(b)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mixnet.network import MixnetWorld


@dataclass
class DepositEvent:
    """One observed mailbox deposit."""

    round_number: int
    depositor: int
    mailbox: bytes
    data: bytes


@dataclass
class AdversaryView:
    """Everything the (aggregator + colluders) adversary knows."""

    world: MixnetWorld
    malicious_devices: set[int] = field(default_factory=set)

    def mark_malicious(self, device_ids: set[int]) -> None:
        self.malicious_devices |= device_ids
        for device_id in device_ids:
            self.world.devices[device_id].malicious = True

    # -- raw observables ------------------------------------------------------

    def deposits(self) -> list[DepositEvent]:
        return [
            DepositEvent(round_number=r, depositor=d, mailbox=m, data=data)
            for (r, d, m, data) in self.world.deposit_log
        ]

    def deposits_into(self, mailbox: bytes) -> list[DepositEvent]:
        return [e for e in self.deposits() if e.mailbox == mailbox]

    def deposits_by(self, device_id: int, round_number: int) -> list[DepositEvent]:
        return [
            e
            for e in self.deposits()
            if e.depositor == device_id and e.round_number == round_number
        ]

    def deposits_received_by(
        self, device_id: int, round_number: int
    ) -> list[DepositEvent]:
        """Messages the device downloaded when it fetched in
        ``round_number`` (i.e. deposits into its mailboxes in the round
        before)."""
        handles = set(self.world.devices[device_id].handles)
        return [
            e
            for e in self.deposits()
            if e.mailbox in handles and e.round_number == round_number - 1
        ]

    # -- inference --------------------------------------------------------------

    def _malicious_link_source(
        self, forwarder: int, event: DepositEvent
    ) -> DepositEvent | None:
        """A colluding forwarder tells the adversary which *input*
        message produced a given output: look up the out-path-id in its
        link table and find the matching input deposit."""
        device = self.world.devices[forwarder]
        if len(event.data) < 16:
            return None
        out_pid = event.data[:16]
        in_pid = device.out_to_in.get(out_pid)
        if in_pid is None and out_pid in device.in_links:
            # Reverse traffic: the output went backward along the in-link.
            in_pid = device.in_links[out_pid].out_path_id
        if in_pid is None:
            return None
        for candidate in self.deposits_received_by(forwarder, event.round_number):
            if candidate.data[:16] == in_pid:
                return candidate
        return None

    def candidate_sources(
        self, event: DepositEvent, max_depth: int = 12
    ) -> set[int]:
        """Devices that could have originated ``event``'s message."""
        sources: set[int] = set()
        frontier = [(event, 0)]
        seen: set[tuple[int, int, bytes]] = set()
        while frontier:
            current, depth = frontier.pop()
            key = (current.round_number, current.depositor, current.data[:16])
            if key in seen or depth > max_depth:
                continue
            seen.add(key)
            forwarder = current.depositor
            inputs = self.deposits_received_by(forwarder, current.round_number)
            if not inputs:
                # The depositor received nothing: it must be the source.
                sources.add(forwarder)
                continue
            if forwarder in self.malicious_devices:
                exact = self._malicious_link_source(forwarder, current)
                if exact is None:
                    # The colluder reports this output as self-originated.
                    sources.add(forwarder)
                else:
                    frontier.append((exact, depth + 1))
                continue
            # Honest hop: any downloaded message (or the hop itself) could
            # be the predecessor.
            sources.add(forwarder)
            for candidate in inputs:
                frontier.append((candidate, depth + 1))
        return sources

    def anonymity_set_for_delivery(
        self, dest_handle: bytes, round_number: int
    ) -> set[int]:
        """Union of candidate sources over every message deposited into
        ``dest_handle`` at ``round_number`` — the sender anonymity set
        the aggregator is left with."""
        sources: set[int] = set()
        for event in self.deposits_into(dest_handle):
            if event.round_number == round_number:
                sources |= self.candidate_sources(event)
        return sources

    def identified_exactly(self, dest_handle: bytes, round_number: int) -> bool:
        """Whether the adversary pinned the sender to a single device
        (the Figure 5(b) event)."""
        return len(self.anonymity_set_for_delivery(dest_handle, round_number)) == 1
