"""Collectively chosen randomness (§3.4).

Hop selection hashes pseudonym numbers against "a random bitstring B
that is chosen collectively as, e.g., in Honeycrisp" — the aggregator
must not be able to bias B toward its confederates after committing the
directory.  This module implements the standard commit-reveal protocol
on the bulletin board:

1. **Commit**: each participating device posts H(device || seed || salt).
2. **Reveal**: after every commitment is on the board, devices post
   (seed, salt); reveals that do not match their commitment — or that
   never arrive — are excluded.
3. **Derive**: B = H(sorted valid seeds).

Because commitments bind before any seed is revealed, no party (device
or aggregator) can steer the output; as long as one honest participant's
seed is unpredictable, so is B.  A withholding participant can bias at
most one bit of choice ("reveal or not"), the standard commit-reveal
caveat, which Honeycrisp tolerates for parameter selection.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.hashes import protocol_hash
from repro.errors import ProtocolError
from repro.mixnet.bulletin import BulletinBoard

_COMMIT_TAG = "beacon-commit"
_REVEAL_TAG = "beacon-reveal"


@dataclass(frozen=True)
class BeaconShare:
    """One device's private contribution."""

    device_id: int
    seed: bytes
    salt: bytes

    def commitment(self) -> bytes:
        return protocol_hash(
            b"beacon-commit",
            self.device_id.to_bytes(8, "big"),
            self.seed,
            self.salt,
        )

    def reveal_payload(self) -> bytes:
        return self.seed + self.salt


def make_share(device_id: int, rng: random.Random) -> BeaconShare:
    return BeaconShare(
        device_id=device_id,
        seed=bytes(rng.randrange(256) for _ in range(32)),
        salt=bytes(rng.randrange(256) for _ in range(16)),
    )


def post_commitment(
    board: BulletinBoard, epoch: str, share: BeaconShare
) -> None:
    board.post(
        f"device-{share.device_id}",
        f"{_COMMIT_TAG}/{epoch}/{share.device_id}",
        share.commitment(),
    )


def post_reveal(board: BulletinBoard, epoch: str, share: BeaconShare) -> None:
    board.post(
        f"device-{share.device_id}",
        f"{_REVEAL_TAG}/{epoch}/{share.device_id}",
        share.reveal_payload(),
    )


def derive_collective_beacon(
    board: BulletinBoard, epoch: str, participants: list[int]
) -> bytes:
    """Derive B from the board: valid (commit, reveal) pairs only.

    Raises if *no* participant revealed validly — the protocol restarts
    in that case (it means every participant withheld).
    """
    valid_seeds = []
    for device_id in sorted(participants):
        commit_tag = f"{_COMMIT_TAG}/{epoch}/{device_id}"
        reveal_tag = f"{_REVEAL_TAG}/{epoch}/{device_id}"
        commits = board.find(commit_tag)
        reveals = board.find(reveal_tag)
        if not commits or not reveals:
            continue
        commitment = board.require_unique(commit_tag).payload
        payload = reveals[0].payload
        if len(payload) != 48:
            continue
        share = BeaconShare(
            device_id=device_id, seed=payload[:32], salt=payload[32:]
        )
        if share.commitment() != commitment:
            continue  # lied at reveal time: excluded
        valid_seeds.append(share.seed)
    if not valid_seeds:
        raise ProtocolError("no valid beacon reveals; protocol must restart")
    return protocol_hash(b"beacon-output", epoch.encode(), *valid_seeds)


def run_beacon_protocol(
    board: BulletinBoard,
    epoch: str,
    participants: list[int],
    rng: random.Random,
    withholders: set[int] | None = None,
    equivocators: set[int] | None = None,
) -> bytes:
    """Drive the full commit-reveal exchange for a participant set.

    ``withholders`` commit but never reveal; ``equivocators`` reveal a
    different seed than they committed to.  Both are excluded from the
    output.
    """
    withholders = withholders or set()
    equivocators = equivocators or set()
    shares = {d: make_share(d, rng) for d in participants}
    for device_id in sorted(participants):
        post_commitment(board, epoch, shares[device_id])
    for device_id in sorted(participants):
        if device_id in withholders:
            continue
        share = shares[device_id]
        if device_id in equivocators:
            share = BeaconShare(
                device_id=device_id,
                seed=bytes(32),
                salt=share.salt,
            )
        post_reveal(board, epoch, share)
    return derive_collective_beacon(board, epoch, participants)
