"""Pseudonyms and device identities.

Each participant is identified by one or more pseudonyms (§2): in a
GAEN-like deployment these are Rolling Proximity Identifiers.  Every
pseudonym h is bound to an RSA key pair by h = H(pk) (§3.1, assumption 3),
so anyone holding a public key can check it matches a pseudonym.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto import rsa
from repro.crypto.hashes import protocol_hash
from repro.errors import ProtocolError

#: RSA modulus size for pseudonym keys.  The prototype uses RSA-PKCS1
#: (§5); tests shrink this for speed.
DEFAULT_RSA_BITS = 512

HANDLE_BYTES = 32


def handle_for_key(public_key: rsa.RsaPublicKey) -> bytes:
    """h = H(pk)."""
    return protocol_hash(b"pseudonym", public_key.serialize())


@dataclass(frozen=True)
class Pseudonym:
    """The public view of a pseudonym: handle plus bound public key."""

    handle: bytes
    public_key: rsa.RsaPublicKey

    def verify_binding(self) -> bool:
        return handle_for_key(self.public_key) == self.handle


@dataclass(frozen=True)
class PseudonymIdentity:
    """A device's private view: the pseudonym plus its private key."""

    pseudonym: Pseudonym
    private_key: rsa.RsaPrivateKey

    @property
    def handle(self) -> bytes:
        return self.pseudonym.handle


def mint_pseudonym(
    rng: random.Random, rsa_bits: int = DEFAULT_RSA_BITS
) -> PseudonymIdentity:
    """Generate a fresh pseudonym with its key pair."""
    private, public = rsa.generate_keypair(rsa_bits, rng)
    return PseudonymIdentity(
        pseudonym=Pseudonym(handle=handle_for_key(public), public_key=public),
        private_key=private,
    )


@dataclass
class DeviceIdentity:
    """A device's full identity: device id plus its pseudonym set.

    ``device_id`` is a simulation-level label (the aggregator's device
    number is assigned separately during directory construction).
    """

    device_id: int
    pseudonyms: list[PseudonymIdentity] = field(default_factory=list)

    def primary(self) -> PseudonymIdentity:
        if not self.pseudonyms:
            raise ProtocolError(f"device {self.device_id} has no pseudonyms")
        return self.pseudonyms[0]

    def identity_for_handle(self, handle: bytes) -> PseudonymIdentity:
        for identity in self.pseudonyms:
            if identity.handle == handle:
                return identity
        raise ProtocolError(
            f"device {self.device_id} does not own pseudonym {handle.hex()[:12]}"
        )

    def owns_handle(self, handle: bytes) -> bool:
        return any(p.handle == handle for p in self.pseudonyms)


def mint_device(
    device_id: int,
    num_pseudonyms: int,
    rng: random.Random,
    rsa_bits: int = DEFAULT_RSA_BITS,
) -> DeviceIdentity:
    """Create a device with ``num_pseudonyms`` fresh pseudonyms."""
    return DeviceIdentity(
        device_id=device_id,
        pseudonyms=[mint_pseudonym(rng, rsa_bits) for _ in range(num_pseudonyms)],
    )
