"""Per-pseudonym mailboxes with C-round Merkle commitments (§3.2-§3.4).

All device-to-device traffic is relayed through the aggregator, which
keeps one mailbox per pseudonym.  At the end of each C-round the
aggregator builds a Merkle tree over every mailbox ("mailbox MHT"), a
tree over those trees ("C-round MHT"), posts the outer root to the
bulletin board, and proves to each depositor that its message was
included.  A recipient later demands the whole mailbox tree, so the
aggregator cannot drop messages without detection; undelivered
inclusion proofs are challenged on the bulletin board.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import protocol_hash
from repro.crypto.merkle import InclusionProof, MerkleTree, verify_inclusion
from repro.errors import MessageDroppedError, ProtocolError
from repro.mixnet.bulletin import BulletinBoard


@dataclass(frozen=True)
class Deposit:
    """One message deposited into a mailbox during a C-round."""

    mailbox: bytes  # pseudonym handle
    payload: bytes
    depositor: int  # simulation device id, for bookkeeping/receipts


@dataclass(frozen=True)
class DepositReceipt:
    """Proof that a deposit was included in the C-round commitment."""

    round_number: int
    mailbox: bytes
    payload_digest: bytes
    mailbox_proof: InclusionProof
    mailbox_root: bytes
    round_proof: InclusionProof
    round_root: bytes


@dataclass(frozen=True)
class MailboxBatch:
    """What a device fetches from its mailbox: all payloads plus the
    mailbox tree data needed to verify completeness."""

    round_number: int
    mailbox: bytes
    payloads: tuple[bytes, ...]
    mailbox_root: bytes
    round_proof: InclusionProof
    round_root: bytes


def _mailbox_leaf(payload: bytes) -> bytes:
    return protocol_hash(b"mailbox-msg", payload)


def _round_leaf(mailbox: bytes, mailbox_root: bytes) -> bytes:
    return protocol_hash(b"mailbox", mailbox, mailbox_root)


class MailboxServer:
    """The aggregator's mailbox subsystem.

    ``drop`` hooks simulate a briefly-Byzantine aggregator: dropped
    deposits are silently discarded before commitment, which the sender
    detects when its receipt never arrives (§3.4 challenges).
    """

    def __init__(self, board: BulletinBoard):
        self._board = board
        self._round = 0
        self._pending: list[Deposit] = []
        self._committed: dict[int, dict[bytes, list[Deposit]]] = {}
        self._round_trees: dict[int, MerkleTree] = {}
        self._mailbox_trees: dict[int, dict[bytes, MerkleTree]] = {}
        self._mailbox_order: dict[int, list[bytes]] = {}
        self.dropped: list[Deposit] = []

    @property
    def current_round(self) -> int:
        return self._round

    def deposit(self, mailbox: bytes, payload: bytes, depositor: int) -> Deposit:
        """Accept a message for ``mailbox`` in the current C-round."""
        deposit = Deposit(mailbox=mailbox, payload=payload, depositor=depositor)
        self._pending.append(deposit)
        return deposit

    def drop_pending(self, predicate) -> int:
        """Byzantine behaviour: discard pending deposits matching
        ``predicate``; returns how many were dropped."""
        kept, dropped = [], []
        for deposit in self._pending:
            (dropped if predicate(deposit) else kept).append(deposit)
        self._pending = kept
        self.dropped.extend(dropped)
        return len(dropped)

    def end_round(self) -> int:
        """Close the C-round: build mailbox MHTs and the C-round MHT,
        post the root to the bulletin board.  Returns the closed round
        number."""
        round_number = self._round
        by_mailbox: dict[bytes, list[Deposit]] = {}
        for deposit in self._pending:
            by_mailbox.setdefault(deposit.mailbox, []).append(deposit)
        self._pending = []

        mailbox_trees = {
            mailbox: MerkleTree([_mailbox_leaf(d.payload) for d in deposits])
            for mailbox, deposits in by_mailbox.items()
        }
        order = sorted(by_mailbox)
        round_tree = MerkleTree(
            [_round_leaf(mailbox, mailbox_trees[mailbox].root) for mailbox in order]
        )
        self._committed[round_number] = by_mailbox
        self._mailbox_trees[round_number] = mailbox_trees
        self._mailbox_order[round_number] = order
        self._round_trees[round_number] = round_tree
        self._board.post(
            "aggregator", f"cround-root/{round_number}", round_tree.root
        )
        self._round += 1
        return round_number

    # -- aggregator serving proofs ------------------------------------------

    def receipt(self, round_number: int, deposit: Deposit) -> DepositReceipt:
        """Prove to the depositor that its message was committed."""
        by_mailbox = self._committed.get(round_number, {})
        deposits = by_mailbox.get(deposit.mailbox, [])
        try:
            position = deposits.index(deposit)
        except ValueError as exc:
            raise MessageDroppedError(
                "deposit was not included in the round commitment"
            ) from exc
        mailbox_tree = self._mailbox_trees[round_number][deposit.mailbox]
        order = self._mailbox_order[round_number]
        round_tree = self._round_trees[round_number]
        mailbox_position = order.index(deposit.mailbox)
        return DepositReceipt(
            round_number=round_number,
            mailbox=deposit.mailbox,
            payload_digest=_mailbox_leaf(deposit.payload),
            mailbox_proof=mailbox_tree.prove(position),
            mailbox_root=mailbox_tree.root,
            round_proof=round_tree.prove(mailbox_position),
            round_root=round_tree.root,
        )

    def fetch(self, round_number: int, mailbox: bytes) -> MailboxBatch:
        """Serve a mailbox's full contents for a closed round, with the
        commitment data the recipient uses to verify nothing was
        withheld."""
        if round_number not in self._committed:
            raise ProtocolError(f"C-round {round_number} not closed yet")
        deposits = self._committed[round_number].get(mailbox, [])
        round_tree = self._round_trees[round_number]
        order = self._mailbox_order[round_number]
        if mailbox in order:
            mailbox_root = self._mailbox_trees[round_number][mailbox].root
            round_proof = round_tree.prove(order.index(mailbox))
        else:
            # Empty mailbox: serve an empty batch under the round root.
            mailbox_root = MerkleTree([]).root
            round_proof = round_tree.prove(0)
        return MailboxBatch(
            round_number=round_number,
            mailbox=mailbox,
            payloads=tuple(d.payload for d in deposits),
            mailbox_root=mailbox_root,
            round_proof=round_proof,
            round_root=round_tree.root,
        )


# ---------------------------------------------------------------------------
# Device-side verification
# ---------------------------------------------------------------------------


def verify_receipt(
    board: BulletinBoard, payload: bytes, receipt: DepositReceipt
) -> bool:
    """The depositor's check: its message is in the mailbox tree, the
    mailbox tree is in the C-round tree, and the C-round root matches the
    bulletin board."""
    if receipt.payload_digest != _mailbox_leaf(payload):
        return False
    if not verify_inclusion(
        receipt.mailbox_root, _mailbox_leaf(payload), receipt.mailbox_proof
    ):
        return False
    if not verify_inclusion(
        receipt.round_root,
        _round_leaf(receipt.mailbox, receipt.mailbox_root),
        receipt.round_proof,
    ):
        return False
    posted = board.latest(f"cround-root/{receipt.round_number}")
    return posted.payload == receipt.round_root


def verify_batch(board: BulletinBoard, batch: MailboxBatch) -> bool:
    """The recipient's check: the served payload set reconstructs the
    committed mailbox root, which is bound to the posted C-round root.
    A withheld or altered message changes the reconstructed root."""
    reconstructed = MerkleTree([_mailbox_leaf(p) for p in batch.payloads])
    if reconstructed.root != batch.mailbox_root:
        return False
    if batch.payloads and not verify_inclusion(
        batch.round_root,
        _round_leaf(batch.mailbox, batch.mailbox_root),
        batch.round_proof,
    ):
        return False
    posted = board.latest(f"cround-root/{batch.round_number}")
    return posted.payload == batch.round_root
