"""The §3 communication layer: a mix network over an untrusted
aggregator.

Devices reach graph neighbors known only by pseudonym through
telescoping onion circuits (:mod:`repro.mixnet.telescope`) relayed via
per-pseudonym mailboxes (:mod:`repro.mixnet.mailbox`) whose per-C-round
Merkle commitments, together with the bulletin board
(:mod:`repro.mixnet.bulletin`) and the verifiable directory
(:mod:`repro.mixnet.maps`), keep the aggregator honest.
:mod:`repro.mixnet.adversary` reconstructs what the aggregator plus
colluding forwarders can infer.
"""
