"""Traffic-analysis resistance (§4.7).

Classic mix networks leak to a global observer through *intersection /
statistical disclosure attacks*: if only a fraction of participants
sends in any round, the rounds in which Alice sends are correlated with
the rounds in which her true recipient receives, and averaging over
enough rounds exposes the relationship.

Mycelium's defence is total participation: "every device participates
in every mixnet stage" — real messages and dummies are
indistinguishable, so the observation matrix carries no signal.

This module implements the statistical disclosure attack and the two
observation models (sparse strawman vs Mycelium-style full
participation) so the claim can be tested rather than asserted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RoundObservation:
    """What a global passive adversary sees in one round: who sent
    (deposited) and who received (fetched non-dummy-looking traffic —
    in a sparse mixnet, recipients of real messages)."""

    senders: frozenset[int]
    receivers: frozenset[int]


def simulate_sparse_mixnet(
    num_devices: int,
    target_sender: int,
    target_recipient: int,
    rounds: int,
    send_probability: float,
    rng: random.Random,
) -> list[RoundObservation]:
    """A strawman mix network without cover traffic: devices send only
    when they have something to say, so sender/recipient activity
    correlates across rounds."""
    observations = []
    for _ in range(rounds):
        senders = {
            d
            for d in range(num_devices)
            if d != target_sender and rng.random() < send_probability
        }
        receivers = set()
        for sender in senders:
            receivers.add(rng.randrange(num_devices))
        if rng.random() < send_probability * 2:
            senders.add(target_sender)
            receivers.add(target_recipient)
        observations.append(
            RoundObservation(frozenset(senders), frozenset(receivers))
        )
    return observations


def simulate_full_participation(
    num_devices: int,
    target_sender: int,
    target_recipient: int,
    rounds: int,
    rng: random.Random,
) -> list[RoundObservation]:
    """Mycelium's pattern: every device deposits and fetches in every
    C-round (real traffic or dummies — the adversary cannot tell), so
    the observation is the same constant sets every round."""
    everyone = frozenset(range(num_devices))
    return [RoundObservation(everyone, everyone) for _ in range(rounds)]


def statistical_disclosure_attack(
    observations: list[RoundObservation],
    target_sender: int,
    num_devices: int,
) -> list[float]:
    """The classic SDA: score each candidate recipient by how much more
    often it receives in rounds where the target sends, relative to its
    baseline receive rate.  Returns per-device scores."""
    active = [o for o in observations if target_sender in o.senders]
    idle = [o for o in observations if target_sender not in o.senders]
    scores = []
    for device in range(num_devices):
        active_rate = (
            sum(1 for o in active if device in o.receivers) / len(active)
            if active
            else 0.0
        )
        idle_rate = (
            sum(1 for o in idle if device in o.receivers) / len(idle)
            if idle
            else 0.0
        )
        scores.append(active_rate - idle_rate)
    return scores


def attack_rank_of_true_recipient(
    observations: list[RoundObservation],
    target_sender: int,
    target_recipient: int,
    num_devices: int,
) -> int:
    """1-based rank of the true recipient in the attack's scoring
    (1 = attack succeeded outright; ~num_devices/2 = no signal)."""
    scores = statistical_disclosure_attack(
        observations, target_sender, num_devices
    )
    target_score = scores[target_recipient]
    better = sum(1 for s in scores if s > target_score)
    return better + 1
