"""Message forwarding over established telescoping paths (§3.5).

One communication round of the vertex program costs k+1 C-rounds: the
source deposits its onion in C-round F, hop j forwards in C-round F+j,
and the destination picks the payload up in C-round F+k+1 (the fetch of
round F+k's deposits).

Payload envelope (end-to-end protected, independent of the hops):

    "P" || len(PEnc) || PEnc(pk_dst, session_key) || AE(session_key, m)

The AE nonce is the destination's delivery round, which both ends derive
from the globally known phase schedule.  Forwarders only ever see SEnc
layers, so a hop that lost an input substitutes a random dummy that
downstream colluders cannot flag (dummy injection lives in
:meth:`repro.mixnet.network.MixDevice.emit_dummies`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro import telemetry
from repro.crypto import aead
from repro.errors import ProtocolError
from repro.mixnet.network import (
    MixnetWorld,
    SourcePathState,
    TAG_FORWARD,
    TAG_PAYLOAD,
    link_keys,
)
from repro.runtime import TaskFabric


@dataclass(frozen=True)
class SendRequest:
    """One message to deliver: which device sends what over which path."""

    device_id: int
    path_key: tuple[int, int]
    payload: bytes


@dataclass
class ReliableSendResult:
    """Outcome of :meth:`ForwardingDriver.send_reliable`."""

    #: (device_id, original path_key) -> delivery confirmed.
    delivered: dict[tuple[int, tuple[int, int]], bool]
    retransmissions: int = 0
    failovers: int = 0
    #: Requests still unconfirmed after the attempt budget.
    undelivered: tuple[tuple[int, tuple[int, int]], ...] = ()


def build_envelope(
    path: SourcePathState, payload: bytes, delivery_round: int, rng
) -> bytes:
    """The end-to-end protected payload the destination will open."""
    from repro.crypto import rsa

    if path.dest_pk is None:
        raise ProtocolError("path has no destination key")
    session_key = bytes(rng.randrange(256) for _ in range(32))
    penc = rsa.encrypt(path.dest_pk, session_key, rng)
    sealed = aead.ae_seal(session_key, delivery_round, payload)
    return TAG_PAYLOAD + struct.pack(">H", len(penc)) + penc + sealed


def _wrap_task(base_round: int, item: tuple[tuple[bytes, ...], bytes]) -> bytes:
    """Fabric task: onion-wrap one envelope under pre-derived hop keys.

    Pure — no RNG, no shared state — so wraps shard freely across
    workers; only the key derivation (trivial) and the mailbox deposits
    (ordered) stay with the caller.
    """
    forward_keys, envelope = item
    body = TAG_FORWARD + envelope
    for j in range(len(forward_keys), 0, -1):
        body = aead.senc(forward_keys[j - 1], base_round + j, body)
        if j > 1:
            body = TAG_FORWARD + body
    return body


def _forward_keys(path: SourcePathState) -> tuple[bytes, ...]:
    """The per-hop forwarding keys an onion for ``path`` wraps under."""
    return tuple(link_keys(hop_key)[0] for hop_key in path.hop_keys)


def wrap_for_path(path: SourcePathState, envelope: bytes, base_round: int) -> bytes:
    """Onion-wrap an envelope: every hop sees TAG_FORWARD after its peel.

    Hop j peels its layer with nonce ``base_round + j`` (its processing
    round); the innermost peel at hop k reveals the envelope, which hop k
    deposits into the destination's mailbox.
    """
    return _wrap_task(base_round, (_forward_keys(path), envelope))


class ForwardingDriver:
    """Run one vertex-program communication round for a batch of sends.

    ``fabric`` shards the CPU-heavy onion wrapping (layered ChaCha20
    over pure-Python primitives) across workers; it defaults to a fabric
    built from the process-wide runtime config, i.e. in-process serial
    execution unless the user opted into workers.  Envelope building
    stays serial — it draws session keys from each device's RNG in
    request order — and deposits land in request order, so batches are
    byte-identical at any worker count.
    """

    def __init__(self, world: MixnetWorld, fabric: TaskFabric | None = None):
        self.world = world
        self.fabric = fabric if fabric is not None else TaskFabric.from_config()

    def send_batch(
        self, sends: list[SendRequest], payload_bytes: int
    ) -> dict[tuple[int, tuple[int, int]], bool]:
        """Deposit every send, run k+1 C-rounds, and report which paths
        were exercised.

        ``payload_bytes`` is the protocol-fixed payload size for this
        phase; callers pad shorter payloads so every message (and every
        dummy) has identical shape.
        """
        world = self.world
        k = world.params.hops
        base_round = world.current_round
        delivery_round = base_round + k + 1
        sent: dict[tuple[int, tuple[int, int]], bool] = {}
        envelope_bytes = None
        with telemetry.span("mixnet.send_batch", sends=len(sends), hops=k):
            # Stage 1 (serial): resolve paths and build envelopes, which
            # draw session keys from each device's RNG in request order.
            wrap_jobs: list[tuple[tuple[bytes, ...], bytes]] = []
            deposits: list[tuple[object, SourcePathState]] = []
            for request in sends:
                device = world.devices[request.device_id]
                path = device.paths.get(request.path_key)
                key = (request.device_id, request.path_key)
                if (
                    path is None
                    or not path.established
                    or not device.online
                ):
                    sent[key] = False
                    continue
                if len(request.payload) > payload_bytes:
                    raise ProtocolError(
                        "payload exceeds the phase's fixed size"
                    )
                padded = request.payload.ljust(payload_bytes, b"\x00")
                envelope = build_envelope(
                    path, padded, delivery_round, device.rng
                )
                envelope_bytes = len(envelope)
                wrap_jobs.append((_forward_keys(path), envelope))
                deposits.append((device, path))
                sent[key] = True
            # Stage 2 (parallel, pure): layered symmetric encryption.
            bodies = self.fabric.map(
                _wrap_task, wrap_jobs, context=base_round, label="mixnet.wrap"
            )
            # Stage 3 (serial): mailbox deposits in request order.
            for (device, path), body in zip(deposits, bodies):
                device.queue_deposit(
                    path.hop_handles[0], path.first_path_id, body
                )
            # Arm dummy injection: a hop at position p that sees no message
            # on an expecting link in round base+p emits a dummy of matching
            # size.
            if envelope_bytes is not None:
                world.forwarding_phase_start = base_round
                # A hop at position p deposits bodies of exactly
                # envelope + (k - p) bytes (one TAG_FORWARD byte per layer
                # still to peel); emit_dummies matches that shape.
                world.forwarding_body_bytes = envelope_bytes
            delivered = sum(1 for ok in sent.values() if ok)
            telemetry.count("mixnet.send.messages", delivered)
            for _ in range(delivered):
                telemetry.observe("mixnet.send.hop_latency_rounds", k + 1)
            # Deposits land in C-round `base`, hop j forwards in base+j, and
            # the destination opens its mailbox in base+k+1 — k+1 C-rounds
            # of latency (§3.5), spanning k+2 round boundaries of the
            # simulator.
            try:
                for _ in range(k + 2):
                    world.run_round()
            finally:
                world.forwarding_phase_start = None
        return sent

    def send_reliable(
        self,
        sends: list[SendRequest],
        payload_bytes: int,
        confirm,
        max_attempts: int = 3,
    ) -> ReliableSendResult:
        """Bounded retransmission with replica failover.

        Runs :meth:`send_batch` waves until ``confirm(request)`` is true
        for every request or the attempt budget runs out.  Between
        attempts the clock idles ``2**attempt`` C-rounds plus a seeded
        jitter of up to ``2**attempt - 1`` more (exponential backoff
        with full jitter — a real deployment waits for churned devices
        to come back, and jitter keeps retry waves from thundering in
        phase, §3.4).  The jitter is drawn from the world RNG, so chaos
        replays stay bit-identical.  Each retry rotates to the next
        pre-established
        replica path for the same slot, and a request whose chosen
        replica was never established fails over immediately to any
        established sibling — the paper's telescoping circuits are cheap
        to set up in redundant pairs precisely so the source has a
        second route ready (§3.4, Figure 5c).

        ``confirm`` is the caller's delivery oracle (e.g. "the
        destination's mailbox state shows the payload"); requests whose
        payload is pure padding should confirm trivially.
        """
        world = self.world
        replicas = world.params.replicas
        delivered = {
            (req.device_id, req.path_key): False for req in sends
        }
        pending = list(enumerate(sends))
        attempts_used: dict[int, int] = {}
        retransmissions = 0
        failovers = 0
        with telemetry.span(
            "mixnet.send_reliable",
            sends=len(sends),
            max_attempts=max_attempts,
        ):
            for attempt in range(max_attempts):
                batch = []
                for _, request in pending:
                    slot, primary = request.path_key
                    key = (slot, (primary + attempt) % replicas)
                    device = world.devices[request.device_id]
                    path = device.paths.get(key)
                    if path is None or not path.established:
                        for alt in range(replicas):
                            candidate = device.paths.get((slot, alt))
                            if candidate is not None and candidate.established:
                                key = (slot, alt)
                                break
                    if attempt > 0:
                        retransmissions += 1
                    if key != request.path_key:
                        failovers += 1
                    batch.append(
                        SendRequest(request.device_id, key, request.payload)
                    )
                self.send_batch(batch, payload_bytes)
                still_pending = []
                for index, request in pending:
                    if confirm(request):
                        delivered[(request.device_id, request.path_key)] = True
                        attempts_used[index] = attempt + 1
                    else:
                        still_pending.append((index, request))
                pending = still_pending
                if not pending:
                    break
                if attempt < max_attempts - 1:
                    # Seeded jitter from the world RNG keeps replays
                    # bit-identical; randrange(1) == 0 leaves the first
                    # backoff untouched.
                    backoff = 2**attempt + world.rng.randrange(2**attempt)
                    for _ in range(backoff):
                        world.run_round()
            for count in attempts_used.values():
                telemetry.observe("mixnet.send.attempts", count)
            if retransmissions:
                telemetry.count(
                    "mixnet.retransmissions.total", retransmissions
                )
            if failovers:
                telemetry.count("mixnet.failovers.total", failovers)
            undelivered = tuple(
                (req.device_id, req.path_key) for _, req in pending
            )
            if undelivered:
                telemetry.count("mixnet.send.undelivered", len(undelivered))
        return ReliableSendResult(
            delivered=delivered,
            retransmissions=retransmissions,
            failovers=failovers,
            undelivered=undelivered,
        )


def strip_padding(payload: bytes) -> bytes:
    """Inverse of the ljust padding used by :meth:`send_batch`."""
    return payload.rstrip(b"\x00")
