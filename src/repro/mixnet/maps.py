"""The verifiable maps M1 and M2 (§3.3).

When a query is issued, the aggregator compiles the P most recent
pseudonyms of each device and builds two Merkle hash trees:

* **M1** maps each pseudonym number in [0, Np*P) to a leaf
  (h_i, pk_i, d_i): the pseudonym, its public key, and the number of the
  owning device.  Devices look up hop pseudonyms here, with positional
  inclusion proofs.

* **M2** maps each device number to a leaf listing the hashes of that
  device's P pseudonyms and public keys.  It exists so devices can audit
  M1: a device that registered many more than P pseudonyms cannot fit
  them in its M2 leaf, and an aggregator minting Sybil devices runs out
  of M2's Np leaves.

Both roots go to the bulletin board before any lookups are served, so
the aggregator is committed.  Devices then run two audits: each device
checks its *own* pseudonyms are present in M1 (omission detection), and
each device cross-audits x random M1 entries against M2.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass

from repro.crypto import rsa
from repro.crypto.hashes import protocol_hash
from repro.crypto.merkle import InclusionProof, MerkleTree, verify_inclusion
from repro.errors import ProtocolError
from repro.mixnet.pseudonym import Pseudonym


@dataclass(frozen=True)
class M1Leaf:
    """(h_i, pk_i, d_i): pseudonym handle, public key, owning device."""

    handle: bytes
    public_key: rsa.RsaPublicKey
    device_number: int

    def encode(self) -> bytes:
        key_bytes = self.public_key.serialize()
        return (
            struct.pack(">Q", self.device_number)
            + struct.pack(">H", len(self.handle))
            + self.handle
            + key_bytes
        )

    @classmethod
    def decode(cls, data: bytes) -> M1Leaf:
        device_number = struct.unpack(">Q", data[:8])[0]
        handle_len = struct.unpack(">H", data[8:10])[0]
        handle = data[10 : 10 + handle_len]
        public_key = rsa.RsaPublicKey.deserialize(data[10 + handle_len :])
        return cls(handle=handle, public_key=public_key, device_number=device_number)

    def pseudonym(self) -> Pseudonym:
        return Pseudonym(handle=self.handle, public_key=self.public_key)


@dataclass(frozen=True)
class M2Leaf:
    """Hashes of one device's pseudonyms and public keys."""

    handle_hashes: tuple[bytes, ...]
    key_hashes: tuple[bytes, ...]

    def encode(self) -> bytes:
        return (
            struct.pack(">H", len(self.handle_hashes))
            + b"".join(self.handle_hashes)
            + b"".join(self.key_hashes)
        )

    @classmethod
    def decode(cls, data: bytes) -> M2Leaf:
        count = struct.unpack(">H", data[:2])[0]
        body = data[2:]
        hashes = [body[i * 32 : (i + 1) * 32] for i in range(2 * count)]
        return cls(
            handle_hashes=tuple(hashes[:count]), key_hashes=tuple(hashes[count:])
        )

    def contains(self, pseudonym: Pseudonym) -> bool:
        return (
            protocol_hash(b"m2-handle", pseudonym.handle) in self.handle_hashes
            and protocol_hash(b"m2-key", pseudonym.public_key.serialize())
            in self.key_hashes
        )


@dataclass(frozen=True)
class M1Lookup:
    """A served M1 entry: leaf plus positional inclusion proof."""

    index: int
    leaf: M1Leaf
    proof: InclusionProof


@dataclass(frozen=True)
class M2Lookup:
    device_number: int
    leaf: M2Leaf
    proof: InclusionProof


class Directory:
    """The aggregator's built maps, ready to serve verifiable lookups."""

    def __init__(
        self,
        m1_leaves: list[M1Leaf],
        m2_leaves: list[M2Leaf],
        pseudonyms_per_device: int,
    ):
        self.m1_leaves = m1_leaves
        self.m2_leaves = m2_leaves
        self.pseudonyms_per_device = pseudonyms_per_device
        self._m1 = MerkleTree([leaf.encode() for leaf in m1_leaves])
        self._m2 = MerkleTree([leaf.encode() for leaf in m2_leaves])
        self._by_handle = {leaf.handle: i for i, leaf in enumerate(m1_leaves)}

    @property
    def num_slots(self) -> int:
        """Np * P, the size of the pseudonym number space."""
        return len(self.m1_leaves)

    @property
    def num_devices(self) -> int:
        return len(self.m2_leaves)

    @property
    def m1_root(self) -> bytes:
        return self._m1.root

    @property
    def m2_root(self) -> bytes:
        return self._m2.root

    def lookup(self, index: int) -> M1Lookup:
        """Serve pseudonym number ``index`` with its inclusion proof."""
        if not 0 <= index < len(self.m1_leaves):
            raise ProtocolError(f"pseudonym number {index} out of range")
        return M1Lookup(
            index=index, leaf=self.m1_leaves[index], proof=self._m1.prove(index)
        )

    def lookup_device(self, device_number: int) -> M2Lookup:
        index = device_number - 1
        if not 0 <= index < len(self.m2_leaves):
            raise ProtocolError(f"device number {device_number} out of range")
        return M2Lookup(
            device_number=device_number,
            leaf=self.m2_leaves[index],
            proof=self._m2.prove(index),
        )

    def index_of_handle(self, handle: bytes) -> int:
        try:
            return self._by_handle[handle]
        except KeyError as exc:
            raise ProtocolError("pseudonym not present in M1") from exc


def build_directory(
    registrations: dict[int, list[Pseudonym]],
    rng: random.Random,
) -> Directory:
    """Honest directory construction.

    ``registrations`` maps simulation device ids to that device's
    pseudonym list; every device must register the same number P of
    pseudonyms.  Device numbers in [1, Np] and pseudonym numbers in
    [0, Np*P) are assigned at random, as §3.3 prescribes.
    """
    if not registrations:
        raise ProtocolError("no devices registered")
    pseudonym_counts = {len(ps) for ps in registrations.values()}
    if len(pseudonym_counts) != 1:
        raise ProtocolError("all devices must register exactly P pseudonyms")
    per_device = pseudonym_counts.pop()
    device_ids = list(registrations)
    rng.shuffle(device_ids)
    device_numbers = {dev: i + 1 for i, dev in enumerate(device_ids)}

    entries: list[M1Leaf] = []
    m2_leaves: list[M2Leaf | None] = [None] * len(device_ids)
    for dev, pseudonyms in registrations.items():
        number = device_numbers[dev]
        for p in pseudonyms:
            entries.append(
                M1Leaf(handle=p.handle, public_key=p.public_key, device_number=number)
            )
        m2_leaves[number - 1] = M2Leaf(
            handle_hashes=tuple(
                protocol_hash(b"m2-handle", p.handle) for p in pseudonyms
            ),
            key_hashes=tuple(
                protocol_hash(b"m2-key", p.public_key.serialize())
                for p in pseudonyms
            ),
        )
    rng.shuffle(entries)
    return Directory(
        m1_leaves=entries,
        m2_leaves=[leaf for leaf in m2_leaves if leaf is not None],
        pseudonyms_per_device=per_device,
    )


# ---------------------------------------------------------------------------
# Device-side verification (§3.3 audits)
# ---------------------------------------------------------------------------


def verify_m1_lookup(m1_root: bytes, lookup: M1Lookup) -> bool:
    """Check (a) the inclusion proof at the claimed position and (b) that
    the pseudonym handle matches the public key."""
    if lookup.proof.index != lookup.index:
        return False
    if not verify_inclusion(m1_root, lookup.leaf.encode(), lookup.proof):
        return False
    return lookup.leaf.pseudonym().verify_binding()


def verify_m2_lookup(m2_root: bytes, lookup: M2Lookup) -> bool:
    if lookup.proof.index != lookup.device_number - 1:
        return False
    return verify_inclusion(m2_root, lookup.leaf.encode(), lookup.proof)


def audit_own_pseudonyms(
    m1_root: bytes,
    own_pseudonyms: list[Pseudonym],
    served: list[M1Lookup],
) -> bool:
    """First audit: the device checks every one of its own pseudonyms is
    present (at some position) with a valid proof.  Detects omission."""
    if len(served) != len(own_pseudonyms):
        return False
    served_by_handle = {lookup.leaf.handle: lookup for lookup in served}
    for pseudonym in own_pseudonyms:
        lookup = served_by_handle.get(pseudonym.handle)
        if lookup is None:
            return False
        if lookup.leaf.public_key != pseudonym.public_key:
            return False
        if not verify_m1_lookup(m1_root, lookup):
            return False
    return True


def cross_audit(
    m1_root: bytes,
    m2_root: bytes,
    directory: Directory,
    rng: random.Random,
    samples: int,
) -> bool:
    """Second audit: sample random pseudonym numbers, fetch the M1 leaf,
    then demand the matching M2 leaf and check the pseudonym's hashes
    appear there.  An over-registered device or fabricated M1 entry fails
    because its M2 leaf only holds P slots."""
    for _ in range(samples):
        index = rng.randrange(directory.num_slots)
        m1_lookup = directory.lookup(index)
        if not verify_m1_lookup(m1_root, m1_lookup):
            return False
        m2_lookup = directory.lookup_device(m1_lookup.leaf.device_number)
        if not verify_m2_lookup(m2_root, m2_lookup):
            return False
        if len(m2_lookup.leaf.handle_hashes) > directory.pseudonyms_per_device:
            return False
        if not m2_lookup.leaf.contains(m1_lookup.leaf.pseudonym()):
            return False
    return True
