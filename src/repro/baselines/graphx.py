"""A Pregel-style plaintext graph engine — the "GraphX" baseline of §7.

The paper contrasts Mycelium's cost against simply uploading all data in
the clear and running a traditional graph-processing system: Q1 over a
billion-node random graph finishes in seconds on GraphX.  This module
provides that baseline: a vertex-centric superstep engine (Pregel/GraphX
programming model) that runs the same catalog queries without any
privacy machinery, used both for correctness cross-checks and for the
cost-comparison benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.workloads.graphgen import ContactGraph


@dataclass
class VertexContext:
    """What a vertex program sees in one superstep."""

    vertex: int
    superstep: int
    attrs: dict[str, int]
    graph: ContactGraph
    outbox: list[tuple[int, object]]
    halted: bool = False

    def send(self, target: int, message: object) -> None:
        self.outbox.append((target, message))

    def send_to_neighbors(self, message: object) -> None:
        for neighbor in self.graph.neighbors(self.vertex):
            self.outbox.append((neighbor, message))

    def vote_to_halt(self) -> None:
        self.halted = True


#: A vertex program: (context, incoming messages) -> None.
VertexProgram = Callable[[VertexContext, list[object]], None]


class PregelEngine:
    """Synchronous superstep execution over a contact graph."""

    def __init__(self, graph: ContactGraph):
        self.graph = graph

    def run(
        self,
        program: VertexProgram,
        max_supersteps: int,
        initial_message: object | None = None,
    ) -> dict[int, dict[str, int]]:
        """Run until every vertex halts with no pending messages, or the
        superstep limit is reached.  Returns the final vertex states."""
        graph = self.graph
        states = [dict(attrs) for attrs in graph.vertex_attrs]
        inboxes: list[list[object]] = [
            [initial_message] if initial_message is not None else []
            for _ in range(graph.num_vertices)
        ]
        active = set(range(graph.num_vertices))
        for superstep in range(max_supersteps):
            outboxes: list[list[tuple[int, object]]] = []
            next_active = set()
            for vertex in range(graph.num_vertices):
                messages = inboxes[vertex]
                if vertex not in active and not messages:
                    continue
                context = VertexContext(
                    vertex=vertex,
                    superstep=superstep,
                    attrs=states[vertex],
                    graph=graph,
                    outbox=[],
                )
                program(context, messages)
                outboxes.append(context.outbox)
                if not context.halted:
                    next_active.add(vertex)
            inboxes = [[] for _ in range(graph.num_vertices)]
            for outbox in outboxes:
                for target, message in outbox:
                    inboxes[target].append(message)
            active = next_active | {
                v for v, inbox in enumerate(inboxes) if inbox
            }
            if not active:
                break
        return {v: states[v] for v in range(graph.num_vertices)}


def count_khop_matches(
    graph: ContactGraph,
    hops: int,
    vertex_predicate: Callable[[dict[str, int]], bool],
    include_origin: bool | None = None,
) -> dict[int, int]:
    """The §7 baseline computation for Q1-style queries: for every
    vertex, count the k-hop neighborhood members satisfying a predicate.

    Implemented as a Pregel program: query ids flood for ``hops``
    supersteps, then indicator messages aggregate back up the BFS tree —
    the same structure Mycelium executes under encryption.  Matching the
    protocol semantics, the origin's own row is included for multi-hop
    queries (§4.4) but not for one-hop queries (§4.3); pass
    ``include_origin`` to override.
    """
    if include_origin is None:
        include_origin = hops > 1
    engine = PregelEngine(graph)
    # Flood phase bookkeeping lives in per-vertex state dictionaries.
    upstream: list[dict[int, int]] = [dict() for _ in range(graph.num_vertices)]
    counts = {v: 0 for v in range(graph.num_vertices)}

    def program(ctx: VertexContext, messages: list[object]) -> None:
        v = ctx.vertex
        if ctx.superstep == 0:
            # Every vertex is an origin: start its own flood.
            if include_origin and vertex_predicate(ctx.attrs):
                counts[v] += 1
            ctx.send_to_neighbors(("flood", v, 1))
            return
        if ctx.superstep <= hops:
            for kind, origin, depth in [m for m in messages if m[0] == "flood"]:
                if origin == v or origin in upstream[v]:
                    continue
                upstream[v][origin] = depth
                if vertex_predicate(ctx.attrs):
                    counts[origin] += 1
                if depth < hops:
                    ctx.send_to_neighbors(("flood", origin, depth + 1))
        if ctx.superstep >= hops:
            ctx.vote_to_halt()

    engine.run(program, max_supersteps=hops + 2)
    return counts
