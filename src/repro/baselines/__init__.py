"""Non-private baselines: the Pregel/GraphX-style plaintext engine the
paper compares against in §7 (:mod:`repro.baselines.graphx`).
"""
