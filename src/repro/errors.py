"""Exception hierarchy for the Mycelium reproduction.

Every subsystem raises a subclass of :class:`MyceliumError` so callers can
catch library failures without swallowing unrelated bugs.
"""

from __future__ import annotations


class MyceliumError(Exception):
    """Base class for all errors raised by this library."""


class ParameterError(MyceliumError):
    """A configuration or cryptographic parameter is invalid."""


class TelemetryError(MyceliumError):
    """Misuse of the telemetry layer (undeclared metric, kind mismatch)."""


class CryptoError(MyceliumError):
    """A cryptographic operation failed (bad key, tag mismatch, ...)."""


class AuthenticationError(CryptoError):
    """An authenticated-encryption tag or signature did not verify."""


class NoiseBudgetExceeded(CryptoError):
    """A homomorphic operation would push the ciphertext noise past the
    point where decryption is still correct."""


class ProofError(CryptoError):
    """A zero-knowledge proof failed to verify, or a prover submitted a
    witness that does not satisfy the statement."""


class SecretSharingError(CryptoError):
    """Secret-sharing reconstruction or verification failed."""


class RobustDecodingError(SecretSharingError):
    """Reed-Solomon robust decoding could not recover the secret: more
    than ``(n - t) // 2`` shares are wrong, so no polynomial of degree
    < t agrees with enough of the received word.  Raised instead of
    ever returning a wrong secret."""


class MerkleError(CryptoError):
    """A Merkle inclusion proof is malformed or inconsistent."""


class ProtocolError(MyceliumError):
    """A participant observed a violation of the Mycelium protocol."""


class LivenessQuorumError(ProtocolError):
    """Too few committee members were online to reach the decryption
    threshold (§6.5).  Distinct from a decode failure under corruption:
    a liveness miss is safely retried once members return, while a
    :class:`RobustDecodingError` means the *present* members are lying
    and a retry with the same set cannot help."""


class EquivocationError(ProtocolError):
    """The aggregator presented inconsistent views to different devices."""


class ShardIntegrityError(ProtocolError):
    """A shard aggregator's claimed partial sum does not equal the
    reduction of its own chunk evidence.  Raised by the root
    :class:`repro.sharding.ReductionTree` before the bad partial can
    contaminate the committee's single decryption (docs/SHARDING.md)."""


class MessageDroppedError(ProtocolError):
    """The aggregator (or a forwarder) dropped a message it had accepted."""


class QueryError(MyceliumError):
    """A query could not be parsed, compiled, or executed."""


class QuerySyntaxError(QueryError):
    """The query text is not valid Mycelium SQL."""


class UnsupportedQueryError(QueryError):
    """The query is syntactically valid but outside the supported subset
    (e.g. it exceeds the HE multiplication budget, as Q1 does under the
    paper's parameters)."""


class PrivacyBudgetExceeded(MyceliumError):
    """Running the query would exceed the remaining differential-privacy
    budget."""


class DurabilityError(MyceliumError):
    """The write-ahead journal or campaign recovery layer failed."""


class JournalError(DurabilityError):
    """The on-disk journal is unusable in its current form."""


class JournalEmptyError(JournalError):
    """The journal file is missing or contains no records."""


class JournalTruncatedError(JournalError):
    """The final journal record is incomplete (torn write at crash)."""


class JournalCorruptError(JournalError):
    """A non-final record is unparseable or fails its checksum."""


class JournalSequenceError(JournalError):
    """Record sequence numbers are not the expected 0,1,2,... chain
    (duplicate or gap), so the journal cannot be replayed."""


class CampaignResumeError(DurabilityError):
    """Replaying the journal produced state inconsistent with the
    recorded digests — the journal and the code disagree."""


class ServiceError(MyceliumError):
    """The long-lived query service failed or refused a request."""


class AdmissionRejected(ServiceError):
    """A submission was refused at the service's admission gate.

    Subclasses say why; every rejection is returned to the client as a
    typed error frame (``docs/SERVICE.md``) instead of entering the
    scheduler.  The privacy-budget ledger is never charged for a
    rejected submission.
    """


class BudgetRejected(AdmissionRejected):
    """Admitting the submission would push the epsilon ledger past the
    service's total budget (checked and charged atomically by the
    :class:`repro.service.admission.AdmissionController`)."""


class QueueFullRejected(AdmissionRejected):
    """The bounded admission queue is full — backpressure: retry later."""


class ServiceShutdown(ServiceError):
    """The service is draining or stopped and accepts no new work."""


class FrameError(ServiceError):
    """A wire frame violated the length-prefixed JSON protocol
    (oversized, truncated, or not a JSON object)."""


class DeadlineExceeded(ServiceError):
    """A per-query deadline expired somewhere along the
    admission → campaign → decode path.  The submission is dropped; if
    it never executed, its epsilon charge is refunded, and if it did
    execute the charge stands (the query ran, only the answer was too
    late to deliver)."""


class ClientTimeout(ServiceError):
    """A :class:`repro.service.client.ServiceClient` connect or read
    exceeded its configured timeout.  Raised client-side instead of
    hanging forever on a dead server socket."""


class CoordinatorCrash(MyceliumError):
    """A simulated coordinator process kill (fault injection / --kill-at).

    Raised *after* any in-flight journal record is durable, so a resumed
    campaign continues from exactly this boundary.
    """

    def __init__(self, phase: str, query_index: int | None = None):
        self.phase = phase
        self.query_index = query_index
        where = phase if query_index is None else f"{phase} (query {query_index})"
        super().__init__(f"coordinator killed at {where}")
