"""Exception hierarchy for the Mycelium reproduction.

Every subsystem raises a subclass of :class:`MyceliumError` so callers can
catch library failures without swallowing unrelated bugs.
"""

from __future__ import annotations


class MyceliumError(Exception):
    """Base class for all errors raised by this library."""


class ParameterError(MyceliumError):
    """A configuration or cryptographic parameter is invalid."""


class TelemetryError(MyceliumError):
    """Misuse of the telemetry layer (undeclared metric, kind mismatch)."""


class CryptoError(MyceliumError):
    """A cryptographic operation failed (bad key, tag mismatch, ...)."""


class AuthenticationError(CryptoError):
    """An authenticated-encryption tag or signature did not verify."""


class NoiseBudgetExceeded(CryptoError):
    """A homomorphic operation would push the ciphertext noise past the
    point where decryption is still correct."""


class ProofError(CryptoError):
    """A zero-knowledge proof failed to verify, or a prover submitted a
    witness that does not satisfy the statement."""


class SecretSharingError(CryptoError):
    """Secret-sharing reconstruction or verification failed."""


class MerkleError(CryptoError):
    """A Merkle inclusion proof is malformed or inconsistent."""


class ProtocolError(MyceliumError):
    """A participant observed a violation of the Mycelium protocol."""


class EquivocationError(ProtocolError):
    """The aggregator presented inconsistent views to different devices."""


class MessageDroppedError(ProtocolError):
    """The aggregator (or a forwarder) dropped a message it had accepted."""


class QueryError(MyceliumError):
    """A query could not be parsed, compiled, or executed."""


class QuerySyntaxError(QueryError):
    """The query text is not valid Mycelium SQL."""


class UnsupportedQueryError(QueryError):
    """The query is syntactically valid but outside the supported subset
    (e.g. it exceeds the HE multiplication budget, as Q1 does under the
    paper's parameters)."""


class PrivacyBudgetExceeded(MyceliumError):
    """Running the query would exceed the remaining differential-privacy
    budget."""
