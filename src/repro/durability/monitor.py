"""Committee health monitoring: liveness pings + emergency resharing.

§6.5: "If there aren't enough members for liveness, we simply have to
wait for some amount of time before enough members are back."  A
long-lived campaign cannot only wait, though — if churn keeps eating
members, the committee must hand the key to a healthier one *while it
still has a decryption quorum*.  The monitor pings every member through
the fault injector's churn windows (a pure function of the plan and the
campaign clock, hence replayable) and reports:

* ``quorate`` — at least ``threshold`` members live: decryption can run;
* ``needs_reshare`` — live membership has decayed to the threshold (no
  slack left): trigger an emergency reshare now, with the live members
  as dealers, before the next member loss makes the key unreachable
  until churn reverses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry
from repro.core.committee import Committee
from repro.faults.injector import FaultInjector


@dataclass(frozen=True)
class HealthReport:
    """One round's ping sweep over the committee."""

    round: int
    live: tuple[int, ...]
    down: tuple[int, ...]
    threshold: int

    @property
    def quorate(self) -> bool:
        return len(self.live) >= self.threshold

    @property
    def needs_reshare(self) -> bool:
        """Live membership is at (or below) the liveness threshold —
        one more loss and the key is unreachable until churn reverses."""
        return bool(self.down) and len(self.live) <= self.threshold


class CommitteeHealthMonitor:
    """Pings committee members against the fault plan's churn windows."""

    def __init__(self, injector: FaultInjector | None):
        self.injector = injector

    def ping(self, committee: Committee, round_number: int) -> HealthReport:
        member_ids = [m.device_id for m in committee.members]
        if self.injector is None:
            live, down = member_ids, []
        else:
            telemetry.count("durability.monitor.pings", len(member_ids))
            live = [
                d
                for d in member_ids
                if self.injector.device_online(d, round_number)
            ]
            down = [d for d in member_ids if d not in live]
        return HealthReport(
            round=round_number,
            live=tuple(live),
            down=tuple(down),
            threshold=committee.threshold,
        )

    def live_devices(
        self, num_devices: int, round_number: int
    ) -> list[int]:
        """All live devices — the electorate for an emergency reshare."""
        if self.injector is None:
            return list(range(num_devices))
        return [
            d
            for d in range(num_devices)
            if self.injector.device_online(d, round_number)
        ]
