"""Canonical JSON forms and digests for journaled values.

Two classes of phase output cross the journal:

* **restorable** values are stored inline (aggregate ciphertexts at the
  TEST/SMALL rings are a few KB of coefficients; decrypted coefficient
  vectors, noise draws, and released results are tiny).  Python's
  ``json`` round-trips ``int`` exactly at arbitrary precision and
  ``float`` exactly via ``repr``, so restore is bit-identical.
* **replayable** values (per-origin submissions with their proofs, key
  material) would be large or secret; only a digest is journaled, and
  resume re-derives the value from the seeded ceremony, then checks the
  digest.  Secrets in particular are *never* written to disk.
"""

from __future__ import annotations

import hashlib

from repro.core import committee as committee_mod
from repro.core.results import (
    GsumResult,
    HistogramResult,
    QueryMetadata,
    QueryResult,
)
from repro.crypto import bgv
from repro.crypto.polyring import RingElement
from repro.durability.journal import canonical_json
from repro.engine.encrypted import OriginSubmission
from repro.engine.histogram import GroupHistogram
from repro.params import BGVProfile


def digest_json(obj: object) -> str:
    """sha256 over the canonical JSON form."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


# -- ciphertexts ------------------------------------------------------------


def ciphertext_to_json(ct: bgv.Ciphertext) -> dict:
    return {
        "components": [list(c.coeffs) for c in ct.components],
        "noise_bits": ct.noise_bits,
        "fresh_factors": ct.fresh_factors,
    }


def ciphertext_from_json(profile: BGVProfile, data: dict) -> bgv.Ciphertext:
    return bgv.Ciphertext(
        profile=profile,
        components=tuple(
            RingElement.from_coeffs(profile.ring, coeffs)
            for coeffs in data["components"]
        ),
        noise_bits=data["noise_bits"],
        fresh_factors=data["fresh_factors"],
    )


# -- submissions (digest only: proofs are heavy, replay is cheap) -----------


def submissions_digest(submissions: list[OriginSubmission]) -> str:
    """Order-sensitive digest over (origin, ciphertext bytes)."""
    h = hashlib.sha256()
    for sub in submissions:
        h.update(sub.origin.to_bytes(8, "big", signed=False))
        h.update(sub.ciphertext.serialize())
    return h.hexdigest()


# -- committees (public commitments only — never shares) --------------------


def committee_digest(committee: committee_mod.Committee) -> str:
    """Binds the epoch: member ids, threshold, and every coefficient's
    Feldman commitment (which commits the sharing polynomials without
    revealing a single share)."""
    payload = {
        "epoch": committee.epoch,
        "threshold": committee.threshold,
        "members": [m.device_id for m in committee.members],
        "commitments": [
            list(c.commitments) for c in committee.commitments
        ],
    }
    return digest_json(payload)


# -- released results -------------------------------------------------------


def metadata_to_json(md: QueryMetadata) -> dict:
    return {
        "query_text": md.query_text,
        "epsilon": md.epsilon,
        "sensitivity": md.sensitivity,
        "noise_scale": md.noise_scale,
        "contributing_origins": md.contributing_origins,
        "rejected_origins": md.rejected_origins,
        "committee_epoch": md.committee_epoch,
        "verification_seconds": md.verification_seconds,
        "complaints": md.complaints,
        "quarantined_origins": list(md.quarantined_origins),
        "byzantine_origins": list(md.byzantine_origins),
    }


def metadata_from_json(data: dict) -> QueryMetadata:
    return QueryMetadata(
        query_text=data["query_text"],
        epsilon=data["epsilon"],
        sensitivity=data["sensitivity"],
        noise_scale=data["noise_scale"],
        contributing_origins=data["contributing_origins"],
        rejected_origins=data["rejected_origins"],
        committee_epoch=data["committee_epoch"],
        verification_seconds=data["verification_seconds"],
        complaints=data["complaints"],
        # Absent in journals written before the quarantine layer.
        quarantined_origins=tuple(data.get("quarantined_origins", ())),
        byzantine_origins=tuple(data.get("byzantine_origins", ())),
    )


def result_to_json(result: QueryResult) -> dict:
    if isinstance(result, HistogramResult):
        return {
            "kind": "histo",
            "groups": [
                {
                    "group": g.group,
                    "counts": list(g.counts),
                    "bin_edges": (
                        None if g.bin_edges is None else list(g.bin_edges)
                    ),
                }
                for g in result.groups
            ],
            "metadata": metadata_to_json(result.metadata),
        }
    return {
        "kind": "gsum",
        "values": list(result.values),
        "metadata": metadata_to_json(result.metadata),
    }


def result_from_json(data: dict) -> QueryResult:
    metadata = metadata_from_json(data["metadata"])
    if data["kind"] == "histo":
        return HistogramResult(
            groups=tuple(
                GroupHistogram(
                    group=g["group"],
                    counts=tuple(g["counts"]),
                    bin_edges=(
                        None
                        if g["bin_edges"] is None
                        else tuple(g["bin_edges"])
                    ),
                )
                for g in data["groups"]
            ),
            metadata=metadata,
        )
    return GsumResult(values=tuple(data["values"]), metadata=metadata)
