"""Sidecar checkpoints: bound the replay work of a resume.

A checkpoint is a redundant, self-checksummed snapshot of the campaign
state *derived from* the journal prefix up to ``covers_seq``.  Resume
prefers the newest valid checkpoint (restoring budget ledger, clock,
results, and epoch facts in one read) and then applies only the journal
records after it; a missing or corrupt checkpoint merely falls back to
full journal replay — checkpoints are an optimization, never a source
of truth.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import telemetry
from repro.durability.journal import canonical_json
from repro.durability.serialize import digest_json

CHECKPOINT_PREFIX = "checkpoint-"


def write_checkpoint(
    directory: str | Path, covers_seq: int, state: dict
) -> Path:
    """Write ``checkpoint-<seq>.json`` with an integrity digest."""
    payload = {
        "covers_seq": covers_seq,
        "state": state,
    }
    payload["digest"] = digest_json(payload["state"])
    path = Path(directory) / f"{CHECKPOINT_PREFIX}{covers_seq}.json"
    path.write_text(canonical_json(payload), "utf-8")
    telemetry.count("durability.checkpoints.written")
    return path


def load_latest_checkpoint(
    directory: str | Path, max_seq: int
) -> tuple[int, dict] | None:
    """The newest valid checkpoint covering at most ``max_seq``.

    Returns ``(covers_seq, state)`` or ``None``.  Corrupt candidates
    are skipped (counted, not fatal) — the journal can always rebuild.
    """
    candidates = sorted(
        Path(directory).glob(f"{CHECKPOINT_PREFIX}*.json"),
        key=lambda p: p.name,
        reverse=True,
    )
    best: tuple[int, dict] | None = None
    for path in candidates:
        try:
            payload = json.loads(path.read_text("utf-8"))
            covers = payload["covers_seq"]
            state = payload["state"]
            if payload["digest"] != digest_json(state):
                raise ValueError("digest mismatch")
        except (ValueError, KeyError, TypeError, json.JSONDecodeError):
            telemetry.count("durability.checkpoints.rejected")
            continue
        if covers <= max_seq and (best is None or covers > best[0]):
            best = (covers, state)
    return best
