"""The durable campaign runner: multi-query, multi-epoch, crash-safe.

A *campaign* is the deployed shape of Mycelium: one genesis ceremony,
then a seeded sequence of queries over a fixed contact graph, with the
decryption key handed between committee epochs (scheduled rotations
plus health-monitor-triggered emergency reshares).  Every phase
boundary is journaled (:mod:`repro.durability.journal`); killing the
coordinator at *any* boundary and resuming with
``python -m repro campaign --resume <dir>`` produces released results,
budget ledger, and epoch commitments bit-identical to an uninterrupted
run.

Determinism contract: all randomness is derived from the recorded
master seed with domain-separated labels
(:func:`repro.runtime.seeding.derive_rng`)::

    setup            derive_rng(master, "setup")
    workload         derive_rng(master, "workload")
    query qi, phase  derive_rng(master, "query", qi, "<phase>")
    epoch e          derive_rng(master, "epoch", e, "elect" / "deal")

so re-running any phase from a rebuilt process consumes exactly the
same random stream as the first attempt, at any worker count and on
any compute backend.  Secrets (the BGV key, committee shares) are never
journaled — setup and every committed handoff are *replayed* on resume
and digest-checked against the journal.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro import telemetry
from repro.core import committee as committee_mod
from repro.core.results import QueryMetadata
from repro.core.rounds import CampaignClock, build_schedule
from repro.core.system import MyceliumSystem
from repro.durability import checkpoint as checkpoint_mod
from repro.durability import serialize
from repro.durability.journal import Journal, JournalRecord
from repro.durability.monitor import CommitteeHealthMonitor
from repro.errors import (
    CampaignResumeError,
    CoordinatorCrash,
    ProtocolError,
    SecretSharingError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import ChurnWindow, FaultPlan
from repro.params import SystemParameters, TEST
from repro.query import sensitivity as sensitivity_mod
from repro.query.catalog import CATALOG
from repro.query.schema import scaled_schema
from repro.runtime import (
    RuntimeConfig,
    TaskFabric,
    backends,
    get_runtime_config,
)
from repro.runtime.seeding import derive_rng
from repro.workloads.epidemic import build_campaign_graph

#: The explicit, idempotent phases of one query, in execution order.
#: Each gets exactly one journal record; the record is the commit point.
PHASES = (
    "compile",
    "charge",
    "rounds",
    "submit",
    "aggregate",
    "decrypt",
    "noise",
    "release",
    "handoff",
)

#: Extra kill points outside the per-query phase loop.
KILL_POINTS = PHASES + ("setup", "start", "handoff-start", "complete")

#: How many C-rounds the runner will wait for a decryption quorum (or a
#: dealer quorum) before declaring the campaign stuck.
QUORUM_WAIT_LIMIT = 1024

RESULTS_NAME = "results.json"


@dataclass(frozen=True)
class KillSpec:
    """Where to simulate a coordinator kill (tests, chaos, CI matrix).

    ``before=False`` (the default, ``--kill-at``) crashes immediately
    *after* the phase's journal record is durable; ``before=True``
    (``--kill-before``) crashes after computing the phase but before
    the record is written, exercising the re-run path.
    """

    phase: str
    query: int | None = None
    before: bool = False

    def __post_init__(self) -> None:
        if self.phase not in KILL_POINTS:
            raise ProtocolError(
                f"unknown kill point {self.phase!r}; "
                f"choose from {', '.join(KILL_POINTS)}"
            )

    @classmethod
    def parse(cls, text: str, before: bool = False) -> KillSpec:
        """``"decrypt"`` or ``"decrypt:2"`` (phase at query index 2)."""
        if ":" in text:
            phase, _, query = text.partition(":")
            return cls(phase=phase, query=int(query), before=before)
        return cls(phase=text, before=before)

    def matches(self, phase: str, query_index: int | None) -> bool:
        if self.phase != phase:
            return False
        return self.query is None or self.query == query_index


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that defines a campaign, all JSON-serializable.

    The config is journaled in the ``campaign-start`` record; a resume
    reads it back from the journal, never from flags.
    """

    master_seed: int
    #: ``(query, epsilon)`` pairs; a query is a catalog id ("Q5") or SQL.
    queries: tuple[tuple[str, float], ...]
    people: int = 12
    degree: int = 3
    total_epsilon: float = 10.0
    committee_size: int = 3
    committee_threshold: int = 2
    #: Scheduled VSR handoff after every k-th query (0 = never).
    rotate_every: int = 1
    #: Random device churn (iid per window, fault-plan seeded).
    churn_fraction: float = 0.0
    churn_window_rounds: int = 4
    fault_seed: int = 0
    #: Targeted committee churn: the first ``committee_churn_members``
    #: members of the *genesis* committee go offline for
    #: ``committee_churn_rounds`` C-rounds starting at
    #: ``committee_churn_start`` — the deterministic way to exercise the
    #: health monitor's emergency resharing.
    committee_churn_members: int = 0
    committee_churn_start: int = 0
    committee_churn_rounds: int = 0
    #: Byzantine committee members: the first ``committee_corrupt_members``
    #: members of the *genesis* committee submit corrupt-partial faults at
    #: every decryption — the robust decoder must correct and flag them
    #: without changing any released result (§5).
    committee_corrupt_members: int = 0
    #: Plan-driven process kills: ``(query_index, phase)`` pairs.
    coordinator_kills: tuple[tuple[int, str], ...] = ()
    #: Sidecar checkpoint cadence, in completed queries (0 = never).
    checkpoint_every: int = 1

    def to_json(self) -> dict:
        data = dataclasses.asdict(self)
        data["queries"] = [list(q) for q in self.queries]
        data["coordinator_kills"] = [
            list(k) for k in self.coordinator_kills
        ]
        return data

    @classmethod
    def from_json(cls, data: dict) -> CampaignConfig:
        kwargs = dict(data)
        kwargs["queries"] = tuple(
            (str(q), float(e)) for q, e in data["queries"]
        )
        kwargs["coordinator_kills"] = tuple(
            (int(q), str(p)) for q, p in data.get("coordinator_kills", [])
        )
        return cls(**kwargs)


@dataclass
class CampaignResult:
    """The campaign's released artifact (also written to results.json)."""

    config: CampaignConfig
    #: Serialized released results, in query order (serialize.result_to_json).
    results: list[dict]
    #: The privacy-budget ledger: ``[label, epsilon]`` in charge order.
    ledger: list[list]
    #: Committed epochs, including genesis: member ids + commitment digest.
    epochs: list[dict]
    emergency_reshares: int
    quorum_wait_rounds: int
    clock_rounds: int

    @property
    def digest(self) -> str:
        """Binds the bit-identical acceptance trio: released results,
        budget ledger, and epoch commitments."""
        return serialize.digest_json(
            {
                "results": self.results,
                "ledger": self.ledger,
                "epochs": self.epochs,
            }
        )

    def to_json(self) -> dict:
        return {
            "config": self.config.to_json(),
            "results": self.results,
            "ledger": self.ledger,
            "epochs": self.epochs,
            "emergency_reshares": self.emergency_reshares,
            "quorum_wait_rounds": self.quorum_wait_rounds,
            "clock_rounds": self.clock_rounds,
            "digest": self.digest,
        }


class CampaignRunner:
    """Drives one campaign directory: fresh start or journal resume."""

    def __init__(
        self,
        config: CampaignConfig,
        directory: str | Path,
        journal: Journal,
        records: list[JournalRecord],
        runtime: RuntimeConfig | None = None,
        kill: KillSpec | None = None,
        offline_store=None,
    ):
        self.config = config
        self.directory = Path(directory)
        self.journal = journal
        self.runtime = runtime
        self.kill = kill
        #: Optional repro.offline.store.OfflineStore of precomputed
        #: pools.  Never journaled: journaled digests are identical with
        #: and without it, so a campaign may crash with a store and
        #: resume without one (or vice versa) bit-identically.
        self.offline_store = offline_store
        self.resumed = bool(records[1:])  # anything beyond campaign-start
        #: Index of already-durable records, keyed by identity.
        self._existing: dict[tuple, JournalRecord] = {}
        self._last_seq = records[-1].seq if records else -1
        for record in records:
            self._existing[self._key(record)] = record

        # -- mutable campaign state (rebuilt on resume) --
        self.system: MyceliumSystem | None = None
        self.graph = None
        self.clock = CampaignClock()
        self.injector: FaultInjector | None = None
        self.monitor = CommitteeHealthMonitor(None)
        self.results: list[dict] = []
        self.epochs: list[dict] = []
        self.emergency_reshares = 0
        self.quorum_wait_rounds = 0
        self._start_query = 0
        self._active_fabric: TaskFabric | None = None
        # Shard count of the *current process*, taken from the runtime
        # config in run().  Deliberately not journaled: like workers and
        # backend, the shard layout never affects results, so a campaign
        # may crash under one K and resume under another bit-identically.
        self._active_shards = 1

    # -- construction -------------------------------------------------------

    @staticmethod
    def _key(record: JournalRecord) -> tuple:
        data = record.data
        if record.type == "phase":
            return ("phase", data["query"], data["phase"])
        if record.type in ("query-start", "handoff-start"):
            return (record.type, data["query"])
        if record.type == "crash":
            return ("crash", data["query"], data["phase"])
        return (record.type,)

    @classmethod
    def start(
        cls,
        config: CampaignConfig,
        directory: str | Path,
        runtime: RuntimeConfig | None = None,
        kill: KillSpec | None = None,
        fsync: bool = True,
        offline_store=None,
    ) -> CampaignRunner:
        journal = Journal.create(directory, fsync=fsync)
        record = journal.append(
            "campaign-start", {"version": 1, "config": config.to_json()}
        )
        return cls(
            config, directory, journal, [record], runtime, kill, offline_store
        )

    @classmethod
    def resume(
        cls,
        directory: str | Path,
        runtime: RuntimeConfig | None = None,
        kill: KillSpec | None = None,
        fsync: bool = True,
        offline_store=None,
    ) -> CampaignRunner:
        journal, records = Journal.resume(directory, fsync=fsync)
        if not records or records[0].type != "campaign-start":
            raise CampaignResumeError(
                "journal does not begin with a campaign-start record"
            )
        config = CampaignConfig.from_json(records[0].data["config"])
        return cls(
            config, directory, journal, records, runtime, kill, offline_store
        )

    # -- journal plumbing ---------------------------------------------------

    def _append(self, record_type: str, data: dict) -> JournalRecord:
        record = self.journal.append(record_type, data)
        self._existing[self._key(record)] = record
        self._last_seq = record.seq
        return record

    def _crash(self, phase: str, query_index: int | None) -> None:
        telemetry.count("durability.campaign.crashes")
        raise CoordinatorCrash(phase, query_index)

    def _kill_before(self, phase: str, query_index: int | None) -> None:
        if self.kill and self.kill.before and self.kill.matches(
            phase, query_index
        ):
            self._crash(phase, query_index)

    def _kill_after(self, phase: str, query_index: int | None) -> None:
        """Post-commit kills: the explicit KillSpec, then the fault plan.

        Plan-driven kills are journaled (a ``crash`` record) before the
        process dies, so a resumed run sees the record and does not die
        at the same boundary again.
        """
        if self.kill and not self.kill.before and self.kill.matches(
            phase, query_index
        ):
            self._crash(phase, query_index)
        if (
            self.injector is not None
            and query_index is not None
            and self.injector.coordinator_crash_due(query_index, phase)
            and ("crash", query_index, phase) not in self._existing
        ):
            self._append("crash", {"query": query_index, "phase": phase})
            self.injector.record_coordinator_crash()
            self._crash(phase, query_index)

    def _commit(
        self, record_type: str, phase: str, query_index: int | None,
        data: dict,
    ) -> None:
        self._kill_before(phase, query_index)
        self._append(record_type, data)
        self._kill_after(phase, query_index)

    # -- deterministic environment ------------------------------------------

    def _system_params(self) -> SystemParameters:
        return SystemParameters(
            num_devices=self.config.people,
            degree_bound=self.config.degree,
            hops=2,
            committee_size=self.config.committee_size,
            replicas=2,
            forwarder_fraction=0.3,
        )

    def _build_system(self) -> MyceliumSystem:
        cfg = self.config
        return MyceliumSystem.setup(
            num_devices=cfg.people,
            rng=derive_rng(cfg.master_seed, "setup"),
            profile=TEST,
            params=self._system_params(),
            schema=scaled_schema(),
            committee_size=cfg.committee_size,
            committee_threshold=cfg.committee_threshold,
            total_epsilon=cfg.total_epsilon,
            keep_genesis_secret=False,
        )

    def _build_faults(self) -> None:
        """The fault plan is pure data derived from the config plus the
        genesis committee — identical on every resume."""
        cfg = self.config
        assert self.system is not None
        if not (
            cfg.churn_fraction
            or cfg.committee_churn_members
            or cfg.committee_corrupt_members
            or cfg.coordinator_kills
        ):
            return
        corrupt_committee = tuple(
            m.device_id
            for m in self.system.committee.members[
                : cfg.committee_corrupt_members
            ]
        )
        plan = FaultPlan.generate(
            cfg.fault_seed,
            num_devices=cfg.people,
            churn_fraction=cfg.churn_fraction,
            churn_window_rounds=cfg.churn_window_rounds,
            horizon_rounds=256,
            corrupt_committee=corrupt_committee,
            coordinator_kills=cfg.coordinator_kills,
        )
        if cfg.committee_churn_members:
            targets = [
                m.device_id
                for m in self.system.committee.members[
                    : cfg.committee_churn_members
                ]
            ]
            extra = tuple(
                ChurnWindow(
                    device_id=d,
                    start_round=cfg.committee_churn_start,
                    end_round=(
                        cfg.committee_churn_start + cfg.committee_churn_rounds
                    ),
                )
                for d in targets
            )
            plan = dataclasses.replace(
                plan, churn_windows=plan.churn_windows + extra
            )
        self.injector = FaultInjector(plan)
        self.monitor = CommitteeHealthMonitor(self.injector)

    def _resolve_query(self, text: str):
        return CATALOG[text] if text in CATALOG else text

    # -- setup phase --------------------------------------------------------

    def _ensure_setup(self) -> None:
        """Genesis: run it (fresh) or replay + digest-check it (resume).

        Key material is deterministic in ``derive_rng(master, "setup")``
        and never journaled; the setup record holds only public facts.
        """
        self.system = self._build_system()
        self.graph = build_campaign_graph(
            self.config.people,
            self.config.degree,
            derive_rng(self.config.master_seed, "workload"),
        )
        self._build_faults()
        genesis = {
            "epoch": 0,
            "members": [
                m.device_id for m in self.system.committee.members
            ],
            "digest": serialize.committee_digest(self.system.committee),
            "reason": "genesis",
        }
        existing = self._existing.get(("setup",))
        if existing is None:
            data = {
                "public_key": self.system.public_key.fingerprint().hex(),
                "committee": genesis,
            }
            self._commit("setup", "setup", None, data)
        else:
            recorded = existing.data
            if (
                recorded["public_key"]
                != self.system.public_key.fingerprint().hex()
                or recorded["committee"]["digest"] != genesis["digest"]
            ):
                raise CampaignResumeError(
                    "replayed genesis ceremony does not match the journal "
                    "(master seed or code changed under a live campaign)"
                )
        self.epochs.append(genesis)

    # -- checkpointing ------------------------------------------------------

    def _write_checkpoint(self, queries_done: int) -> None:
        assert self.system is not None
        state = {
            "queries_done": queries_done,
            "clock_round": self.clock.round,
            "ledger": [
                [label, eps] for label, eps in self.system.budget.history
            ],
            "results": self.results,
            "epochs": self.epochs,
            "emergency_reshares": self.emergency_reshares,
            "quorum_wait_rounds": self.quorum_wait_rounds,
        }
        checkpoint_mod.write_checkpoint(
            self.directory, self._last_seq, state
        )

    def _apply_checkpoint(self) -> None:
        """Fast-forward from the newest valid checkpoint, if any.

        The checkpoint restores small state directly; the committee is
        *replayed* (re-dealt from derived randomness using the recorded
        public facts) and digest-checked, because shares are never on
        disk.  A corrupt checkpoint is skipped — full journal replay
        covers everything it would have.
        """
        found = checkpoint_mod.load_latest_checkpoint(
            self.directory, self._last_seq
        )
        if found is None:
            return
        _, state = found
        assert self.system is not None
        for epoch_fact in state["epochs"]:
            if epoch_fact["epoch"] == 0:
                continue
            self._replay_handoff(epoch_fact)
        self.clock.advance(state["clock_round"] - self.clock.round)
        for label, eps in state["ledger"]:
            self.system.budget.charge(eps, label)
        self.results = list(state["results"])
        self.epochs = [self.epochs[0]] + [
            dict(e) for e in state["epochs"] if e["epoch"] != 0
        ]
        self.emergency_reshares = state["emergency_reshares"]
        self.quorum_wait_rounds = state["quorum_wait_rounds"]
        for payload in self.results:
            self.system.query_log.append(
                serialize.metadata_from_json(payload["metadata"])
            )
        self._start_query = state["queries_done"]
        telemetry.count(
            "durability.resume.replayed", len(state["results"])
        )

    def _replay_handoff(self, fact: dict) -> None:
        """Re-derive one committed epoch from recorded public facts plus
        the derived deal randomness; digest-check the outcome."""
        assert self.system is not None
        committee = self.system.committee
        if committee.epoch + 1 != fact["epoch"]:
            raise CampaignResumeError(
                f"epoch replay out of order: at {committee.epoch}, "
                f"journal wants {fact['epoch']}"
            )
        deal_rng = derive_rng(
            self.config.master_seed, "epoch", fact["epoch"], "deal"
        )
        proposal = committee_mod.deal_rotation(
            committee,
            list(fact["members"]),
            self.config.committee_threshold,
            deal_rng,
            dealer_ids=list(fact["dealers"]),
        )
        new_committee = committee_mod.commit_rotation(committee, proposal)
        if serialize.committee_digest(new_committee) != fact["digest"]:
            raise CampaignResumeError(
                f"replayed epoch {fact['epoch']} commitment digest does "
                "not match the journal"
            )
        self.system.committee = new_committee

    # -- the run loop -------------------------------------------------------

    def run(self) -> CampaignResult:
        """Execute (or finish) the campaign; returns the released result.

        Raises :class:`~repro.errors.CoordinatorCrash` when a kill point
        fires — the journal is left resumable.
        """
        runtime = (
            self.runtime if self.runtime is not None else get_runtime_config()
        )
        self._active_shards = runtime.shards
        with telemetry.span(
            "campaign.run",
            queries=len(self.config.queries),
            resumed=self.resumed,
        ):
            with backends.use_backend(runtime.backend), \
                    TaskFabric.from_config(runtime) as fabric:
                self._active_fabric = fabric
                if self.resumed:
                    with telemetry.span("campaign.resume"):
                        self._ensure_setup()
                        self._apply_checkpoint()
                else:
                    self._ensure_setup()
                for query_index in range(
                    self._start_query, len(self.config.queries)
                ):
                    self._run_query(query_index, fabric)
                    if (
                        self.config.checkpoint_every
                        and (query_index + 1) % self.config.checkpoint_every
                        == 0
                        and query_index + 1 < len(self.config.queries)
                    ):
                        self._write_checkpoint(query_index + 1)
                return self._complete()

    def _complete(self) -> CampaignResult:
        result = CampaignResult(
            config=self.config,
            results=self.results,
            ledger=[
                [label, eps]
                for label, eps in (
                    self.system.budget.history if self.system else []
                )
            ],
            epochs=self.epochs,
            emergency_reshares=self.emergency_reshares,
            quorum_wait_rounds=self.quorum_wait_rounds,
            clock_rounds=self.clock.round,
        )
        existing = self._existing.get(("campaign-complete",))
        if existing is None:
            self._commit(
                "campaign-complete",
                "complete",
                None,
                {"digest": result.digest, "queries": len(self.results)},
            )
        elif existing.data["digest"] != result.digest:
            raise CampaignResumeError(
                "replayed campaign digest does not match the completion "
                "record"
            )
        (self.directory / RESULTS_NAME).write_text(
            serialize.canonical_json(result.to_json()), "utf-8"
        )
        return result

    # -- one query ----------------------------------------------------------

    def _run_query(self, query_index: int, fabric: TaskFabric) -> None:
        text, epsilon = self.config.queries[query_index]
        if ("query-start", query_index) not in self._existing:
            self._commit(
                "query-start",
                "start",
                query_index,
                {"query": query_index, "text": text, "epsilon": epsilon},
            )
        ctx: dict[str, Any] = {"text": text, "epsilon": epsilon}
        for phase in PHASES:
            record = self._existing.get(("phase", query_index, phase))
            with telemetry.span(
                "campaign.phase", query=query_index, phase=phase
            ):
                if record is not None:
                    self._restore_phase(query_index, phase, record.data, ctx)
                    telemetry.count("durability.resume.replayed")
                else:
                    data = self._run_phase(query_index, phase, ctx, fabric)
                    self._commit(
                        "phase",
                        phase,
                        query_index,
                        {"query": query_index, "phase": phase, **data},
                    )
        telemetry.count("durability.campaign.queries")

    def _run_phase(
        self,
        query_index: int,
        phase: str,
        ctx: dict[str, Any],
        fabric: TaskFabric,
    ) -> dict:
        handler = getattr(self, f"_phase_{phase}")
        return handler(query_index, ctx, fabric)

    def _restore_phase(
        self, query_index: int, phase: str, data: dict, ctx: dict[str, Any]
    ) -> None:
        handler = getattr(self, f"_restore_{phase}")
        handler(query_index, data, ctx)

    # -- phase: compile -----------------------------------------------------

    def _phase_compile(self, query_index, ctx, fabric) -> dict:
        assert self.system is not None
        plan = self.system.compile(self._resolve_query(ctx["text"]))
        ctx["plan"] = plan
        ctx["label"] = str(plan.query)
        return {
            "label": ctx["label"],
            "coefficients": plan.layout.total_coefficients,
        }

    def _restore_compile(self, query_index, data, ctx) -> None:
        self._phase_compile(query_index, ctx, None)
        if ctx["label"] != data["label"]:
            raise CampaignResumeError(
                f"query {query_index} recompiled to {ctx['label']!r}, "
                f"journal says {data['label']!r}"
            )

    # -- phase: charge ------------------------------------------------------

    def _phase_charge(self, query_index, ctx, fabric) -> dict:
        assert self.system is not None
        self.system.budget.charge(ctx["epsilon"], ctx["label"])
        return {"epsilon": ctx["epsilon"], "label": ctx["label"]}

    def _restore_charge(self, query_index, data, ctx) -> None:
        # Applied exactly once per durable record — the mutant the audit
        # self-test hunts applies it twice.
        assert self.system is not None
        self.system.budget.charge(data["epsilon"], data["label"])

    # -- phase: rounds ------------------------------------------------------

    def _phase_rounds(self, query_index, ctx, fabric) -> dict:
        assert self.system is not None
        schedule = build_schedule(
            ctx["plan"], self.system.params, reuse_paths=query_index > 0
        )
        crounds = schedule.total_crounds
        self.clock.advance(crounds)
        return {"crounds": crounds, "round": self.clock.round}

    def _restore_rounds(self, query_index, data, ctx) -> None:
        self.clock.advance(data["crounds"])
        if self.clock.round != data["round"]:
            raise CampaignResumeError(
                f"campaign clock diverged at query {query_index}: "
                f"{self.clock.round} != {data['round']}"
            )

    # -- phase: submit ------------------------------------------------------

    def _offline_devices(self) -> set[int]:
        if self.injector is None:
            return set()
        return {
            d
            for d in range(self.config.people)
            if not self.injector.device_online(d, self.clock.round)
        }

    def _phase_submit(self, query_index, ctx, fabric) -> dict:
        assert self.system is not None
        offline = self._offline_devices()
        rng = derive_rng(
            self.config.master_seed, "query", query_index, "submit"
        )
        submissions = self.system.submit_phase(
            ctx["plan"],
            self.graph,
            rng,
            fabric,
            offline=offline or None,
            offline_store=self.offline_store,
        )
        ctx["submissions"] = submissions
        return {
            "digest": serialize.submissions_digest(submissions),
            "count": len(submissions),
            "offline": sorted(offline),
        }

    def _restore_submit(self, query_index, data, ctx) -> None:
        # Submissions carry per-origin proofs — heavy, so they are
        # journaled by digest only.  If the aggregate record is already
        # durable we never need them again; otherwise re-execute the
        # seeded run and check the digest.
        if ("phase", query_index, "aggregate") in self._existing:
            ctx["submissions"] = None
            return
        replayed = self._phase_submit(query_index, ctx, self._active_fabric)
        if replayed["digest"] != data["digest"]:
            raise CampaignResumeError(
                f"query {query_index} submissions replayed to digest "
                f"{replayed['digest'][:12]}, journal says "
                f"{data['digest'][:12]}"
            )

    # -- phase: aggregate ---------------------------------------------------

    def _phase_aggregate(self, query_index, ctx, fabric) -> dict:
        assert self.system is not None
        aggregation = self.system.aggregate_phase(
            ctx["submissions"],
            fabric,
            self._active_shards,
            offline_store=self.offline_store,
        )
        ctx["aggregation"] = aggregation
        return {
            "ciphertext": serialize.ciphertext_to_json(
                aggregation.ciphertext
            ),
            "accepted": list(aggregation.accepted),
            "rejected": list(aggregation.rejected),
            "root": aggregation.summation_root.hex(),
            "verification_seconds": aggregation.verification_seconds,
            "proofs_verified": aggregation.proofs_verified,
        }

    def _restore_aggregate(self, query_index, data, ctx) -> None:
        from repro.core.aggregator import AggregationResult

        assert self.system is not None
        ctx["aggregation"] = AggregationResult(
            ciphertext=serialize.ciphertext_from_json(
                self.system.profile, data["ciphertext"]
            ),
            accepted=list(data["accepted"]),
            rejected=list(data["rejected"]),
            summation_root=bytes.fromhex(data["root"]),
            verification_seconds=data["verification_seconds"],
            proofs_verified=data["proofs_verified"],
        )

    # -- phase: decrypt -----------------------------------------------------

    def _await_quorum(self) -> tuple:
        """Ping until ``threshold`` members are live (§6.5: wait and
        retry), advancing the campaign clock one C-round per miss."""
        assert self.system is not None
        waited = 0
        report = self.monitor.ping(self.system.committee, self.clock.round)
        while not report.quorate:
            waited += 1
            if waited > QUORUM_WAIT_LIMIT:
                raise ProtocolError(
                    "no decryption quorum within "
                    f"{QUORUM_WAIT_LIMIT} C-rounds"
                )
            self.clock.advance(1)
            report = self.monitor.ping(
                self.system.committee, self.clock.round
            )
        if waited:
            telemetry.count("durability.monitor.quorum_wait_rounds", waited)
            self.quorum_wait_rounds += waited
        return report, waited

    def _phase_decrypt(self, query_index, ctx, fabric) -> dict:
        assert self.system is not None
        report, waited = self._await_quorum()
        rng = derive_rng(
            self.config.master_seed, "query", query_index, "decrypt"
        )
        flagged: set[int] = set()
        if (
            self.injector is not None
            and self.injector.plan.corrupt_committee
        ):
            coefficients, flagged = self.system.robust_decrypt_phase(
                ctx["plan"],
                ctx["aggregation"].ciphertext,
                rng,
                participating=list(report.live),
                corrupt=self.injector.corrupt_partial,
            )
        else:
            coefficients = self.system.decrypt_phase(
                ctx["plan"],
                ctx["aggregation"].ciphertext,
                rng,
                participating=list(report.live),
            )
        ctx["coefficients"] = coefficients
        return {
            "coefficients": coefficients,
            "participating": list(report.live),
            "flagged": sorted(flagged),
            "waited": waited,
            "round": self.clock.round,
        }

    def _restore_decrypt(self, query_index, data, ctx) -> None:
        self.clock.advance(data["waited"])
        self.quorum_wait_rounds += data["waited"]
        if self.clock.round != data["round"]:
            raise CampaignResumeError(
                f"clock diverged restoring decrypt of query {query_index}"
            )
        ctx["coefficients"] = list(data["coefficients"])

    # -- phase: noise -------------------------------------------------------

    def _phase_noise(self, query_index, ctx, fabric) -> dict:
        assert self.system is not None
        report = sensitivity_mod.analyze(ctx["plan"])
        scale = report.sensitivity / ctx["epsilon"]
        noise = self.system.compute_noise(
            ctx["plan"], ctx["coefficients"], scale
        )
        ctx["noise"] = noise
        ctx["scale"] = scale
        ctx["sensitivity"] = report.sensitivity
        return {
            "scale": scale,
            "sensitivity": report.sensitivity,
            "noise": noise,
        }

    def _restore_noise(self, query_index, data, ctx) -> None:
        ctx["noise"] = [list(group) for group in data["noise"]]
        ctx["scale"] = data["scale"]
        ctx["sensitivity"] = data["sensitivity"]

    # -- phase: release -----------------------------------------------------

    def _phase_release(self, query_index, ctx, fabric) -> dict:
        assert self.system is not None
        aggregation = ctx["aggregation"]
        metadata = QueryMetadata(
            query_text=ctx["label"],
            epsilon=ctx["epsilon"],
            sensitivity=ctx["sensitivity"],
            noise_scale=ctx["scale"],
            contributing_origins=aggregation.num_accepted,
            rejected_origins=len(aggregation.rejected),
            committee_epoch=self.system.committee.epoch,
            verification_seconds=aggregation.verification_seconds,
        )
        result = self.system.release_with_noise(
            ctx["plan"], ctx["coefficients"], ctx["noise"], metadata
        )
        payload = serialize.result_to_json(result)
        self.results.append(payload)
        self.system.query_log.append(metadata)
        return {"result": payload}

    def _restore_release(self, query_index, data, ctx) -> None:
        assert self.system is not None
        payload = data["result"]
        self.results.append(payload)
        self.system.query_log.append(
            serialize.metadata_from_json(payload["metadata"])
        )

    # -- phase: handoff -----------------------------------------------------

    def _phase_handoff(self, query_index, ctx, fabric) -> dict:
        assert self.system is not None
        committee = self.system.committee
        report = self.monitor.ping(committee, self.clock.round)
        scheduled = (
            self.config.rotate_every > 0
            and (query_index + 1) % self.config.rotate_every == 0
        )
        emergency = report.needs_reshare
        if not scheduled and not emergency:
            return {"rotated": False}
        epoch_to = committee.epoch + 1
        reason = "emergency" if emergency else "scheduled"

        started = self._existing.get(("handoff-start", query_index))
        if started is not None and started.data["epoch_to"] == epoch_to:
            # Crash mid-redistribution: retry with the recorded intent —
            # the old committee is still authoritative.
            intent = started.data
            new_members = list(intent["members"])
            dealers = list(intent["dealers"])
            reason = intent["reason"]
        else:
            if emergency:
                dealers = list(report.live)
                candidates = self.monitor.live_devices(
                    self.config.people, self.clock.round
                )
            else:
                dealers = [m.device_id for m in committee.members]
                candidates = list(range(self.config.people))
            waited = 0
            while (
                len(dealers) < committee.threshold
                or len(candidates) < self.config.committee_size
            ):
                waited += 1
                if waited > QUORUM_WAIT_LIMIT:
                    raise ProtocolError(
                        "no dealer quorum for the handoff within "
                        f"{QUORUM_WAIT_LIMIT} C-rounds"
                    )
                self.clock.advance(1)
                report = self.monitor.ping(committee, self.clock.round)
                dealers = list(report.live)
                candidates = self.monitor.live_devices(
                    self.config.people, self.clock.round
                )
            if waited:
                telemetry.count(
                    "durability.monitor.quorum_wait_rounds", waited
                )
                self.quorum_wait_rounds += waited
            new_members = committee_mod.elect_committee(
                candidates,
                self.config.committee_size,
                derive_rng(
                    self.config.master_seed, "epoch", epoch_to, "elect"
                ),
            )
            self._commit(
                "handoff-start",
                "handoff-start",
                query_index,
                {
                    "query": query_index,
                    "epoch_from": committee.epoch,
                    "epoch_to": epoch_to,
                    "members": new_members,
                    "dealers": dealers,
                    "reason": reason,
                    "round": self.clock.round,
                },
            )

        deal_rng = derive_rng(
            self.config.master_seed, "epoch", epoch_to, "deal"
        )
        proposal = committee_mod.deal_rotation(
            committee,
            new_members,
            self.config.committee_threshold,
            deal_rng,
            dealer_ids=dealers,
        )
        try:
            new_committee = committee_mod.commit_rotation(
                committee, proposal
            )
        except SecretSharingError as exc:
            # Not enough dealers survived agreement: the handoff aborts
            # atomically; the old committee keeps the key.
            return {
                "rotated": False,
                "aborted": str(exc),
                "reason": reason,
            }
        self.system.committee = new_committee
        fact = {
            "epoch": new_committee.epoch,
            "members": list(new_members),
            "dealers": list(dealers),
            "digest": serialize.committee_digest(new_committee),
            "reason": reason,
        }
        self.epochs.append(fact)
        telemetry.count("durability.handoffs.committed")
        if reason == "emergency":
            self.emergency_reshares += 1
            telemetry.count("durability.reshares.emergency")
        return {"rotated": True, "round": self.clock.round, **fact}

    def _restore_handoff(self, query_index, data, ctx) -> None:
        if not data["rotated"]:
            return
        self.clock.advance(data["round"] - self.clock.round)
        fact = {
            "epoch": data["epoch"],
            "members": list(data["members"]),
            "dealers": list(data["dealers"]),
            "digest": data["digest"],
            "reason": data["reason"],
        }
        self._replay_handoff(fact)
        self.epochs.append(fact)
        if data["reason"] == "emergency":
            self.emergency_reshares += 1

def run_campaign(
    config: CampaignConfig,
    directory: str | Path,
    runtime: RuntimeConfig | None = None,
    kill: KillSpec | None = None,
    fsync: bool = True,
    offline_store=None,
) -> CampaignResult:
    """Convenience one-shot: start and run a fresh campaign."""
    return CampaignRunner.start(
        config, directory, runtime=runtime, kill=kill, fsync=fsync,
        offline_store=offline_store,
    ).run()


def resume_campaign(
    directory: str | Path,
    runtime: RuntimeConfig | None = None,
    kill: KillSpec | None = None,
    fsync: bool = True,
    offline_store=None,
) -> CampaignResult:
    """Convenience one-shot: resume a crashed campaign to completion."""
    return CampaignRunner.resume(
        directory, runtime=runtime, kill=kill, fsync=fsync,
        offline_store=offline_store,
    ).run()
