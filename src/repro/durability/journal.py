"""The write-ahead journal: append-only JSONL, checksummed, sequenced.

One record per line::

    {"seq": 17, "type": "phase", "data": {...}, "check": "ab12..."}

``check`` is the sha256 of the canonical JSON of ``(seq, type, data)``
under a fixed domain string, so a flipped bit anywhere in a record is
detected on load.  Sequence numbers are the 0,1,2,... chain; a
duplicate or gap means two writers or a hand-edited file, and the
journal refuses to replay rather than guess.

Crash semantics (the redo-log rule):

* a crash *before* ``append`` returns leaves at worst a torn final
  line — :func:`Journal.load` classifies that as
  :class:`~repro.errors.JournalTruncatedError` and the caller trims it
  with ``load(..., drop_torn_tail=True)``, re-running the phase;
* a crash *after* ``append`` returns means the record is durable
  (``flush`` + ``fsync`` before returning) and resume restores the
  phase's effects from the record instead of re-running it.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro import telemetry
from repro.errors import (
    JournalCorruptError,
    JournalEmptyError,
    JournalSequenceError,
    JournalTruncatedError,
)

_DOMAIN = b"mycelium.journal.v1"

#: File name inside a campaign directory.
JOURNAL_NAME = "journal.jsonl"


def canonical_json(obj: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace, exact floats."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def _checksum(seq: int, record_type: str, data: object) -> str:
    h = hashlib.sha256()
    h.update(_DOMAIN)
    h.update(canonical_json([seq, record_type, data]).encode("utf-8"))
    return h.hexdigest()


@dataclass(frozen=True)
class JournalRecord:
    """One durable entry."""

    seq: int
    type: str
    data: dict

    def line(self) -> str:
        return canonical_json(
            {
                "seq": self.seq,
                "type": self.type,
                "data": self.data,
                "check": _checksum(self.seq, self.type, self.data),
            }
        )


def _parse_line(line: str, index: int, is_last: bool) -> JournalRecord:
    try:
        raw = json.loads(line)
        seq = raw["seq"]
        record_type = raw["type"]
        data = raw["data"]
        check = raw["check"]
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        if is_last:
            raise JournalTruncatedError(
                f"journal line {index} is incomplete (torn tail): {exc}"
            ) from exc
        raise JournalCorruptError(
            f"journal line {index} is unparseable mid-file: {exc}"
        ) from exc
    if _checksum(seq, record_type, data) != check:
        raise JournalCorruptError(
            f"journal line {index} (seq {seq}) fails its checksum"
        )
    return JournalRecord(seq=seq, type=record_type, data=data)


def load_records(
    directory: str | Path, drop_torn_tail: bool = False
) -> list[JournalRecord]:
    """Read and validate every record in a campaign directory.

    Raises the typed :class:`~repro.errors.JournalError` subclasses on
    any defect.  ``drop_torn_tail=True`` forgives exactly one torn
    final line (the legitimate crash-during-append case) and returns
    the records before it.
    """
    path = Path(directory) / JOURNAL_NAME
    if not path.exists():
        raise JournalEmptyError(f"no journal at {path}")
    lines = [
        line for line in path.read_text("utf-8").splitlines() if line.strip()
    ]
    if not lines:
        raise JournalEmptyError(f"journal at {path} has no records")
    records: list[JournalRecord] = []
    for index, line in enumerate(lines):
        try:
            record = _parse_line(line, index, is_last=index == len(lines) - 1)
        except JournalTruncatedError:
            if drop_torn_tail and records:
                break
            raise
        expected = index
        if any(record.seq == r.seq for r in records):
            raise JournalSequenceError(
                f"duplicate sequence number {record.seq} at line {index}"
            )
        if record.seq != expected:
            raise JournalSequenceError(
                f"sequence gap: expected {expected}, found {record.seq} "
                f"at line {index}"
            )
        records.append(record)
    return records


class Journal:
    """Append handle over a campaign directory's journal file."""

    def __init__(self, directory: str | Path, fsync: bool = True):
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_NAME
        self.fsync = fsync
        self._next_seq = 0

    @classmethod
    def create(cls, directory: str | Path, fsync: bool = True) -> Journal:
        """Start a fresh journal (the directory may not contain one)."""
        journal = cls(directory, fsync=fsync)
        journal.directory.mkdir(parents=True, exist_ok=True)
        if journal.path.exists():
            raise JournalCorruptError(
                f"refusing to overwrite existing journal at {journal.path}"
            )
        journal.path.touch()
        return journal

    @classmethod
    def resume(
        cls, directory: str | Path, fsync: bool = True
    ) -> tuple[Journal, list[JournalRecord]]:
        """Validate the existing journal and position for appends.

        A torn final line (crash during append) is trimmed from the
        file — the interrupted phase simply re-runs; any other defect
        raises.
        """
        records = load_records(directory, drop_torn_tail=True)
        journal = cls(directory, fsync=fsync)
        journal._next_seq = len(records)
        # Physically trim a torn tail so future appends extend a clean
        # prefix.
        content = "".join(r.line() + "\n" for r in records)
        journal.path.write_text(content, "utf-8")
        return journal, records

    def append(self, record_type: str, data: dict) -> JournalRecord:
        """Durably add one record; returns once it is on disk."""
        record = JournalRecord(
            seq=self._next_seq, type=record_type, data=data
        )
        line = record.line() + "\n"
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
                telemetry.count("durability.journal.fsyncs")
        self._next_seq += 1
        telemetry.count("durability.journal.appends")
        telemetry.count("durability.journal.bytes", len(line))
        return record
