"""Durable campaign runtime: write-ahead journal + crash/resume.

Mycelium's deployment story (§4.2, §6.2) is a long-lived service: one
genesis keygen, then an open-ended stream of queries with the
decryption key handed from committee to committee via VSR.  This
package makes that lifecycle survive coordinator crashes:

* :mod:`repro.durability.journal` — an append-only JSONL write-ahead
  journal with per-record checksums and monotonic sequence numbers;
* :mod:`repro.durability.serialize` — canonical JSON forms and digests
  for the values that cross phase boundaries (ciphertexts, results,
  committee commitments);
* :mod:`repro.durability.checkpoint` — periodic sidecar snapshots that
  bound replay work on resume;
* :mod:`repro.durability.monitor` — committee liveness pings through
  the fault injector, triggering emergency resharing;
* :mod:`repro.durability.campaign` — the campaign runner: a seeded
  multi-query workload across committee epochs, killable at any phase
  boundary and resumable bit-identically
  (``python -m repro campaign --resume <dir>``).

Recovery model (docs/RESILIENCE.md has the full state machine): every
phase is *compute → append+fsync → continue*.  Secrets (the BGV key,
committee shares) are never journaled — they are re-derived on resume
by replaying the seeded ceremonies (``runtime/seeding.py`` domain
separation) and digest-checked against the journal.
"""

from repro.durability.campaign import (
    PHASES,
    CampaignConfig,
    CampaignResult,
    CampaignRunner,
    KillSpec,
)
from repro.durability.journal import Journal, JournalRecord
from repro.durability.monitor import CommitteeHealthMonitor

__all__ = [
    "PHASES",
    "CampaignConfig",
    "CampaignResult",
    "CampaignRunner",
    "CommitteeHealthMonitor",
    "Journal",
    "JournalRecord",
    "KillSpec",
]
