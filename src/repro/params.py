"""System-wide parameter sets.

Two kinds of parameters live here:

* :class:`BGVProfile` — ring/modulus choices for the BGV cryptosystem.
  ``PAPER`` matches Section 5 of the paper (N = 32768, 550-bit prime
  ciphertext modulus, plaintext modulus 2^30); ``TEST`` and ``SMALL`` are
  reduced rings for fast unit and integration testing.

* :class:`SystemParameters` — the deployment parameters of Figure 4
  (number of devices, onion hops, replicas, forwarder fraction, committee
  size, degree bound).

Primes are generated lazily and cached, because finding a 550-bit
NTT-friendly prime takes a moment and most callers never touch the paper
profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

from repro.crypto.modmath import ntt_prime
from repro.crypto.polyring import RingParams
from repro.errors import ParameterError


@dataclass(frozen=True)
class BGVProfile:
    """A named BGV parameter set.

    Attributes:
        name: profile identifier.
        n: ring degree (power of two); also the number of histogram bins a
            single ciphertext can carry (§4.1).
        t: plaintext modulus; coefficient counts aggregate modulo t, so
            t = 2^30 supports "bin"-aggregating over a billion values.
        q_bits: size of the prime ciphertext modulus.
        error_bound: bound on fresh-encryption error coefficients (a
            bounded-uniform distribution standing in for the discrete
            Gaussian).
        relin_base_bits: decomposition base (log2) for relinearization keys.
        calibrated_multiplications: if set, overrides the analytically
            derived multiplication budget.  The PAPER profile pins this to
            36 so the generality experiment (§6.2) reproduces the paper's
            finding that BGV supports "dozens" of multiplications while Q1
            needs d^2 = 100; the paper's own (mod-switching) noise budget
            cannot be derived from the published parameters alone, so this
            constant is a documented calibration, not a measurement.
    """

    name: str
    n: int
    t: int
    q_bits: int
    error_bound: int = 4
    relin_base_bits: int = 32
    calibrated_multiplications: int | None = None

    def __post_init__(self) -> None:
        if self.n < 2 or self.n & (self.n - 1):
            raise ParameterError("ring degree must be a power of two")
        if self.t < 2:
            raise ParameterError("plaintext modulus must be >= 2")
        if self.q_bits <= self.t.bit_length():
            raise ParameterError("ciphertext modulus must exceed plaintext modulus")

    @property
    def q(self) -> int:
        """The prime ciphertext modulus (generated lazily, cached)."""
        return _profile_modulus(self.n, self.t, self.q_bits)

    @property
    def ring(self) -> RingParams:
        return RingParams(n=self.n, q=self.q)

    @property
    def plaintext_ring(self) -> RingParams:
        return RingParams(n=self.n, q=self.t)

    # -- noise-budget accounting (see repro.crypto.noise for the model) ----

    @property
    def fresh_noise_bits(self) -> float:
        """Worst-case bits of fresh-encryption noise, || e*u + e0 - e1*s ||."""
        bound = self.error_bound * (2 * self.n + 1)
        return math.log2(bound)

    @property
    def per_multiplication_bits(self) -> float:
        """Worst-case noise-bit growth when multiplying by a fresh
        ciphertext with monomial plaintext: the dominant term is
        t * v * v_fresh, a negacyclic product of n-coefficient vectors."""
        return self.fresh_noise_bits + math.log2(self.t) + math.log2(self.n) + 1

    @property
    def addition_headroom_bits(self) -> float:
        """Bits reserved for global aggregation over up to ~2^31 devices."""
        return 32.0

    @property
    def max_multiplications(self) -> int:
        """How many fresh-ciphertext multiplications a query may perform
        before decryption correctness is at risk.

        Derived from the worst-case single-modulus noise recurrence unless
        the profile carries a calibration (see class docstring).
        """
        if self.calibrated_multiplications is not None:
            return self.calibrated_multiplications
        usable = (
            self.q_bits
            - 1
            - math.log2(self.t)
            - self.fresh_noise_bits
            - self.addition_headroom_bits
        )
        return max(0, int(usable // self.per_multiplication_bits))

    @property
    def ciphertext_bytes(self) -> int:
        """Size of a fresh (degree-1) ciphertext: two ring elements."""
        return 2 * self.n * ((self.q_bits + 7) // 8)


@lru_cache(maxsize=16)
def _profile_modulus(n: int, t: int, q_bits: int) -> int:
    # q ≡ 1 (mod 2n) enables the negacyclic NTT; q must also be coprime
    # with t, which holds automatically since q is an odd prime > t.
    q = ntt_prime(q_bits, 2 * n)
    if q % t == 0:
        raise ParameterError("ciphertext modulus collides with plaintext modulus")
    return q


#: Tiny ring for unit tests and the encrypted-engine integration tests.
TEST = BGVProfile(name="test", n=64, t=2**10, q_bits=512, error_bound=2)

#: Mid-size ring for heavier integration tests and micro-benchmarks.
SMALL = BGVProfile(name="small", n=1024, t=2**16, q_bits=900, error_bound=4)

#: The paper's Section 5 parameters: >128-bit security, 1-hop queries over
#: a billion users, values up to 30 bits.
PAPER = BGVProfile(
    name="paper",
    n=32768,
    t=2**30,
    q_bits=550,
    error_bound=8,
    calibrated_multiplications=36,
)

PROFILES = {p.name: p for p in (TEST, SMALL, PAPER)}


@dataclass(frozen=True)
class SystemParameters:
    """Deployment parameters, defaulting to Figure 4 of the paper.

    Attributes:
        num_devices: N, the number of participating devices.
        hops: k, onion-routing path length.
        replicas: r, copies of each message sent over distinct paths.
        forwarder_fraction: f, fraction of devices eligible as forwarders.
        committee_size: c, devices holding shares of the decryption key.
        degree_bound: d, upper bound on vertex degree.
        pseudonyms_per_device: P, bound on valid pseudonyms per device.
        malicious_fraction: assumed fraction of Byzantine devices (MC says
            1-2%).
        churn_fraction: fraction of devices offline in any C-round.
        cround_hours: wall-clock length of one communication round.
    """

    num_devices: int = 1_100_000
    hops: int = 3
    replicas: int = 2
    forwarder_fraction: float = 0.1
    committee_size: int = 10
    degree_bound: int = 10
    pseudonyms_per_device: int = 4
    malicious_fraction: float = 0.02
    churn_fraction: float = 0.02
    cround_hours: float = 1.0

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ParameterError("need at least one device")
        if self.hops < 1:
            raise ParameterError("onion paths need at least one hop")
        if self.replicas < 1:
            raise ParameterError("need at least one replica per message")
        if not 0 < self.forwarder_fraction <= 1:
            raise ParameterError("forwarder fraction must be in (0, 1]")
        if not 0 <= self.malicious_fraction < 1:
            raise ParameterError("malicious fraction must be in [0, 1)")
        if not 0 <= self.churn_fraction < 1:
            raise ParameterError("churn fraction must be in [0, 1)")
        if self.degree_bound < 1:
            raise ParameterError("degree bound must be >= 1")

    @property
    def batch_size(self) -> int:
        """Expected messages mixed per forwarder per C-round, b = r*d/f."""
        return int(self.replicas * self.degree_bound / self.forwarder_fraction)

    @property
    def telescoping_crounds(self) -> int:
        """C-rounds needed for path setup: k^2 + 2k (§3.4)."""
        return self.hops**2 + 2 * self.hops

    @property
    def forwarding_crounds(self) -> int:
        """C-rounds per query for forwarding: 2k + 2 (query + response)."""
        return 2 * self.hops + 2

    @property
    def node_failure_rate(self) -> float:
        """Combined malice + churn probability for a forwarder."""
        return min(1.0, self.malicious_fraction + self.churn_fraction)


#: Figure 4 defaults.
DEFAULT_SYSTEM = SystemParameters()
