"""Offline/online phase split: precomputed query-independent crypto.

The online hot path consumes artifacts this package materializes ahead
of time — per-origin encryption-randomness pools, per-device dummy-onion
byte streams, prepared relinearization key pieces, and warmed NTT
context tables — all derived from seeds along stable label chains so the
pooled path is bit-identical to the inline path.

Import layering: :mod:`repro.offline.pools` and
:mod:`repro.offline.store` sit *below* the engine (the engine imports
them), while :mod:`repro.offline.precompute` sits above the durability
layer; import precompute directly to avoid cycles.
"""

from repro.offline.pools import (
    DUMMY_BLOCK_BYTES,
    DummyStream,
    EncryptionPool,
    LeafRandomnessSource,
    dummy_block,
    leaf_randomness,
    prepared_leaf_randomness,
)
from repro.offline.store import (
    POOL_LOW_WATER,
    OfflineStore,
    campaign_keys,
    campaign_public_key,
    submission_seed,
)

__all__ = [
    "DUMMY_BLOCK_BYTES",
    "DummyStream",
    "EncryptionPool",
    "LeafRandomnessSource",
    "OfflineStore",
    "POOL_LOW_WATER",
    "campaign_keys",
    "campaign_public_key",
    "dummy_block",
    "leaf_randomness",
    "prepared_leaf_randomness",
    "submission_seed",
]
