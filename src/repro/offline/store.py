"""The in-memory handle that carries precomputed artifacts into a run.

An :class:`OfflineStore` is what the online phase consumes: per-origin
:class:`~repro.offline.pools.EncryptionPool` instances keyed by the
submission seed they were derived for, per-device
:class:`~repro.offline.pools.DummyStream` byte supplies, and a
:class:`~repro.crypto.bgv.PreparedRelinKeySet` wrapping the query
relinearization key.  A store is optional everywhere it is accepted —
``None`` means the inline path, and by the pool derivation contract the
two paths produce bit-identical results.
"""

from __future__ import annotations

from repro import telemetry
from repro.crypto import bgv
from repro.offline.pools import DummyStream, EncryptionPool
from repro.runtime.seeding import derive_rng

#: Pools at or below this many unconsumed entries count as "low" when a
#: refill pass inspects the store (``offline.pool.low``).
POOL_LOW_WATER = 2


def campaign_public_key(
    master_seed: int, profile=None
) -> bgv.PublicKey:
    """The BGV public key a campaign seeded with ``master_seed`` builds.

    ``MyceliumSystem.setup`` draws ``bgv.keygen`` *first* from the setup
    RNG (``derive_rng(master_seed, "setup")`` in the campaign runner),
    so the key is predictable without building the rest of the system —
    which is what lets the service scheduler mask-prepare pools for a
    round before that round's campaign exists.  Pinned by
    ``tests/offline/test_offline.py``.
    """
    if profile is None:
        from repro.params import TEST

        profile = TEST
    _, public = bgv.keygen(profile, derive_rng(master_seed, "setup"))
    return public


def campaign_keys(
    master_seed: int, max_relin_power: int, profile=None
) -> tuple[bgv.PublicKey, bgv.RelinKeySet]:
    """Public key *and* relinearization keys a campaign will build.

    ``MyceliumSystem.setup`` draws ``bgv.keygen`` then
    ``bgv.make_relin_keys`` back-to-back from the setup RNG, so both are
    predictable from the campaign master seed.  Relin keys are generated
    in increasing power order, which makes each power's key pieces
    *prefix-stable*: the key for power ``p`` is bit-identical for any
    ``max_relin_power >= p``.
    """
    if profile is None:
        from repro.params import TEST

        profile = TEST
    rng = derive_rng(master_seed, "setup")
    secret, public = bgv.keygen(profile, rng)
    relin = bgv.make_relin_keys(secret, max_relin_power, rng)
    return public, relin


def submission_seed(master_seed: int, query_index: int) -> int:
    """The leaf-encryption master seed a campaign query will draw.

    ``CampaignRunner._phase_submit`` derives the submit-phase RNG as
    ``derive_rng(master_seed, "query", query_index, "submit")`` and the
    encrypted executor's first draw from it becomes the per-run master
    seed for origin derivation chains.  Mirroring both draws here lets
    the offline phase pool randomness for a query *before* the online
    phase runs it.  Pinned by ``tests/offline/test_offline.py``.
    """
    return derive_rng(
        master_seed, "query", query_index, "submit"
    ).getrandbits(64)


class OfflineStore:
    """Precomputed artifacts for one or more upcoming runs."""

    def __init__(self, public_key: bgv.PublicKey | None = None):
        self.public_key = public_key
        self._encryption: dict[tuple[int, int], EncryptionPool] = {}
        self._dummy: dict[int, DummyStream] = {}
        self._relin: bgv.PreparedRelinKeySet | None = None

    # -- relinearization ----------------------------------------------------

    def relin_for(self, keys):
        """A prepared wrapper of ``keys`` (cached; identity-checked).

        Accepts ``None`` (returns ``None``) and passes through a set
        that is already prepared.
        """
        if keys is None:
            return None
        if isinstance(keys, bgv.PreparedRelinKeySet):
            return keys
        if self._relin is None or self._relin.rlk is not keys:
            self._relin = bgv.PreparedRelinKeySet(keys)
            # Preparing the pieces is the offline phase's job; warming
            # here keeps the first online relinearization transform-free
            # on the backend that is active when the store is populated.
            self._relin.warm()
        return self._relin

    # -- leaf-encryption pools ----------------------------------------------

    def add_encryption_pool(self, pool: EncryptionPool) -> None:
        self._encryption[(pool.master_seed, pool.origin)] = pool

    def encryption_pool(
        self, master_seed: int, origin: int
    ) -> EncryptionPool | None:
        return self._encryption.get((master_seed, origin))

    def encryption_pools(self) -> list[EncryptionPool]:
        return list(self._encryption.values())

    def ensure_encryption_pools(
        self,
        public_key: bgv.PublicKey,
        master_seed: int,
        origins,
        entries: int,
    ) -> int:
        """Fill (or top up) one pool per origin for ``master_seed``.

        Returns the number of entries derived — zero when every pool is
        already at ``entries``, so a between-round refill pass is cheap
        when nothing drained.
        """
        derived = 0
        for origin in origins:
            pool = self._encryption.get((master_seed, origin))
            if pool is None:
                pool = EncryptionPool(public_key, master_seed, origin)
                self._encryption[(master_seed, origin)] = pool
            before = pool.level
            pool.extend_to(entries)
            derived += pool.level - before
        return derived

    # -- dummy streams -------------------------------------------------------

    def add_dummy_stream(self, stream: DummyStream) -> None:
        self._dummy[stream.device_id] = stream

    def dummy_stream(self, device_id: int) -> DummyStream | None:
        return self._dummy.get(device_id)

    def retire(self, master_seed: int) -> None:
        """Drop pools keyed to a submission seed that has been consumed.

        Runs consume pool copies inside fabric workers, so the parent
        store never sees draws; a seed is single-use (one run), so the
        owner retires its pools once that run completes.
        """
        for key in [k for k in self._encryption if k[0] == master_seed]:
            del self._encryption[key]

    # -- observability -------------------------------------------------------

    def observe_levels(self) -> int:
        """Record materialized pool levels; returns how many are low.

        Meant to run *before* a refill pass: pools at or below the low
        water mark count toward ``offline.pool.low`` and the caller is
        expected to block on :meth:`ensure_encryption_pools` before
        consuming them.
        """
        low = 0
        for pool in self._encryption.values():
            telemetry.observe("offline.pool.level", float(pool.level))
            if pool.level <= POOL_LOW_WATER:
                low += 1
                telemetry.count("offline.pool.low")
        return low
