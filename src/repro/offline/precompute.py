"""The journaled offline phase: materialize query-independent artifacts.

A precompute run walks a deterministic list of *units* — NTT context
tables, relinearization key pieces, per-``(query, origin)`` encryption
pools, per-device dummy streams — writing each artifact to disk and
journaling its digest through :class:`repro.durability.journal.Journal`.
A killed run resumes bit-identically: completed units reload from their
artifacts (verified against the journaled digest) or re-derive and
verify, and only the remaining units run.  The same runner doubles as
the service scheduler's between-round refill, because re-running over an
already-complete journal is a cheap verify pass.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

from repro import telemetry
from repro.crypto import bgv, ntt
from repro.crypto.polyring import RingElement
from repro.durability.journal import Journal, load_records
from repro.errors import CoordinatorCrash, DurabilityError
from repro.offline.pools import DUMMY_BLOCK_BYTES, DummyStream, EncryptionPool
from repro.offline.store import OfflineStore, submission_seed
from repro.params import PROFILES

START_RECORD = "precompute-start"
UNIT_RECORD = "precompute-unit"
COMPLETE_RECORD = "precompute-complete"


@dataclass(frozen=True)
class OfflineConfig:
    """What one offline phase is asked to materialize.

    ``master_seed`` is the *campaign* master seed: per-query submission
    seeds derive from it exactly as the online phase will derive them
    (:func:`repro.offline.store.submission_seed`).
    """

    master_seed: int
    num_queries: int
    origins: tuple[int, ...]
    entries: int
    profile: str = "test"
    dummy_seed: int | None = None
    dummy_devices: tuple[int, ...] = ()
    dummy_blocks: int = 1
    relin_powers: tuple[int, ...] = ()

    def to_json(self) -> dict:
        return {
            "master_seed": self.master_seed,
            "num_queries": self.num_queries,
            "origins": list(self.origins),
            "entries": self.entries,
            "profile": self.profile,
            "dummy_seed": self.dummy_seed,
            "dummy_devices": list(self.dummy_devices),
            "dummy_blocks": self.dummy_blocks,
            "relin_powers": list(self.relin_powers),
        }

    @classmethod
    def from_json(cls, data: dict) -> "OfflineConfig":
        return cls(
            master_seed=data["master_seed"],
            num_queries=data["num_queries"],
            origins=tuple(data["origins"]),
            entries=data["entries"],
            profile=data.get("profile", "test"),
            dummy_seed=data.get("dummy_seed"),
            dummy_devices=tuple(data.get("dummy_devices", ())),
            dummy_blocks=data.get("dummy_blocks", 1),
            relin_powers=tuple(data.get("relin_powers", ())),
        )


# ---------------------------------------------------------------------------
# Binary artifact codec
# ---------------------------------------------------------------------------


def _ring_width(profile) -> int:
    return (profile.q.bit_length() + 7) // 8


def _ring_bytes(element: RingElement, width: int) -> bytes:
    return b"".join(c.to_bytes(width, "big") for c in element.coeffs)


def _ring_from_bytes(params, raw: bytes, width: int) -> RingElement:
    coeffs = [
        int.from_bytes(raw[i * width : (i + 1) * width], "big")
        for i in range(params.n)
    ]
    return RingElement.from_coeffs(params, coeffs)


def encode_pool(pool: EncryptionPool) -> bytes:
    """Serialize a pool's entries: per entry the five ring elements
    (u, e0, e1, mask0, mask1), fixed-width big-endian coefficients."""
    profile = pool.public_key.profile
    width = _ring_width(profile)
    out = bytearray()
    for entry in pool.entries:
        for element in (entry.u, entry.e0, entry.e1, entry.mask0, entry.mask1):
            out += _ring_bytes(element, width)
    return bytes(out)


def decode_pool(
    public_key: bgv.PublicKey, master_seed: int, origin: int, raw: bytes
) -> EncryptionPool:
    profile = public_key.profile
    width = _ring_width(profile)
    ring = profile.ring
    entry_bytes = 5 * profile.n * width
    if len(raw) % entry_bytes:
        raise DurabilityError("truncated encryption-pool artifact")
    entries = []
    for base in range(0, len(raw), entry_bytes):
        elements = [
            _ring_from_bytes(
                ring,
                raw[base + k * profile.n * width : base + (k + 1) * profile.n * width],
                width,
            )
            for k in range(5)
        ]
        entries.append(
            bgv.PreparedRandomness(
                u=elements[0],
                e0=elements[1],
                e1=elements[2],
                mask0=elements[3],
                mask1=elements[4],
            )
        )
    return EncryptionPool(public_key, master_seed, origin, tuple(entries))


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


@dataclass
class _Unit:
    """One journaled step: a label, a derivation, and its artifact file."""

    label: str
    filename: str | None  # None: no artifact, digest-only


class PrecomputeRunner:
    """Runs (or resumes) one offline phase against a journal directory."""

    def __init__(
        self,
        config: OfflineConfig,
        directory,
        journal: Journal,
        completed: dict[str, dict],
        *,
        public_key: bgv.PublicKey,
        relin_keys: bgv.RelinKeySet | None = None,
        kill: str | None = None,
    ):
        self.config = config
        self.directory = Path(directory)
        self.journal = journal
        self.completed = completed
        self.public_key = public_key
        self.relin_keys = relin_keys
        self.kill = kill
        self.store = OfflineStore(public_key)

    # -- construction --------------------------------------------------------

    @classmethod
    def start(
        cls,
        config: OfflineConfig,
        directory,
        *,
        public_key: bgv.PublicKey,
        relin_keys: bgv.RelinKeySet | None = None,
        kill: str | None = None,
        fsync: bool = True,
    ) -> "PrecomputeRunner":
        journal = Journal.create(directory, fsync=fsync)
        journal.append(START_RECORD, {"version": 1, "config": config.to_json()})
        return cls(
            config,
            directory,
            journal,
            {},
            public_key=public_key,
            relin_keys=relin_keys,
            kill=kill,
        )

    @classmethod
    def resume(
        cls,
        directory,
        *,
        public_key: bgv.PublicKey,
        relin_keys: bgv.RelinKeySet | None = None,
        kill: str | None = None,
    ) -> "PrecomputeRunner":
        journal, records = Journal.resume(directory)
        if not records or records[0].type != START_RECORD:
            raise DurabilityError(
                "journal does not begin with a precompute-start record"
            )
        config = OfflineConfig.from_json(records[0].data["config"])
        completed = {
            r.data["unit"]: r.data for r in records if r.type == UNIT_RECORD
        }
        return cls(
            config,
            directory,
            journal,
            completed,
            public_key=public_key,
            relin_keys=relin_keys,
            kill=kill,
        )

    # -- kill points ---------------------------------------------------------

    def _maybe_crash(self, point: str, label: str) -> None:
        if self.kill == f"{point}:{label}":
            raise CoordinatorCrash(f"precompute {point} {label}")

    # -- unit enumeration ----------------------------------------------------

    def _units(self) -> list[_Unit]:
        cfg = self.config
        units = [_Unit("ntt", None)]
        units += [_Unit(f"relin-{p}", None) for p in cfg.relin_powers]
        for qi in range(cfg.num_queries):
            for origin in cfg.origins:
                units.append(
                    _Unit(f"enc-{qi}-{origin}", f"enc-{qi}-{origin}.bin")
                )
        if cfg.dummy_seed is not None:
            units += [
                _Unit(f"dummy-{d}", f"dummy-{d}.bin")
                for d in cfg.dummy_devices
            ]
        return units

    # -- derivations ---------------------------------------------------------

    def _derive(self, unit: _Unit) -> bytes:
        """Materialize one unit into the store; returns its digest input."""
        cfg = self.config
        profile = PROFILES[cfg.profile]
        kind, _, rest = unit.label.partition("-")
        if kind == "ntt":
            # Warm the twiddle/context tables and digest a probe
            # transform so a resumed run proves the tables are
            # bit-identical, not merely present.
            context = ntt.get_context(profile.n, profile.q)
            probe = [(i * i + 1) % profile.q for i in range(profile.n)]
            width = _ring_width(profile)
            return b"".join(
                v.to_bytes(width, "big") for v in context.forward(probe)
            )
        if kind == "relin":
            if self.relin_keys is None:
                raise DurabilityError(
                    "config lists relin powers but no relin keys were given"
                )
            power = int(rest)
            prepared = self.store.relin_for(self.relin_keys)
            prepared.prepared_pieces(power)  # warm the per-backend cache
            width = _ring_width(profile)
            return b"".join(
                _ring_bytes(b, width) + _ring_bytes(a, width)
                for b, a in self.relin_keys.keys[power].pieces
            )
        if kind == "enc":
            qi_str, _, origin_str = rest.partition("-")
            qi, origin = int(qi_str), int(origin_str)
            seed = submission_seed(cfg.master_seed, qi)
            pool = self.store.encryption_pool(seed, origin)
            if pool is None:
                pool = EncryptionPool.fill(
                    self.public_key, seed, origin, cfg.entries
                )
                self.store.add_encryption_pool(pool)
            return encode_pool(pool)
        if kind == "dummy":
            device = int(rest)
            stream = self.store.dummy_stream(device)
            if stream is None:
                stream = DummyStream.fill(
                    cfg.dummy_seed, device, cfg.dummy_blocks
                )
                self.store.add_dummy_stream(stream)
            return b"".join(stream.blocks)
        raise DurabilityError(f"unknown precompute unit {unit.label!r}")

    def _load_artifact(self, unit: _Unit, expected_digest: str) -> bool:
        """Try restoring a completed unit from its on-disk artifact.

        Returns True when the artifact existed, matched the journaled
        digest, and was installed into the store.
        """
        if unit.filename is None:
            return False
        path = self.directory / unit.filename
        if not path.exists():
            return False
        raw = path.read_bytes()
        if hashlib.sha256(raw).hexdigest() != expected_digest:
            return False
        cfg = self.config
        kind, _, rest = unit.label.partition("-")
        if kind == "enc":
            qi_str, _, origin_str = rest.partition("-")
            qi, origin = int(qi_str), int(origin_str)
            seed = submission_seed(cfg.master_seed, qi)
            self.store.add_encryption_pool(
                decode_pool(self.public_key, seed, origin, raw)
            )
            return True
        if kind == "dummy":
            device = int(rest)
            block_bytes = DUMMY_BLOCK_BYTES
            blocks = tuple(
                raw[i : i + block_bytes]
                for i in range(0, len(raw), block_bytes)
            )
            self.store.add_dummy_stream(
                DummyStream(cfg.dummy_seed, device, block_bytes, blocks)
            )
            return True
        return False

    # -- driver --------------------------------------------------------------

    def run(self) -> OfflineStore:
        with telemetry.span("offline.precompute") as span:
            units = self._units()
            for unit in units:
                if unit.label in self.completed:
                    expected = self.completed[unit.label]["digest"]
                    if not self._load_artifact(unit, expected):
                        # Digest-only units, or a lost/corrupt artifact:
                        # re-derive and insist on the journaled digest.
                        payload = self._derive(unit)
                        actual = hashlib.sha256(payload).hexdigest()
                        if actual != expected:
                            raise DurabilityError(
                                f"resumed unit {unit.label!r} derived "
                                f"digest {actual[:16]}, journal has "
                                f"{expected[:16]} — offline state is stale"
                            )
                        if unit.filename is not None:
                            (self.directory / unit.filename).write_bytes(
                                payload
                            )
                    telemetry.count("offline.precompute.resumed")
                    continue
                self._maybe_crash("before", unit.label)
                payload = self._derive(unit)
                digest = hashlib.sha256(payload).hexdigest()
                if unit.filename is not None:
                    (self.directory / unit.filename).write_bytes(payload)
                self.journal.append(
                    UNIT_RECORD,
                    {"unit": unit.label, "digest": digest, "bytes": len(payload)},
                )
                self.completed[unit.label] = {
                    "unit": unit.label,
                    "digest": digest,
                }
                telemetry.count("offline.precompute.units")
                self._maybe_crash("after", unit.label)
            span.set_attribute("units", len(units))
            self._mark_complete(len(units))
        return self.store

    def _mark_complete(self, total_units: int) -> None:
        # Idempotent: a resumed run over an already-complete journal
        # must not append a second completion marker.
        for record in load_records(self.directory, drop_torn_tail=True):
            if record.type == COMPLETE_RECORD:
                return
        self.journal.append(COMPLETE_RECORD, {"units": total_units})


def run_precompute(
    config: OfflineConfig,
    directory,
    *,
    public_key: bgv.PublicKey,
    relin_keys: bgv.RelinKeySet | None = None,
    kill: str | None = None,
    fsync: bool = True,
) -> OfflineStore:
    return PrecomputeRunner.start(
        config,
        directory,
        public_key=public_key,
        relin_keys=relin_keys,
        kill=kill,
        fsync=fsync,
    ).run()


def resume_precompute(
    directory,
    *,
    public_key: bgv.PublicKey,
    relin_keys: bgv.RelinKeySet | None = None,
    kill: str | None = None,
) -> OfflineStore:
    return PrecomputeRunner.resume(
        directory,
        public_key=public_key,
        relin_keys=relin_keys,
        kill=kill,
    ).run()
