"""Query-independent crypto pools and their derivation chains.

The online hot path spends most of its time on work that does not
depend on the query: sampling encryption randomness and multiplying it
by the public key, and generating dummy-onion bodies for traffic-shape
padding.  Both are pure functions of a seed and a stable label path
(:func:`repro.runtime.seeding.derive_rng`), so the offline phase can
materialize them ahead of time and the online phase merely *indexes*
into them.

The bit-identity contract: entry ``i`` of a pool is exactly what the
inline path derives for index ``i``.  A run that consumes from a pool
and a run that derives lazily therefore produce the same ciphertexts
and the same wire bytes — and a pool that runs dry extends itself along
the *same* derivation chain (block-and-refill) instead of falling back
to a differently-seeded RNG, so exhaustion mid-batch cannot change a
single output bit.
"""

from __future__ import annotations

from repro import telemetry
from repro.crypto import bgv
from repro.params import BGVProfile
from repro.runtime.seeding import derive_rng

#: Bytes per derived dummy block.  A module constant: the block layout
#: is part of the derivation chain, so it must not vary per run.
DUMMY_BLOCK_BYTES = 4096


# ---------------------------------------------------------------------------
# Leaf-encryption randomness
# ---------------------------------------------------------------------------


def leaf_randomness(
    profile: BGVProfile, master_seed: int, origin: int, index: int
) -> bgv.EncryptionRandomness:
    """Entry ``index`` of one origin's leaf-randomness stream.

    Stateless: derived from ``(master_seed, origin, index)`` alone, so
    the inline path, the precomputed pool, and a pool refill after
    exhaustion all land on the same values.
    """
    rng = derive_rng(master_seed, "origin", origin, "leaf-enc", index)
    return bgv.EncryptionRandomness.generate(profile, rng)


def prepared_leaf_randomness(
    pk: bgv.PublicKey, master_seed: int, origin: int, index: int
) -> bgv.PreparedRandomness:
    """:func:`leaf_randomness` with its public-key masks precomputed."""
    return bgv.PreparedRandomness.prepare(
        pk, leaf_randomness(pk.profile, master_seed, origin, index)
    )


class EncryptionPool:
    """Precomputed :class:`~repro.crypto.bgv.PreparedRandomness` entries
    for one ``(submission seed, origin)`` stream.

    Indexing past the materialized prefix *refills* the pool by deriving
    (and mask-preparing) further entries of the same chain; the refill
    count is exposed so exhaustion is observable, but the returned
    entries are indistinguishable from precomputed ones.
    """

    def __init__(
        self,
        public_key: bgv.PublicKey,
        master_seed: int,
        origin: int,
        entries: tuple[bgv.PreparedRandomness, ...] = (),
    ):
        self.public_key = public_key
        self.master_seed = master_seed
        self.origin = origin
        self.entries: list[bgv.PreparedRandomness] = list(entries)
        self.refills = 0

    @classmethod
    def fill(
        cls,
        public_key: bgv.PublicKey,
        master_seed: int,
        origin: int,
        count: int,
    ) -> "EncryptionPool":
        pool = cls(public_key, master_seed, origin)
        pool.extend_to(count)
        pool.refills = 0  # initial fill is not a refill
        return pool

    @property
    def level(self) -> int:
        return len(self.entries)

    def extend_to(self, count: int) -> None:
        """Materialize entries up to ``count`` along the chain."""
        while len(self.entries) < count:
            self.entries.append(
                prepared_leaf_randomness(
                    self.public_key,
                    self.master_seed,
                    self.origin,
                    len(self.entries),
                )
            )
            self.refills += 1

    def entry(self, index: int) -> bgv.PreparedRandomness:
        if index >= len(self.entries):
            self.extend_to(index + 1)
        return self.entries[index]


class LeafRandomnessSource:
    """The per-origin stream the encrypted engine consumes.

    With a pool, entries come back mask-prepared (the cheap encryption
    path); without one, they are derived lazily from the same chain.
    Consumption statistics accumulate on the source — fabric workers run
    with telemetry inactive, so the executor lifts them into its
    :class:`~repro.engine.encrypted.RunStats` instead.
    """

    def __init__(
        self,
        profile: BGVProfile,
        master_seed: int,
        origin: int,
        pool: EncryptionPool | None = None,
    ):
        self.profile = profile
        self.master_seed = master_seed
        self.origin = origin
        self.pool = pool
        self.index = 0
        self.hits = 0
        self.misses = 0
        self.refills = 0

    def next(self) -> bgv.EncryptionRandomness:
        index = self.index
        self.index += 1
        if self.pool is not None:
            before = self.pool.refills
            entry = self.pool.entry(index)
            self.refills += self.pool.refills - before
            self.hits += 1
            return entry
        self.misses += 1
        return leaf_randomness(
            self.profile, self.master_seed, self.origin, index
        )


# ---------------------------------------------------------------------------
# Dummy-onion bodies
# ---------------------------------------------------------------------------


def dummy_block(
    dummy_seed: int, device_id: int, index: int, block_bytes: int
) -> bytes:
    """Block ``index`` of one device's dummy byte stream."""
    rng = derive_rng(dummy_seed, "dummy", device_id, index)
    return rng.randbytes(block_bytes)


class DummyStream:
    """A device's supply of dummy-onion body bytes.

    ``take(length)`` slices the next ``length`` bytes off a stream of
    derived blocks; blocks past the materialized prefix are derived on
    demand (block-and-refill on the same chain), counted under
    ``offline.pool.refills``.  Devices run in the coordinator process,
    so the stream counts telemetry directly.
    """

    def __init__(
        self,
        dummy_seed: int,
        device_id: int,
        block_bytes: int = DUMMY_BLOCK_BYTES,
        blocks: tuple[bytes, ...] = (),
    ):
        for block in blocks:
            if len(block) != block_bytes:
                raise ValueError("materialized blocks must be block-sized")
        self.dummy_seed = dummy_seed
        self.device_id = device_id
        self.block_bytes = block_bytes
        self.blocks: list[bytes] = list(blocks)
        self.offset = 0  # global byte offset consumed so far
        self.refills = 0

    @classmethod
    def fill(
        cls,
        dummy_seed: int,
        device_id: int,
        num_blocks: int,
        block_bytes: int = DUMMY_BLOCK_BYTES,
    ) -> "DummyStream":
        blocks = tuple(
            dummy_block(dummy_seed, device_id, i, block_bytes)
            for i in range(num_blocks)
        )
        return cls(dummy_seed, device_id, block_bytes, blocks)

    def _ensure_block(self, index: int) -> None:
        while index >= len(self.blocks):
            self.blocks.append(
                dummy_block(
                    self.dummy_seed,
                    self.device_id,
                    len(self.blocks),
                    self.block_bytes,
                )
            )
            self.refills += 1
            telemetry.count("offline.pool.refills")

    def take(self, length: int) -> bytes:
        """The next ``length`` bytes of the stream."""
        out = bytearray()
        while len(out) < length:
            block_index, within = divmod(self.offset, self.block_bytes)
            self._ensure_block(block_index)
            chunk = self.blocks[block_index][
                within : within + (length - len(out))
            ]
            out.extend(chunk)
            self.offset += len(chunk)
        return bytes(out)
