"""Generate ``docs/CLI.md`` from the live argparse tree.

The CLI reference is *generated*, never hand-edited: this module renders
``python -m repro --help`` plus every subcommand's ``--help`` into one
markdown document, deterministically (help text wraps at a pinned
terminal width, so the output is byte-stable across machines).

* ``make cli-docs`` — regenerate ``docs/CLI.md`` in place;
* ``tests/cli/test_cli_docs.py`` — asserts the committed file matches a
  fresh render, so a CLI change that forgets to regenerate fails CI.

Keeping the reference generated is what keeps it honest: the argparse
tree in :mod:`repro.cli` is the single source of truth, and the doc can
never describe a flag that does not exist.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.cli import build_parser

#: Pinned help-text wrap width; argparse consults COLUMNS, so rendering
#: must not depend on the invoking terminal.
RENDER_COLUMNS = 80

HEADER = """\
# CLI reference

<!-- GENERATED FILE - DO NOT EDIT.
     Regenerate with `make cli-docs` (python -m repro.clidocs).
     tests/cli/test_cli_docs.py fails if this file is stale. -->

Every command below is `python -m repro <command>`.  This file is
rendered from the live argparse definitions in `src/repro/cli.py`;
see `src/repro/clidocs.py` for the generator.
"""


def _render_help(parser) -> str:
    import os

    saved = os.environ.get("COLUMNS")
    os.environ["COLUMNS"] = str(RENDER_COLUMNS)
    try:
        return parser.format_help()
    finally:
        if saved is None:
            os.environ.pop("COLUMNS", None)
        else:
            os.environ["COLUMNS"] = saved


def render_cli_reference() -> str:
    """The full markdown document, as a string."""
    parser = build_parser()
    sections = [HEADER]
    sections.append(
        "## repro\n\n```text\n" + _render_help(parser).rstrip() + "\n```\n"
    )
    subparsers = [
        action
        for action in parser._subparsers._group_actions  # noqa: SLF001
        if hasattr(action, "choices")
    ]
    seen: set[int] = set()
    for action in subparsers:
        for name, sub in action.choices.items():
            if id(sub) in seen:  # aliases share one parser object
                continue
            seen.add(id(sub))
            sections.append(
                f"## repro {name}\n\n```text\n"
                + _render_help(sub).rstrip()
                + "\n```\n"
            )
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    target = Path(__file__).resolve().parents[2] / "docs" / "CLI.md"
    if argv and argv[0] == "--check":
        current = target.read_text() if target.exists() else ""
        if current != render_cli_reference():
            print(
                f"{target} is stale; run `make cli-docs`", file=sys.stderr
            )
            return 1
        print(f"{target} is up to date")
        return 0
    target.write_text(render_cli_reference())
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
