"""Mycelium: large-scale distributed graph queries with differential
privacy — a from-scratch reproduction of the SOSP 2021 paper.

The top-level public API lives in :mod:`repro.core.system`
(:class:`~repro.core.system.MyceliumSystem`); see README.md for a
quickstart.
"""

__version__ = "1.0.0"
