"""Modular arithmetic and prime-number utilities.

These are the number-theoretic building blocks shared by the BGV
cryptosystem (:mod:`repro.crypto.bgv`), the NTT (:mod:`repro.crypto.ntt`),
Shamir secret sharing, and RSA key generation.  Everything here operates on
Python integers, so moduli of arbitrary size (the paper uses a 550-bit
ciphertext modulus) are supported.
"""

from __future__ import annotations

import random

from repro.errors import ParameterError

try:  # NumPy is an optional dependency (see repro.runtime.backends).
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

# Deterministic Miller-Rabin witness sets. For n < 3.3e24 the first set is a
# *proof* of primality; for larger n we add random witnesses.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981


def invmod(a: int, m: int) -> int:
    """Return the inverse of ``a`` modulo ``m``.

    Raises :class:`ParameterError` if the inverse does not exist.
    """
    try:
        return pow(a, -1, m)
    except ValueError as exc:
        raise ParameterError(f"{a} has no inverse modulo {m}") from exc


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One Miller-Rabin round; returns True if ``n`` passes for base ``a``."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_prime(n: int, rounds: int = 24, rng: random.Random | None = None) -> bool:
    """Miller-Rabin primality test.

    Deterministic (a proof) for n below ~3.3e24; probabilistic with
    ``rounds`` random witnesses above that.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if n < _DETERMINISTIC_BOUND:
        witnesses: tuple[int, ...] | list[int] = _DETERMINISTIC_WITNESSES
    else:
        rng = rng or random.Random(n & 0xFFFFFFFF)
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]
    return all(_miller_rabin_round(n, a % n, d, r) for a in witnesses if a % n > 1)


def next_prime(n: int) -> int:
    """Return the smallest prime >= n."""
    if n <= 2:
        return 2
    candidate = n | 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def random_prime(bits: int, rng: random.Random) -> int:
    """Return a random prime with exactly ``bits`` bits."""
    if bits < 2:
        raise ParameterError("primes need at least 2 bits")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_prime(candidate):
            return candidate


def ntt_prime(bits: int, two_n: int) -> int:
    """Return the smallest prime with >= ``bits`` bits satisfying
    ``p ≡ 1 (mod two_n)``.

    Such primes admit a primitive ``two_n``-th root of unity, which the
    negacyclic NTT requires.
    """
    if two_n & (two_n - 1):
        raise ParameterError("two_n must be a power of two")
    p = ((1 << bits) // two_n) * two_n + 1
    while not is_prime(p):
        p += two_n
    return p


def primitive_root_of_unity(order: int, modulus: int) -> int:
    """Return a primitive ``order``-th root of unity modulo a prime."""
    if (modulus - 1) % order != 0:
        raise ParameterError(f"no {order}-th root of unity mod {modulus}")
    cofactor = (modulus - 1) // order
    for g in range(2, modulus):
        candidate = pow(g, cofactor, modulus)
        if candidate == 1:
            continue
        # candidate has order dividing `order`; check it is exactly `order`
        # by testing all maximal proper divisors order/p for prime p|order.
        if _has_exact_order(candidate, order, modulus):
            return candidate
    raise ParameterError(f"failed to find {order}-th root of unity mod {modulus}")


def _prime_factors(n: int) -> list[int]:
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


def _has_exact_order(x: int, order: int, modulus: int) -> bool:
    return all(pow(x, order // p, modulus) != 1 for p in _prime_factors(order))


def centered_mod(x: int, q: int) -> int:
    """Reduce ``x`` into the centered interval (-q/2, q/2]."""
    r = x % q
    if r > q // 2:
        r -= q
    return r


def crt_combine(residues: list[int], moduli: list[int]) -> int:
    """Combine residues via the Chinese Remainder Theorem.

    Moduli must be pairwise coprime; the result is reduced modulo their
    product.  Residues are normalized into ``[0, m)`` first, so negative
    inputs and residues equal to (or exceeding) their modulus combine to
    the same canonical value as their reduced forms — without the
    normalization, ``r == m`` contributes a full extra basis weight and
    negative residues blow up the intermediate product before the final
    reduction.
    """
    if len(residues) != len(moduli):
        raise ParameterError("residues and moduli must have equal length")
    return CrtBasis(moduli).combine(residues)


class CrtBasis:
    """Precomputed CRT recombination weights for a fixed modulus list.

    ``weights[i]`` is the canonical basis element that is 1 modulo
    ``moduli[i]`` and 0 modulo every other modulus, so combining is a
    single weighted sum.  Reusing one basis across many combines (RNS
    reconstruction recombines every coefficient of a polynomial against
    the same primes) amortizes the modular inversions.
    """

    __slots__ = ("moduli", "product", "weights")

    def __init__(self, moduli: list[int]):
        if not moduli:
            raise ParameterError("CRT needs at least one modulus")
        product = 1
        for m in moduli:
            product *= m
        self.moduli = tuple(moduli)
        self.product = product
        self.weights = tuple(
            (product // m) * invmod((product // m) % m, m) % product
            for m in moduli
        )

    def combine(self, residues: list[int]) -> int:
        if len(residues) != len(self.moduli):
            raise ParameterError("residues and moduli must have equal length")
        total = 0
        for r, m, w in zip(residues, self.moduli, self.weights):
            total += (r % m) * w
        return total % self.product

    def combine_many(self, rows: list[list[int]]) -> list[int]:
        """Combine many residue vectors against the same basis.

        Vectorized via :func:`weighted_sums_mod` when NumPy is present
        (RNS reconstruction recombines every polynomial coefficient
        against the same primes, so the batch is the hot shape); exact
        either way.
        """
        k = len(self.moduli)
        for row in rows:
            if len(row) != k:
                raise ParameterError("residues and moduli must have equal length")
        vectors = [
            [row[i] % m for row in rows]
            for i, m in enumerate(self.moduli)
        ]
        return weighted_sums_mod(vectors, list(self.weights), self.product)


def weighted_sums_mod(
    vectors: list[list[int]], weights: list[int], modulus: int
) -> list[int]:
    """``[sum_k weights[k] * vectors[k][i] mod modulus for each i]`` — the
    weighted big-int row sum under both RNS CRT recombination and Shamir
    vector reconstruction.

    With NumPy available the products run as exact 16-bit limb
    convolutions: limb products are < 2^32 and at most ``k * words``
    accumulate per output limb, so float64 sums stay far below 2^53 and
    the int64 carry propagation recovers the exact integer before one
    final reduction per element.  Falls back to plain big-int arithmetic
    otherwise; both paths return identical values.
    """
    if len(vectors) != len(weights):
        raise ParameterError("vectors and weights must have equal length")
    if not vectors:
        raise ParameterError("weighted sum needs at least one vector")
    length = len(vectors[0])
    if any(len(v) != length for v in vectors):
        raise ParameterError("vectors have inconsistent lengths")
    if length == 0:
        return []
    weights = [w % modulus for w in weights]
    if _np is not None and length > 1 and all(min(v) >= 0 for v in vectors):
        value_words = max(
            1, (max(max(v) for v in vectors).bit_length() + 15) // 16
        )
        weight_words = max(1, (modulus.bit_length() + 15) // 16)
        # Exactness bound for float64 accumulation of 16x16-bit products.
        if len(vectors) * value_words * (1 << 32) < (1 << 53):
            return _weighted_sums_limbs(
                vectors, weights, modulus, value_words, weight_words
            )
    return [
        sum(w * v[i] for w, v in zip(weights, vectors)) % modulus
        for i in range(length)
    ]


def _weighted_sums_limbs(
    vectors: list[list[int]],
    weights: list[int],
    modulus: int,
    value_words: int,
    weight_words: int,
) -> list[int]:
    length = len(vectors[0])
    out_words = value_words + weight_words + 1
    acc = _np.zeros((length, out_words), dtype=_np.float64)
    width = 2 * value_words
    for weight, vector in zip(weights, vectors):
        buf = b"".join(int(v).to_bytes(width, "little") for v in vector)
        limbs = (
            _np.frombuffer(buf, dtype="<u2")
            .reshape(length, value_words)
            .astype(_np.float64)
        )
        for j in range(weight_words):
            w_limb = (weight >> (16 * j)) & 0xFFFF
            if w_limb:
                acc[:, j : j + value_words] += limbs * float(w_limb)
    limbs = acc.astype(_np.int64)
    while (limbs >> 16).any():
        carry = limbs >> 16
        limbs &= 0xFFFF
        limbs[:, 1:] += carry[:, :-1]
    packed = limbs.astype("<u2").tobytes()
    row_bytes = 2 * out_words
    return [
        int.from_bytes(packed[i * row_bytes : (i + 1) * row_bytes], "little")
        % modulus
        for i in range(length)
    ]
