"""Modular arithmetic and prime-number utilities.

These are the number-theoretic building blocks shared by the BGV
cryptosystem (:mod:`repro.crypto.bgv`), the NTT (:mod:`repro.crypto.ntt`),
Shamir secret sharing, and RSA key generation.  Everything here operates on
Python integers, so moduli of arbitrary size (the paper uses a 550-bit
ciphertext modulus) are supported.
"""

from __future__ import annotations

import random

from repro.errors import ParameterError

# Deterministic Miller-Rabin witness sets. For n < 3.3e24 the first set is a
# *proof* of primality; for larger n we add random witnesses.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981


def invmod(a: int, m: int) -> int:
    """Return the inverse of ``a`` modulo ``m``.

    Raises :class:`ParameterError` if the inverse does not exist.
    """
    try:
        return pow(a, -1, m)
    except ValueError as exc:
        raise ParameterError(f"{a} has no inverse modulo {m}") from exc


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One Miller-Rabin round; returns True if ``n`` passes for base ``a``."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_prime(n: int, rounds: int = 24, rng: random.Random | None = None) -> bool:
    """Miller-Rabin primality test.

    Deterministic (a proof) for n below ~3.3e24; probabilistic with
    ``rounds`` random witnesses above that.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if n < _DETERMINISTIC_BOUND:
        witnesses: tuple[int, ...] | list[int] = _DETERMINISTIC_WITNESSES
    else:
        rng = rng or random.Random(n & 0xFFFFFFFF)
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]
    return all(_miller_rabin_round(n, a % n, d, r) for a in witnesses if a % n > 1)


def next_prime(n: int) -> int:
    """Return the smallest prime >= n."""
    if n <= 2:
        return 2
    candidate = n | 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def random_prime(bits: int, rng: random.Random) -> int:
    """Return a random prime with exactly ``bits`` bits."""
    if bits < 2:
        raise ParameterError("primes need at least 2 bits")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_prime(candidate):
            return candidate


def ntt_prime(bits: int, two_n: int) -> int:
    """Return the smallest prime with >= ``bits`` bits satisfying
    ``p ≡ 1 (mod two_n)``.

    Such primes admit a primitive ``two_n``-th root of unity, which the
    negacyclic NTT requires.
    """
    if two_n & (two_n - 1):
        raise ParameterError("two_n must be a power of two")
    p = ((1 << bits) // two_n) * two_n + 1
    while not is_prime(p):
        p += two_n
    return p


def primitive_root_of_unity(order: int, modulus: int) -> int:
    """Return a primitive ``order``-th root of unity modulo a prime."""
    if (modulus - 1) % order != 0:
        raise ParameterError(f"no {order}-th root of unity mod {modulus}")
    cofactor = (modulus - 1) // order
    for g in range(2, modulus):
        candidate = pow(g, cofactor, modulus)
        if candidate == 1:
            continue
        # candidate has order dividing `order`; check it is exactly `order`
        # by testing all maximal proper divisors order/p for prime p|order.
        if _has_exact_order(candidate, order, modulus):
            return candidate
    raise ParameterError(f"failed to find {order}-th root of unity mod {modulus}")


def _prime_factors(n: int) -> list[int]:
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


def _has_exact_order(x: int, order: int, modulus: int) -> bool:
    return all(pow(x, order // p, modulus) != 1 for p in _prime_factors(order))


def centered_mod(x: int, q: int) -> int:
    """Reduce ``x`` into the centered interval (-q/2, q/2]."""
    r = x % q
    if r > q // 2:
        r -= q
    return r


def crt_combine(residues: list[int], moduli: list[int]) -> int:
    """Combine residues via the Chinese Remainder Theorem.

    Moduli must be pairwise coprime; the result is reduced modulo their
    product.
    """
    if len(residues) != len(moduli):
        raise ParameterError("residues and moduli must have equal length")
    total = 0
    product = 1
    for m in moduli:
        product *= m
    for r, m in zip(residues, moduli):
        partial = product // m
        total += r * partial * invmod(partial % m, m)
    return total % product
