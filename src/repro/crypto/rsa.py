"""RSA with PKCS#1 v1.5 encryption padding.

The paper instantiates PEnc (the public-key layer of path setup, §3.4)
with RSA-PKCS1.  Keys here default to 1024 bits; tests use smaller keys
for speed.  This is an encryption-only implementation — the protocol
never needs RSA signatures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.modmath import invmod, random_prime
from repro.errors import CryptoError

PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class RsaPublicKey:
    n: int
    e: int = PUBLIC_EXPONENT

    @property
    def modulus_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    @property
    def max_message_bytes(self) -> int:
        """PKCS#1 v1.5 needs 11 bytes of padding overhead."""
        return self.modulus_bytes - 11

    def serialize(self) -> bytes:
        width = self.modulus_bytes
        return width.to_bytes(4, "big") + self.n.to_bytes(width, "big") + self.e.to_bytes(
            4, "big"
        )

    @classmethod
    def deserialize(cls, data: bytes) -> RsaPublicKey:
        width = int.from_bytes(data[:4], "big")
        n = int.from_bytes(data[4 : 4 + width], "big")
        e = int.from_bytes(data[4 + width : 8 + width], "big")
        return cls(n=n, e=e)


@dataclass(frozen=True)
class RsaPrivateKey:
    n: int
    d: int

    @property
    def public(self) -> RsaPublicKey:
        return RsaPublicKey(n=self.n)


def generate_keypair(bits: int, rng: random.Random) -> tuple[RsaPrivateKey, RsaPublicKey]:
    """Generate an RSA key pair with an n of roughly ``bits`` bits."""
    if bits < 128:
        raise CryptoError("RSA modulus must be at least 128 bits")
    half = bits // 2
    while True:
        p = random_prime(half, rng)
        q = random_prime(bits - half, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if phi % PUBLIC_EXPONENT == 0:
            continue
        n = p * q
        d = invmod(PUBLIC_EXPONENT, phi)
        private = RsaPrivateKey(n=n, d=d)
        return private, private.public


def _pad_pkcs1(message: bytes, modulus_bytes: int, rng: random.Random) -> bytes:
    if len(message) > modulus_bytes - 11:
        raise CryptoError(
            f"message of {len(message)} bytes too long for "
            f"{modulus_bytes}-byte modulus"
        )
    pad_len = modulus_bytes - 3 - len(message)
    padding = bytes(rng.randrange(1, 256) for _ in range(pad_len))
    return b"\x00\x02" + padding + b"\x00" + message


def _unpad_pkcs1(block: bytes) -> bytes:
    if len(block) < 11 or block[0] != 0 or block[1] != 2:
        raise CryptoError("invalid PKCS#1 padding")
    try:
        separator = block.index(0, 2)
    except ValueError as exc:
        raise CryptoError("invalid PKCS#1 padding") from exc
    if separator < 10:
        raise CryptoError("invalid PKCS#1 padding")
    return block[separator + 1 :]


def encrypt(public: RsaPublicKey, message: bytes, rng: random.Random) -> bytes:
    """PEnc: RSA-PKCS1 v1.5 encryption."""
    padded = _pad_pkcs1(message, public.modulus_bytes, rng)
    value = int.from_bytes(padded, "big")
    cipher = pow(value, public.e, public.n)
    return cipher.to_bytes(public.modulus_bytes, "big")


def decrypt(private: RsaPrivateKey, ciphertext: bytes) -> bytes:
    """Invert PEnc with the private key."""
    modulus_bytes = (private.n.bit_length() + 7) // 8
    if len(ciphertext) != modulus_bytes:
        raise CryptoError("ciphertext length does not match modulus")
    value = int.from_bytes(ciphertext, "big")
    if value >= private.n:
        raise CryptoError("ciphertext out of range")
    plain = pow(value, private.d, private.n)
    return _unpad_pkcs1(plain.to_bytes(modulus_bytes, "big"))
