"""Hashing and key-derivation helpers used across the system.

``H`` is the protocol's cryptographic hash (pseudonym derivation,
hop-selection buckets, Merkle trees).  ``prf`` is a keyed PRF used for MAC
tokens and deterministic per-round values.
"""

from __future__ import annotations

import hashlib
import hmac

HASH_BYTES = 32
#: Maximum value of the protocol hash, H_max in §3.4.
HASH_MAX = (1 << (8 * HASH_BYTES)) - 1


def protocol_hash(*parts: bytes) -> bytes:
    """The protocol hash H: SHA-256 over length-prefixed parts.

    Length prefixes make the encoding injective, so H(a, b) never collides
    with H(a || b) for a different split.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(len(part).to_bytes(8, "big"))
        digest.update(part)
    return digest.digest()


def hash_to_int(*parts: bytes) -> int:
    """H(...) interpreted as an integer in [0, HASH_MAX]."""
    return int.from_bytes(protocol_hash(*parts), "big")


def hash_fraction(*parts: bytes) -> float:
    """H(...) / H_max — the uniform [0, 1) value used by hop selection."""
    return hash_to_int(*parts) / (HASH_MAX + 1)


def prf(key: bytes, *parts: bytes) -> bytes:
    """HMAC-SHA256 keyed PRF."""
    message = b"".join(len(p).to_bytes(8, "big") + p for p in parts)
    return hmac.new(key, message, hashlib.sha256).digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    return hmac.compare_digest(a, b)


def derive_key(master: bytes, label: bytes, length: int = 32) -> bytes:
    """Simple HKDF-like expansion from a master secret."""
    out = b""
    counter = 0
    while len(out) < length:
        out += prf(master, label, counter.to_bytes(4, "big"))
        counter += 1
    return out[:length]
