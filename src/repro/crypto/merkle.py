"""Binary Merkle hash trees with positional inclusion proofs.

Mycelium uses MHTs in three places:

* the verifiable maps M1 (pseudonym number -> pseudonym/key/device) and
  M2 (device number -> pseudonym hashes) of §3.3;
* per-mailbox and per-C-round trees that stop the aggregator from
  dropping messages undetected (§3.4);
* the summation tree the aggregator uses to prove inclusion of each
  device's ciphertext in the global sum (§4.2, inherited from Orchard).

Proofs are *positional*: verification recomputes the root from the leaf
index's binary representation, so the aggregator cannot serve leaf n from
a different position (the §3.3 audit relies on this).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import protocol_hash
from repro.errors import MerkleError

_EMPTY_LEAF = b"\x00mycelium-empty-leaf"


def _leaf_hash(data: bytes) -> bytes:
    return protocol_hash(b"leaf", data)


def _node_hash(left: bytes, right: bytes) -> bytes:
    return protocol_hash(b"node", left, right)


@dataclass(frozen=True)
class InclusionProof:
    """Siblings along the path from a leaf to the root."""

    index: int
    siblings: tuple[bytes, ...]

    @property
    def tree_depth(self) -> int:
        return len(self.siblings)


class MerkleTree:
    """An immutable Merkle tree over a list of byte-string leaves.

    The leaf count is padded up to a power of two with a distinguished
    empty-leaf marker so that proof shapes are uniform.
    """

    def __init__(self, leaves: list[bytes]):
        if not leaves:
            leaves = [_EMPTY_LEAF]
        self.num_leaves = len(leaves)
        size = 1
        while size < len(leaves):
            size *= 2
        padded = list(leaves) + [_EMPTY_LEAF] * (size - len(leaves))
        levels = [[_leaf_hash(leaf) for leaf in padded]]
        while len(levels[-1]) > 1:
            prev = levels[-1]
            levels.append(
                [_node_hash(prev[i], prev[i + 1]) for i in range(0, len(prev), 2)]
            )
        self._levels = levels
        self._leaves = padded

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    @property
    def depth(self) -> int:
        return len(self._levels) - 1

    def leaf(self, index: int) -> bytes:
        if not 0 <= index < self.num_leaves:
            raise MerkleError(f"leaf index {index} out of range")
        return self._leaves[index]

    def prove(self, index: int) -> InclusionProof:
        """Build the inclusion proof for leaf ``index``."""
        if not 0 <= index < len(self._leaves):
            raise MerkleError(f"leaf index {index} out of range")
        siblings = []
        position = index
        for level in self._levels[:-1]:
            sibling = position ^ 1
            siblings.append(level[sibling])
            position //= 2
        return InclusionProof(index=index, siblings=tuple(siblings))


def verify_inclusion(
    root: bytes, leaf_data: bytes, proof: InclusionProof
) -> bool:
    """Check that ``leaf_data`` sits at ``proof.index`` under ``root``.

    Walks up the tree taking left/right according to the index bits — the
    "walk down M1's MHT taking a left on level i if the i-th bit of n is
    zero" check from §3.3, done bottom-up.
    """
    current = _leaf_hash(leaf_data)
    position = proof.index
    for sibling in proof.siblings:
        if position % 2 == 0:
            current = _node_hash(current, sibling)
        else:
            current = _node_hash(sibling, current)
        position //= 2
    return current == root


def verify_inclusion_or_raise(
    root: bytes, leaf_data: bytes, proof: InclusionProof
) -> None:
    if not verify_inclusion(root, leaf_data, proof):
        raise MerkleError(f"inclusion proof for index {proof.index} failed")
