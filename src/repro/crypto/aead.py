"""Authenticated and unauthenticated symmetric encryption.

Section 3.5 of the paper distinguishes two symmetric modes:

* **AE** (authenticated encryption) — ChaCha20-Poly1305, used between a
  source and each hop during path setup and for the *innermost* onion
  layer.  The nonce is the (monotonically increasing) C-round number and
  is *not* transmitted with the ciphertext, avoiding the nonce-privacy
  pitfalls of Bellare-Ng-Tackmann.

* **SEnc** (stream encryption, no MAC) — bare ChaCha20, used for all
  *outer* onion layers.  Because SEnc ciphertexts are indistinguishable
  from random strings, a forwarder that is missing an input can substitute
  a random dummy that downstream colluders cannot detect as invalid.
"""

from __future__ import annotations

import os
import struct

from repro.crypto.chacha20 import KEY_BYTES, NONCE_BYTES, chacha20_block, chacha20_xor
from repro.crypto.hashes import constant_time_equal
from repro.crypto.poly1305 import TAG_BYTES, poly1305_mac
from repro.errors import AuthenticationError, CryptoError


def nonce_from_round(round_number: int) -> bytes:
    """Derive the 12-byte nonce from a C-round number (§3.5)."""
    if round_number < 0:
        raise CryptoError("round numbers are non-negative")
    return round_number.to_bytes(NONCE_BYTES, "big")


def _poly1305_key(key: bytes, nonce: bytes) -> bytes:
    return chacha20_block(key, 0, nonce)[:32]


def _auth_input(aad: bytes, ciphertext: bytes) -> bytes:
    def pad16(data: bytes) -> bytes:
        remainder = len(data) % 16
        return data + b"\x00" * ((16 - remainder) % 16)

    return (
        pad16(aad)
        + pad16(ciphertext)
        + struct.pack("<QQ", len(aad), len(ciphertext))
    )


def ae_seal(key: bytes, round_number: int, plaintext: bytes, aad: bytes = b"") -> bytes:
    """ChaCha20-Poly1305 encrypt; returns ciphertext || 16-byte tag."""
    if len(key) != KEY_BYTES:
        raise CryptoError("AE keys are 32 bytes")
    nonce = nonce_from_round(round_number)
    ciphertext = chacha20_xor(key, nonce, plaintext)
    tag = poly1305_mac(_poly1305_key(key, nonce), _auth_input(aad, ciphertext))
    return ciphertext + tag


def ae_open(key: bytes, round_number: int, sealed: bytes, aad: bytes = b"") -> bytes:
    """ChaCha20-Poly1305 decrypt; raises on tag mismatch.

    The existential unforgeability this provides is exactly why dummies
    *cannot* be injected at the AE layer — see §3.5.
    """
    if len(sealed) < TAG_BYTES:
        raise AuthenticationError("sealed message shorter than a tag")
    nonce = nonce_from_round(round_number)
    ciphertext, tag = sealed[:-TAG_BYTES], sealed[-TAG_BYTES:]
    expected = poly1305_mac(_poly1305_key(key, nonce), _auth_input(aad, ciphertext))
    if not constant_time_equal(tag, expected):
        raise AuthenticationError("AE tag verification failed")
    return chacha20_xor(key, nonce, ciphertext)


def senc(key: bytes, round_number: int, data: bytes) -> bytes:
    """MAC-less stream encryption for outer onion layers; its own inverse."""
    if len(key) != KEY_BYTES:
        raise CryptoError("SEnc keys are 32 bytes")
    return chacha20_xor(key, nonce_from_round(round_number), data)


def random_dummy(length: int, rng=None) -> bytes:
    """A random string of the right length, indistinguishable from an
    SEnc ciphertext (§3.5 dummy generation).  A seeded ``rng`` keeps
    simulations replayable (chaos runs hash wire bytes into fault
    verdicts); without one, use OS randomness."""
    if rng is None:
        return os.urandom(length)
    return bytes(rng.randrange(256) for _ in range(length))
