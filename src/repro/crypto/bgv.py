"""BGV leveled homomorphic encryption (Brakerski-Gentry-Vaikuntanathan).

This is an exact, single-modulus implementation of the scheme the paper
uses (§4.1, §5): plaintexts are polynomials in R_t = Z_t[x]/(x^N + 1),
ciphertexts are vectors of elements of R_q with decryption
``m = (sum_i c_i * s^i mod q, centered) mod t``.

Design points that mirror the paper:

* **Deferred relinearization.**  Devices multiply ciphertexts without
  relinearizing, so ciphertext degree grows with each multiplication; the
  aggregator performs a one-time :func:`relinearize` back to degree 1
  before the committee decrypts (§5, "we defer the relinearization for
  each multiplication to the global aggregation phase").

* **Monomial encoding.**  A value ``a`` is encrypted as ``x^a``:
  homomorphic multiplication adds exponents (local neighborhood sums) and
  homomorphic addition accumulates per-exponent counts (the global
  histogram) — see :mod:`repro.engine.histogram`.

* **Noise accounting.**  Every ciphertext carries a conservative analytic
  noise estimate (bits) plus the count of fresh factors multiplied into
  it.  Exact noise can be measured with the secret key for validation;
  the analytic budget is what gates query feasibility (§6.2).
"""

from __future__ import annotations

import hashlib
import math
import random
import struct
import threading
from dataclasses import dataclass, field

from repro.crypto.polyring import RingElement, RingParams
from repro.errors import CryptoError, NoiseBudgetExceeded, ParameterError
from repro.params import BGVProfile
from repro.runtime import backends
from repro.telemetry.runtime import count as _count


@dataclass(frozen=True)
class SecretKey:
    """The BGV secret s (ternary ring element)."""

    profile: BGVProfile
    s: RingElement


@dataclass(frozen=True)
class PublicKey:
    """The BGV public key (pk0, pk1) with pk0 + pk1*s = t*e."""

    profile: BGVProfile
    pk0: RingElement
    pk1: RingElement

    def fingerprint(self) -> bytes:
        digest = hashlib.sha256()
        digest.update(_ring_bytes(self.pk0))
        digest.update(_ring_bytes(self.pk1))
        return digest.digest()


@dataclass(frozen=True)
class RelinKey:
    """Key-switching key for one secret power: maps c*s^power into a
    degree-1 contribution.  ``pieces[i] = (b_i, a_i)`` with
    ``b_i + a_i*s = t*e_i + T^i * s^power``."""

    power: int
    base_bits: int
    pieces: tuple[tuple[RingElement, RingElement], ...]


@dataclass(frozen=True)
class RelinKeySet:
    """Relinearization keys for powers 2..max_power."""

    profile: BGVProfile
    keys: dict[int, RelinKey]

    @property
    def max_power(self) -> int:
        return max(self.keys) if self.keys else 1


class PreparedRelinKeySet:
    """A :class:`RelinKeySet` with its pieces forward-transformed for the
    evaluation-domain fold.

    Key pieces are fixed across every relinearization, so the offline
    phase transforms each ``(b_i, a_i)`` once and :func:`relinearize`
    then pays one transform per *digit* polynomial instead of one full
    ring multiplication per piece half.  Prepared operands are
    backend-specific opaque values, cached lazily per backend name (a
    fabric worker re-prepares once per process — the cache is dropped on
    pickling rather than shipped).
    """

    def __init__(self, rlk: RelinKeySet):
        self.rlk = rlk
        self._prepared: dict[tuple[str, int], tuple] = {}
        self._lock = threading.Lock()

    @property
    def profile(self) -> BGVProfile:
        return self.rlk.profile

    @property
    def keys(self) -> dict[int, RelinKey]:
        return self.rlk.keys

    @property
    def max_power(self) -> int:
        return self.rlk.max_power

    def prepared_pieces(self, power: int) -> tuple:
        """``((b̂_i, â_i), ...)`` for the active backend, cached."""
        name = backends.active_backend().name
        cache_key = (name, power)
        with self._lock:
            cached = self._prepared.get(cache_key)
        if cached is not None:
            return cached
        profile = self.rlk.profile
        n, q = profile.n, profile.q
        pairs = tuple(
            (
                backends.prepare_operand(b_i.coeffs, n, q),
                backends.prepare_operand(a_i.coeffs, n, q),
            )
            for b_i, a_i in self.rlk.keys[power].pieces
        )
        with self._lock:
            self._prepared.setdefault(cache_key, pairs)
            return self._prepared[cache_key]

    def warm(self, powers=None) -> int:
        """Eagerly prepare pieces for ``powers`` (default: every power in
        the set) on the *active* backend, so the first online
        relinearization does not pay the transform cost lazily.  Returns
        the number of powers now resident for this backend."""
        name = backends.active_backend().name
        chosen = sorted(powers) if powers is not None else sorted(self.rlk.keys)
        for power in chosen:
            self.prepared_pieces(power)
        return sum(1 for key_name, _ in self._prepared if key_name == name)

    def __getstate__(self) -> dict:
        return {"rlk": self.rlk}

    def __setstate__(self, state: dict) -> None:
        self.rlk = state["rlk"]
        self._prepared = {}
        self._lock = threading.Lock()


@dataclass(frozen=True)
class Ciphertext:
    """A BGV ciphertext of arbitrary degree.

    ``components[i]`` multiplies ``s^i`` at decryption time.  Fresh
    ciphertexts have degree 1 (two components); un-relinearized products
    have higher degree.

    ``noise_bits`` is a conservative analytic bound on log2 of the noise
    infinity-norm; ``fresh_factors`` counts how many fresh encryptions have
    been multiplied together (so ``fresh_factors - 1`` is the number of
    homomorphic multiplications performed).
    """

    profile: BGVProfile
    components: tuple[RingElement, ...]
    noise_bits: float
    fresh_factors: int = 1

    def __post_init__(self) -> None:
        if len(self.components) < 2:
            raise ParameterError("a ciphertext needs at least two components")

    @property
    def degree(self) -> int:
        return len(self.components) - 1

    @property
    def size_bytes(self) -> int:
        """Serialized size; the unit of all bandwidth accounting."""
        per_element = self.profile.n * ((self.profile.q_bits + 7) // 8)
        return len(self.components) * per_element

    def serialize(self) -> bytes:
        """Deterministic byte encoding (used for hashing and mailboxes)."""
        width = (self.profile.q_bits + 7) // 8
        header = struct.pack(
            ">4sHIH", b"BGV1", len(self.components), self.profile.n, width
        )
        chunks = [header]
        for element in self.components:
            for coeff in element.coeffs:
                chunks.append(coeff.to_bytes(width, "big"))
        return b"".join(chunks)

    @classmethod
    def deserialize(cls, data: bytes, profile: BGVProfile) -> Ciphertext:
        magic, num_components, n, width = struct.unpack(">4sHIH", data[:12])
        if magic != b"BGV1":
            raise CryptoError("bad ciphertext magic")
        if n != profile.n:
            raise CryptoError("ciphertext ring degree does not match profile")
        ring = profile.ring
        offset = 12
        components = []
        for _ in range(num_components):
            coeffs = []
            for _ in range(n):
                coeffs.append(int.from_bytes(data[offset : offset + width], "big"))
                offset += width
            components.append(RingElement.from_coeffs(ring, coeffs))
        # Deserialized ciphertexts get a pessimistic noise tag: the wire
        # format does not carry provenance, so receivers budget for the
        # worst case the sender could legally have produced.
        fresh = _fresh_noise_bits(profile)
        return cls(profile, tuple(components), noise_bits=fresh, fresh_factors=1)

    def digest(self) -> bytes:
        return hashlib.sha256(self.serialize()).digest()


# ---------------------------------------------------------------------------
# Key generation
# ---------------------------------------------------------------------------


def keygen(profile: BGVProfile, rng: random.Random) -> tuple[SecretKey, PublicKey]:
    """Generate a BGV key pair."""
    ring = profile.ring
    s = RingElement.random_ternary(ring, rng)
    a = RingElement.random_uniform(ring, rng)
    e = RingElement.random_bounded(ring, profile.error_bound, rng)
    pk0 = -(a * s) + e.scale(profile.t)
    return SecretKey(profile, s), PublicKey(profile, pk0, a)


def make_relin_keys(
    secret: SecretKey, max_power: int, rng: random.Random
) -> RelinKeySet:
    """Generate key-switching keys for s^2 .. s^max_power.

    The genesis committee runs this once at system setup (§4.2); the
    aggregator uses the result to reduce high-degree device outputs back to
    degree 1 before threshold decryption.
    """
    if max_power < 2:
        return RelinKeySet(secret.profile, {})
    profile = secret.profile
    ring = profile.ring
    base = 1 << profile.relin_base_bits
    num_pieces = (profile.q.bit_length() + profile.relin_base_bits - 1) // (
        profile.relin_base_bits
    )
    keys: dict[int, RelinKey] = {}
    s_power = secret.s
    for power in range(2, max_power + 1):
        s_power = s_power * secret.s
        pieces = []
        scale = 1
        for _ in range(num_pieces):
            a_i = RingElement.random_uniform(ring, rng)
            e_i = RingElement.random_bounded(ring, profile.error_bound, rng)
            b_i = -(a_i * secret.s) + e_i.scale(profile.t) + s_power.scale(scale)
            pieces.append((b_i, a_i))
            scale = (scale * base) % profile.q
        keys[power] = RelinKey(power, profile.relin_base_bits, tuple(pieces))
    return RelinKeySet(profile, keys)


# ---------------------------------------------------------------------------
# Encryption / decryption
# ---------------------------------------------------------------------------


def _fresh_noise_bits(profile: BGVProfile) -> float:
    return profile.fresh_noise_bits


def encrypt(
    pk: PublicKey,
    plaintext: RingElement,
    rng: random.Random,
    randomness: EncryptionRandomness | None = None,
) -> Ciphertext:
    """Encrypt a plaintext ring element (coefficients modulo t).

    ``randomness`` pins the ephemeral values; the zero-knowledge layer uses
    this to re-derive a ciphertext from a witness.
    """
    profile = pk.profile
    if plaintext.params.n != profile.n:
        raise ParameterError("plaintext degree does not match profile")
    _count("bgv.encrypt.count")
    ring = profile.ring
    rand = randomness or EncryptionRandomness.generate(profile, rng)
    m_lifted = RingElement.from_coeffs(ring, [c % profile.t for c in plaintext.coeffs])
    if isinstance(rand, PreparedRandomness):
        # The pk-dependent masks were computed offline; addition is
        # associative mod q, so this is bit-identical to the inline
        # expression below with zero online ring multiplications.
        _count("bgv.encrypt.prepared")
        c0 = rand.mask0 + m_lifted
        c1 = rand.mask1
    else:
        c0 = pk.pk0 * rand.u + rand.e0.scale(profile.t) + m_lifted
        c1 = pk.pk1 * rand.u + rand.e1.scale(profile.t)
    return Ciphertext(
        profile, (c0, c1), noise_bits=_fresh_noise_bits(profile), fresh_factors=1
    )


@dataclass(frozen=True)
class EncryptionRandomness:
    """The ephemeral values of one encryption; the witness of the
    well-formedness ZKP (§4.6)."""

    u: RingElement
    e0: RingElement
    e1: RingElement

    @classmethod
    def generate(cls, profile: BGVProfile, rng: random.Random) -> EncryptionRandomness:
        ring = profile.ring
        return cls(
            u=RingElement.random_ternary(ring, rng),
            e0=RingElement.random_bounded(ring, profile.error_bound, rng),
            e1=RingElement.random_bounded(ring, profile.error_bound, rng),
        )


@dataclass(frozen=True)
class PreparedRandomness(EncryptionRandomness):
    """Encryption randomness with its pk-dependent masks precomputed.

    ``mask0 = pk0*u + t*e0`` and ``mask1 = pk1*u + t*e1`` are *derived*
    from ``(u, e0, e1)`` by :meth:`prepare` — never free inputs — so a
    ciphertext built from the masks is exactly the ciphertext the plain
    path would build, and a leaf witness carrying this object replays to
    the identical bytes.  Encrypting with it costs one ring addition
    instead of two ring multiplications; the offline phase fills pools
    of these per origin.
    """

    mask0: RingElement
    mask1: RingElement

    @classmethod
    def prepare(
        cls, pk: PublicKey, rand: EncryptionRandomness
    ) -> PreparedRandomness:
        t = pk.profile.t
        return cls(
            u=rand.u,
            e0=rand.e0,
            e1=rand.e1,
            mask0=pk.pk0 * rand.u + rand.e0.scale(t),
            mask1=pk.pk1 * rand.u + rand.e1.scale(t),
        )


def encrypt_monomial(
    pk: PublicKey,
    exponent: int,
    rng: random.Random,
    coeff: int = 1,
    randomness: EncryptionRandomness | None = None,
) -> Ciphertext:
    """Encrypt ``coeff * x^exponent`` — the paper's value encoding (§4.1)."""
    profile = pk.profile
    if not 0 <= exponent < profile.n:
        raise ParameterError(
            f"exponent {exponent} outside plaintext capacity [0, {profile.n})"
        )
    m = RingElement.monomial(profile.plaintext_ring, exponent, coeff)
    return encrypt(pk, m, rng, randomness=randomness)


def decrypt(secret: SecretKey, ct: Ciphertext) -> RingElement:
    """Decrypt to a plaintext ring element with coefficients in [0, t)."""
    _count("bgv.decrypt.count")
    phase = _decryption_phase(secret, ct)
    t = secret.profile.t
    plain = phase.lift_mod(t)
    return RingElement.from_coeffs(secret.profile.plaintext_ring, plain)


def _decryption_phase(secret: SecretKey, ct: Ciphertext) -> RingElement:
    """Compute sum_i c_i * s^i in R_q."""
    acc = ct.components[0]
    s_power = None
    for component in ct.components[1:]:
        s_power = secret.s if s_power is None else s_power * secret.s
        acc = acc + component * s_power
    return acc


def exact_noise_bits(secret: SecretKey, ct: Ciphertext) -> float:
    """Measure the actual noise of a ciphertext (log2 infinity norm).

    Used by tests to validate that the analytic estimate in
    ``ct.noise_bits`` is a sound upper bound.
    """
    profile = secret.profile
    phase = _decryption_phase(secret, ct).centered()
    t = profile.t
    worst = 0
    for c in phase:
        noise = (c - (c % t)) // t
        worst = max(worst, abs(noise))
    return math.log2(worst) if worst else 0.0


def noise_capacity_bits(profile: BGVProfile) -> float:
    """Noise bits beyond which decryption correctness is no longer
    guaranteed: the phase must stay within (-q/2, q/2]."""
    return profile.q_bits - 1 - math.log2(profile.t)


# ---------------------------------------------------------------------------
# Homomorphic operations
# ---------------------------------------------------------------------------


def _check_same_profile(a: Ciphertext, b: Ciphertext) -> None:
    if a.profile is not b.profile and a.profile != b.profile:
        raise ParameterError("ciphertexts use different BGV profiles")


def _guard_noise(profile: BGVProfile, noise_bits: float) -> None:
    if noise_bits >= noise_capacity_bits(profile):
        raise NoiseBudgetExceeded(
            f"estimated noise {noise_bits:.1f} bits exceeds capacity "
            f"{noise_capacity_bits(profile):.1f} bits for profile "
            f"'{profile.name}'"
        )


def add(a: Ciphertext, b: Ciphertext) -> Ciphertext:
    """Homomorphic addition (histogram "bin" aggregation, §4.1)."""
    _count("bgv.add.count")
    _check_same_profile(a, b)
    long, short = (a, b) if a.degree >= b.degree else (b, a)
    components = list(long.components)
    for i, comp in enumerate(short.components):
        components[i] = components[i] + comp
    noise = max(a.noise_bits, b.noise_bits) + 1
    _guard_noise(a.profile, noise)
    return Ciphertext(
        a.profile,
        tuple(components),
        noise_bits=noise,
        fresh_factors=max(a.fresh_factors, b.fresh_factors),
    )


def subtract(a: Ciphertext, b: Ciphertext) -> Ciphertext:
    """Homomorphic subtraction (used by the §4.5 sequence protocol)."""
    _count("bgv.sub.count")
    _check_same_profile(a, b)
    width = max(len(a.components), len(b.components))
    zero = RingElement.zero(a.profile.ring)
    components = []
    for i in range(width):
        ca = a.components[i] if i < len(a.components) else zero
        cb = b.components[i] if i < len(b.components) else zero
        components.append(ca - cb)
    noise = max(a.noise_bits, b.noise_bits) + 1
    _guard_noise(a.profile, noise)
    return Ciphertext(
        a.profile,
        tuple(components),
        noise_bits=noise,
        fresh_factors=max(a.fresh_factors, b.fresh_factors),
    )


def multiply(a: Ciphertext, b: Ciphertext) -> Ciphertext:
    """Homomorphic multiplication without relinearization.

    Component vectors convolve, so degree(a*b) = degree(a) + degree(b).
    In the monomial encoding this *adds the encoded exponents* — the local
    neighborhood summation of §4.3.
    """
    _count("bgv.mul.count")
    _check_same_profile(a, b)
    profile = a.profile
    out_degree = a.degree + b.degree
    zero = RingElement.zero(profile.ring)
    components = [zero] * (out_degree + 1)
    for i, ca in enumerate(a.components):
        for j, cb in enumerate(b.components):
            components[i + j] = components[i + j] + ca * cb
    noise = (
        a.noise_bits + b.noise_bits + math.log2(profile.t) + math.log2(profile.n) + 1
    )
    _guard_noise(profile, noise)
    return Ciphertext(
        profile,
        tuple(components),
        noise_bits=noise,
        fresh_factors=a.fresh_factors + b.fresh_factors,
    )


def multiply_plain(ct: Ciphertext, plain: RingElement) -> Ciphertext:
    """Multiply by a plaintext polynomial (coefficients mod t)."""
    _count("bgv.mul_plain.count")
    profile = ct.profile
    lifted = RingElement.from_coeffs(
        profile.ring, [c % profile.t for c in plain.coeffs]
    )
    norm = max(1, lifted.infinity_norm())
    nonzero = sum(1 for c in plain.coeffs if c % profile.t)
    noise = ct.noise_bits + math.log2(norm) + math.log2(max(1, nonzero))
    _guard_noise(profile, noise)
    components = tuple(comp * lifted for comp in ct.components)
    return Ciphertext(
        profile, components, noise_bits=noise, fresh_factors=ct.fresh_factors
    )


def shift(ct: Ciphertext, degree: int) -> Ciphertext:
    """Multiply by the plaintext monomial x^degree (negacyclic rotation).

    Noise-free: this is how origin vertices move contributions into GROUP
    BY coefficient blocks (§4.5) without burning multiplication budget.
    """
    components = tuple(comp.shift(degree) for comp in ct.components)
    return Ciphertext(
        ct.profile,
        components,
        noise_bits=ct.noise_bits,
        fresh_factors=ct.fresh_factors,
    )


def encrypt_zero_like(pk: PublicKey, rng: random.Random) -> Ciphertext:
    """Encrypt the additive identity Enc(0) (used when a WHERE self clause
    fails, §4.4 "Final processing")."""
    return encrypt(pk, RingElement.zero(pk.profile.plaintext_ring), rng)


def relinearize(ct: Ciphertext, rlk: RelinKeySet | PreparedRelinKeySet) -> Ciphertext:
    """Reduce an arbitrary-degree ciphertext to degree 1.

    Performed once by the aggregator during global aggregation (§5).
    Folds the highest component repeatedly using the key for that power.

    With a :class:`PreparedRelinKeySet` (an offline-phase artifact) and a
    fold-capable backend, each fold runs in the evaluation domain: one
    forward transform per digit polynomial, pointwise multiply-accumulate
    against the pre-transformed key pieces, and a single inverse per
    output component — bit-identical to the sequential per-piece products
    because the NTT is linear mod q.
    """
    if ct.degree <= 1:
        return ct
    _count("bgv.relinearize.count")
    profile = ct.profile
    if rlk.max_power < ct.degree:
        raise CryptoError(
            f"relinearization keys cover powers up to {rlk.max_power}, "
            f"ciphertext has degree {ct.degree}"
        )
    base_bits = profile.relin_base_bits
    mask = (1 << base_bits) - 1
    components = list(ct.components)
    noise = ct.noise_bits
    ring = profile.ring
    use_fold = (
        isinstance(rlk, PreparedRelinKeySet)
        and base_bits <= backends.MAX_FOLD_DIGIT_BITS
        and backends.supports_fold(profile.n, profile.q)
    )
    while len(components) > 2:
        power = len(components) - 1
        top = components.pop()
        key = rlk.keys[power]
        # Decompose each coefficient of `top` in base T and accumulate the
        # key pieces.
        digits_per_piece: list[list[int]] = []
        remaining = [c for c in top.coeffs]
        for _ in key.pieces:
            digits_per_piece.append([c & mask for c in remaining])
            remaining = [c >> base_bits for c in remaining]
        if use_fold:
            _count("bgv.relinearize.fused")
            d0, d1 = backends.fold_multiply_accumulate(
                rlk.prepared_pieces(power), digits_per_piece, profile.n, profile.q
            )
            components[0] = components[0] + RingElement.from_coeffs(ring, d0)
            components[1] = components[1] + RingElement.from_coeffs(ring, d1)
        else:
            for (b_i, a_i), digits in zip(key.pieces, digits_per_piece):
                digit_poly = RingElement.from_coeffs(ring, digits)
                components[0] = components[0] + b_i * digit_poly
                components[1] = components[1] + a_i * digit_poly
        # Each fold adds t * sum_i d_i * e_i: bounded by l * n * T * B.
        added = (
            math.log2(profile.t)
            + base_bits
            + math.log2(profile.n)
            + math.log2(profile.error_bound)
            + math.log2(len(key.pieces))
        )
        noise = max(noise, added) + 1
    _guard_noise(profile, noise)
    return Ciphertext(
        profile,
        tuple(components),
        noise_bits=noise,
        fresh_factors=ct.fresh_factors,
    )


def _ring_bytes(element: RingElement) -> bytes:
    width = (element.params.q.bit_length() + 7) // 8
    return b"".join(c.to_bytes(width, "big") for c in element.coeffs)
