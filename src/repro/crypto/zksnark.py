"""Simulated Groth16 zero-knowledge proofs.

The paper proves ciphertext well-formedness with ZoKrates-compiled
Groth16 circuits (§4.6, §5).  Reimplementing pairing-based SNARKs is out
of scope for this reproduction, so this module provides a *simulation*
with the same interface, security behaviour, and cost model:

* **Trusted setup** — performed once by the genesis committee
  (:meth:`Groth16System.setup`), exactly as the paper requires for
  Groth16.  The setup holds a secret MAC key per circuit.

* **Soundness** — :meth:`Groth16System.prove` evaluates the *real*
  relation (re-encrypting with the witness randomness, re-multiplying the
  claimed inputs) and refuses to emit a proof for a false statement.
  Because proof tokens are MACs under the setup secret, a Byzantine
  device cannot mint a token for a statement it cannot prove; the test
  suite exercises forgery attempts via :func:`forge_proof`.

* **Zero knowledge** — tokens depend only on the statement digest, never
  on the witness.

* **Costs** — proof size is the Groth16 constant 192 bytes (3 compressed
  BLS12-381 group elements); proving time scales with circuit size and
  verification time scales linearly with the public input length, which
  for Mycelium includes the (large) ciphertexts — the effect that
  dominates aggregator cost in Figure 9(b).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.crypto.hashes import constant_time_equal, prf, protocol_hash
from repro.errors import ProofError

PROOF_BYTES = 192  # 2 G1 + 1 G2 compressed points on BLS12-381.

#: Groth16 cost-model constants, calibrated to the paper's reports:
#: ~1 minute of proving per device (§6.4 — d * C_q leaf proofs plus one
#: aggregation proof) and ciphertext-dominated verification (§6.6 /
#: Figure 9b).
PROVING_SECONDS_PER_CONSTRAINT = 1.0e-5
VERIFY_SECONDS_BASE = 2.0e-3
VERIFY_SECONDS_PER_PUBLIC_BYTE = 1.7e-7


def canonical_encode(obj: object) -> bytes:
    """Deterministic, injective encoding for statement payloads."""
    if isinstance(obj, bytes):
        return b"B" + len(obj).to_bytes(8, "big") + obj
    if isinstance(obj, bool):
        return b"b" + (b"\x01" if obj else b"\x00")
    if isinstance(obj, int):
        raw = obj.to_bytes((obj.bit_length() + 8) // 8 + 1, "big", signed=True)
        return b"I" + len(raw).to_bytes(8, "big") + raw
    if isinstance(obj, str):
        return canonical_encode(obj.encode("utf-8")).replace(b"B", b"S", 1)
    if isinstance(obj, (tuple, list)):
        inner = b"".join(canonical_encode(x) for x in obj)
        return b"T" + len(obj).to_bytes(8, "big") + inner
    if obj is None:
        return b"N"
    raise ProofError(f"cannot canonically encode {type(obj).__name__}")


@dataclass(frozen=True)
class Statement:
    """A public statement: which circuit, and its public inputs."""

    circuit: str
    public_inputs: tuple

    def digest(self) -> bytes:
        return protocol_hash(
            b"statement", self.circuit.encode(), canonical_encode(self.public_inputs)
        )

    @property
    def public_input_bytes(self) -> int:
        return len(canonical_encode(self.public_inputs))


@dataclass(frozen=True)
class Proof:
    """A (simulated) Groth16 proof."""

    circuit: str
    statement_digest: bytes
    token: bytes

    @property
    def size_bytes(self) -> int:
        return PROOF_BYTES


@dataclass(frozen=True)
class Circuit:
    """A relation: ``check(public_inputs, witness) -> bool`` plus a
    constraint count for the cost model."""

    name: str
    check: Callable[[tuple, object], bool]
    num_constraints: int


class Groth16System:
    """The proving/verification system for a fixed set of circuits."""

    def __init__(self, circuits: dict[str, Circuit], setup_secret: bytes):
        self._circuits = dict(circuits)
        self._setup_secret = setup_secret

    @classmethod
    def setup(
        cls, circuits: list[Circuit], rng: random.Random
    ) -> Groth16System:
        """The trusted-setup ceremony (run by the genesis committee)."""
        secret = bytes(rng.randrange(256) for _ in range(32))
        return cls({c.name: c for c in circuits}, secret)

    def circuit(self, name: str) -> Circuit:
        try:
            return self._circuits[name]
        except KeyError as exc:
            raise ProofError(f"no circuit named '{name}' in this setup") from exc

    def prove(self, statement: Statement, witness: object) -> Proof:
        """Produce a proof; raises :class:`ProofError` if the witness does
        not satisfy the circuit (a sound prover cannot prove falsehoods)."""
        circuit = self.circuit(statement.circuit)
        if not circuit.check(statement.public_inputs, witness):
            raise ProofError(
                f"witness does not satisfy circuit '{statement.circuit}'"
            )
        digest = statement.digest()
        token = prf(self._setup_secret, b"groth16", digest)[:PROOF_BYTES]
        token = token + prf(self._setup_secret, b"groth16-pad", digest)[: PROOF_BYTES - len(token)]
        return Proof(
            circuit=statement.circuit, statement_digest=digest, token=token[:PROOF_BYTES]
        )

    def verify(self, statement: Statement, proof: Proof) -> bool:
        """Check a proof against a statement."""
        if proof.circuit != statement.circuit:
            return False
        digest = statement.digest()
        if proof.statement_digest != digest:
            return False
        expected = prf(self._setup_secret, b"groth16", digest)[:PROOF_BYTES]
        expected = expected + prf(self._setup_secret, b"groth16-pad", digest)[
            : PROOF_BYTES - len(expected)
        ]
        return constant_time_equal(proof.token, expected[:PROOF_BYTES])

    # -- cost model ---------------------------------------------------------

    def proving_seconds(self, circuit_name: str) -> float:
        return self.circuit(circuit_name).num_constraints * (
            PROVING_SECONDS_PER_CONSTRAINT
        )

    @staticmethod
    def verification_seconds(statement: Statement) -> float:
        """Groth16 verification is linear in the public I/O size — with
        4.3 MB ciphertexts in the statement, this dominates (§6.6)."""
        return VERIFY_SECONDS_BASE + (
            statement.public_input_bytes * VERIFY_SECONDS_PER_PUBLIC_BYTE
        )


def forge_proof(statement: Statement, rng: random.Random) -> Proof:
    """An adversary's best effort without the setup secret: a random
    token.  Verification rejects it (except with negligible probability),
    which is what the Byzantine-device tests assert."""
    token = bytes(rng.randrange(256) for _ in range(PROOF_BYTES))
    return Proof(
        circuit=statement.circuit, statement_digest=statement.digest(), token=token
    )
