"""Reed-Solomon robust decoding over the Shamir code.

A degree-(t-1) Shamir sharing evaluated at n distinct indices *is* a
Reed-Solomon codeword with minimum distance n - t + 1, so up to
``(n - t) // 2`` wrong shares can be corrected — and the wrong indices
identified — in a single pass, with no identification round-trip and no
subset enumeration (§5: "c + 1 honest nodes can detect any errors
introduced by dishonest nodes").  This module implements:

* :func:`robust_reconstruct` — Gao's decoder for one codeword: returns
  ``(secret, flagged_indices)`` or raises
  :class:`~repro.errors.RobustDecodingError` when too few honest shares
  remain (never a wrong secret).
* :class:`BatchOpener` — the amortized half: all per-index-set work
  (Lagrange weights at zero, evaluation weights at every non-base
  index) is computed once and reused across arbitrarily many openings
  against the same share indices.
* :func:`batch_robust_reconstruct` — many codewords over one index set
  (the shape of a wide-histogram decryption: one codeword per ring
  coefficient) decoded with **one** error-locator computation: a
  Fiat-Shamir random combination of the rows is Gao-decoded once, the
  surviving honest base opens every row with plain Lagrange arithmetic,
  and per-row deviations are re-checked exactly so the flagged set is
  deterministic.

Everything here is plain integer arithmetic mod a prime — no compute
backend involvement — so results are bit-identical across backends and
worker counts by construction.

Polynomials are coefficient lists, lowest degree first, with no
trailing zeros ("[]" is the zero polynomial).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.crypto.hashes import hash_to_int
from repro.errors import RobustDecodingError, SecretSharingError


def max_correctable_errors(num_shares: int, threshold: int) -> int:
    """Unique-decoding radius of the (n, t) Shamir/RS code:
    ``(n - t) // 2`` wrong shares can be corrected."""
    return max(0, (num_shares - threshold) // 2)


# ---------------------------------------------------------------------------
# Polynomial arithmetic over GF(q), coefficient lists lowest-first
# ---------------------------------------------------------------------------


def _trim(poly: list[int]) -> list[int]:
    while poly and poly[-1] == 0:
        poly.pop()
    return poly


def _poly_mul(a: list[int], b: list[int], q: int) -> list[int]:
    if not a or not b:
        return []
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai:
            for j, bj in enumerate(b):
                out[i + j] = (out[i + j] + ai * bj) % q
    return _trim(out)


def _poly_sub(a: list[int], b: list[int], q: int) -> list[int]:
    out = [0] * max(len(a), len(b))
    for i, ai in enumerate(a):
        out[i] = ai
    for i, bi in enumerate(b):
        out[i] = (out[i] - bi) % q
    return _trim(out)


def _poly_divmod(a: list[int], b: list[int], q: int) -> tuple[list[int], list[int]]:
    if not b:
        raise ZeroDivisionError("polynomial division by zero")
    rem = list(a)
    quo = [0] * max(0, len(a) - len(b) + 1)
    inv_lead = pow(b[-1], q - 2, q)
    for shift in range(len(a) - len(b), -1, -1):
        coeff = (rem[shift + len(b) - 1] * inv_lead) % q
        if coeff:
            quo[shift] = coeff
            for i, bi in enumerate(b):
                rem[shift + i] = (rem[shift + i] - coeff * bi) % q
    return _trim(quo), _trim(rem)


def _poly_eval(poly: Sequence[int], x: int, q: int) -> int:
    acc = 0
    for coeff in reversed(poly):
        acc = (acc * x + coeff) % q
    return acc


def _interpolate(xs: Sequence[int], ys: Sequence[int], q: int) -> list[int]:
    """Full Lagrange interpolation through all (x_i, y_i), O(n^2)."""
    master = [1]
    for x in xs:
        master = _poly_mul(master, [(-x) % q, 1], q)
    result: list[int] = []
    for x, y in zip(xs, ys):
        if y == 0:
            continue
        basis, _ = _poly_divmod(master, [(-x) % q, 1], q)
        denom = _poly_eval(basis, x, q)
        scale = (y * pow(denom, q - 2, q)) % q
        result = _poly_sub(result, [(-scale * c) % q for c in basis], q)
    return _trim(result)


def _validate_indices(indices: Sequence[int], threshold: int) -> None:
    if threshold < 1:
        raise SecretSharingError("threshold must be >= 1")
    seen = set()
    for index in indices:
        if index < 1:
            raise SecretSharingError(
                f"share index {index} is degenerate (must be >= 1)"
            )
        if index in seen:
            raise SecretSharingError(f"duplicate share index {index}")
        seen.add(index)
    if len(indices) < threshold:
        raise RobustDecodingError(
            f"{len(indices)} shares cannot meet threshold {threshold}"
        )


# ---------------------------------------------------------------------------
# Gao's decoder
# ---------------------------------------------------------------------------


def _gao_decode(
    xs: Sequence[int], ys: Sequence[int], threshold: int, q: int
) -> tuple[list[int], set[int]]:
    """Decode one received word into (message polynomial, flagged x's).

    Gao's algorithm: run the extended Euclidean algorithm on
    g0 = prod(x - x_i) and the full interpolation g1, stopping at the
    first remainder of degree < (n + t) / 2; the message polynomial is
    r / v (exact division), and any nonzero remainder or excess degree
    means more than ``(n - t) // 2`` errors — undecodable.
    """
    n, k = len(xs), threshold
    g0 = [1]
    for x in xs:
        g0 = _poly_mul(g0, [(-x) % q, 1], q)
    g1 = _interpolate(xs, ys, q)

    # Partial extended Euclid tracking v with r = u*g0 + v*g1.
    r_prev, r_cur = g0, g1
    v_prev, v_cur = [], [1]
    # Stop at deg(r) < (n + k) / 2  <=>  2*deg(r) < n + k.
    while r_cur and 2 * (len(r_cur) - 1) >= n + k:
        quo, rem = _poly_divmod(r_prev, r_cur, q)
        r_prev, r_cur = r_cur, rem
        v_prev, v_cur = v_cur, _poly_sub(v_prev, _poly_mul(quo, v_cur, q), q)

    if not v_cur:
        raise RobustDecodingError("error locator degenerated to zero")
    message, remainder = _poly_divmod(r_cur, v_cur, q)
    if remainder or len(message) > k:
        raise RobustDecodingError(
            f"more than {max_correctable_errors(n, k)} of {n} shares are "
            "wrong; no degree-"
            f"{k - 1} polynomial explains the received word"
        )
    flagged = {
        x for x, y in zip(xs, ys) if _poly_eval(message, x, q) != y
    }
    if len(flagged) > max_correctable_errors(n, k):
        raise RobustDecodingError(
            f"decoded polynomial disagrees with {len(flagged)} shares, "
            f"beyond the unique-decoding radius "
            f"{max_correctable_errors(n, k)}"
        )
    return message, flagged


def robust_reconstruct(
    shares: Sequence, threshold: int, field: int
) -> tuple[int, set[int]]:
    """Reconstruct a secret from ``n`` shares tolerating up to
    ``(n - t) // 2`` wrong values, in one pass.

    ``shares`` is any sequence of objects with ``.index``/``.value``
    (e.g. :class:`repro.crypto.shamir.Share`) or ``(index, value)``
    pairs.  Returns ``(secret, flagged_indices)`` where the flagged set
    is exactly the indices whose values disagree with the decoded
    polynomial.  Raises :class:`~repro.errors.RobustDecodingError` when
    too few honest shares remain — never a wrong secret.
    """
    pairs = [
        (s.index, s.value) if hasattr(s, "value") else (s[0], s[1])
        for s in shares
    ]
    xs = [p[0] for p in pairs]
    ys = [p[1] % field for p in pairs]
    _validate_indices(xs, threshold)
    message, flagged = _gao_decode(xs, ys, threshold, field)
    return _poly_eval(message, 0, field), flagged


# ---------------------------------------------------------------------------
# Batch opening: amortize per-index-set work across many codewords
# ---------------------------------------------------------------------------


class BatchOpener:
    """Precomputed opening machinery for one share-index set.

    Splits the indices into a ``base`` of the first ``threshold``
    entries and ``extras``; precomputes the Lagrange weights that (a)
    evaluate the base interpolation at zero (the secret) and (b) at
    every extra index (the consistency prediction).  After the one-time
    O(n^2) setup, each row costs O(t * n) multiplications and no
    further interpolation or error-locator work.
    """

    def __init__(self, indices: Sequence[int], threshold: int, field: int):
        _validate_indices(indices, threshold)
        self.field = field
        self.threshold = threshold
        self.indices = tuple(indices)
        self.base = self.indices[:threshold]
        self.extras = self.indices[threshold:]
        q = field
        #: denominators prod_{j != i} (x_i - x_j) over the base.
        self._denom_inv = []
        for i, xi in enumerate(self.base):
            denom = 1
            for j, xj in enumerate(self.base):
                if i != j:
                    denom = (denom * (xi - xj)) % q
            self._denom_inv.append(pow(denom, q - 2, q))
        self._weights_cache: dict[int, tuple[int, ...]] = {}
        self.zero_weights = self.weights_at(0)
        self.extra_weights = {x: self.weights_at(x) for x in self.extras}

    def weights_at(self, x: int) -> tuple[int, ...]:
        """Lagrange weights over the base evaluated at ``x``:
        ``f(x) = sum_i w_i * y_base[i]`` for any f of degree < t."""
        cached = self._weights_cache.get(x)
        if cached is not None:
            return cached
        q = self.field
        k = len(self.base)
        prefix = [1] * (k + 1)
        for i, xi in enumerate(self.base):
            prefix[i + 1] = (prefix[i] * (x - xi)) % q
        suffix = [1] * (k + 1)
        for i in range(k - 1, -1, -1):
            suffix[i] = (suffix[i + 1] * (x - self.base[i])) % q
        weights = tuple(
            (prefix[i] * suffix[i + 1] * self._denom_inv[i]) % q
            for i in range(k)
        )
        self._weights_cache[x] = weights
        return weights

    def open(self, base_values: Sequence[int]) -> int:
        """The secret f(0) from the base values alone."""
        q = self.field
        return (
            sum(w * v for w, v in zip(self.zero_weights, base_values)) % q
        )

    def eval_at(self, base_values: Sequence[int], x: int) -> int:
        q = self.field
        return (
            sum(w * v for w, v in zip(self.weights_at(x), base_values)) % q
        )


@dataclass(frozen=True)
class BatchStats:
    """What one batched decode actually did — the single-pass evidence.

    ``locator_computations`` counts Gao runs: 1 for the combined
    codeword plus one per row that needed the fallback (a row whose
    corruption the Fiat-Shamir combination missed, which a 256-bit
    challenge makes astronomically unlikely).
    """

    width: int
    locator_computations: int
    errors_corrected: int


def _fiat_shamir_weights(
    indices: Sequence[int], rows: Sequence[Sequence[int]], field: int, width: int
) -> list[int]:
    """Deterministic combination weights 1, r, r^2, ... with r derived
    by hashing the entire opening transcript."""
    parts = [b"robust-batch", len(indices).to_bytes(4, "big")]
    for index in indices:
        parts.append(index.to_bytes(8, "big"))
    for row in rows:
        for value in row:
            parts.append(value.to_bytes((value.bit_length() + 7) // 8 or 1, "big"))
    r = hash_to_int(*parts) % field
    weights = [1] * width
    for j in range(1, width):
        weights[j] = (weights[j - 1] * r) % field
    return weights


def batch_robust_reconstruct(
    indices: Sequence[int],
    rows: Sequence[Sequence[int]],
    threshold: int,
    field: int,
) -> tuple[list[int], set[int], BatchStats]:
    """Open many codewords sharing one index set with one error locator.

    ``rows[j][i]`` is share ``indices[i]``'s value for codeword ``j``
    (e.g. ring coefficient ``j`` of member ``i``'s partial decryption).
    Returns ``(secrets, flagged_indices, stats)`` where ``secrets[j]``
    is codeword ``j``'s reconstruction and ``flagged_indices`` is
    exactly the set of share indices whose value deviates from the
    decoded polynomial in at least one row.

    The error-locator work (Gao) runs once, on a Fiat-Shamir random
    combination of all rows; the combination's flagged set pins the
    honest base, every row is then opened with the precomputed
    :class:`BatchOpener` weights, and each row's deviations are
    re-verified exactly so the flagged set is deterministic, not just
    overwhelmingly probable.
    """
    xs = list(indices)
    _validate_indices(xs, threshold)
    width = len(rows)
    if width == 0:
        return [], set(), BatchStats(0, 0, 0)
    q = field
    n = len(xs)
    for j, row in enumerate(rows):
        if len(row) != n:
            raise SecretSharingError(
                f"row {j} has {len(row)} values for {n} share indices"
            )

    weights = _fiat_shamir_weights(xs, rows, q, width)
    combined = [
        sum(weights[j] * rows[j][i] for j in range(width)) % q
        for i in range(n)
    ]
    _, flagged = _gao_decode(xs, combined, threshold, q)
    locators = 1

    honest = [x for x in xs if x not in flagged]
    if len(honest) < threshold:
        raise RobustDecodingError(
            f"only {len(honest)} honest shares remain, need {threshold}"
        )
    opener = BatchOpener(honest, threshold, q)
    honest_pos = {x: xs.index(x) for x in honest}
    flagged_pos = {x: xs.index(x) for x in flagged}

    secrets: list[int] = []
    all_flagged: set[int] = set()
    errors = 0
    for row in rows:
        base_values = [row[honest_pos[x]] % q for x in opener.base]
        consistent = all(
            sum(
                w * v
                for w, v in zip(opener.extra_weights[x], base_values)
            ) % q == row[honest_pos[x]] % q
            for x in opener.extras
        )
        if not consistent:
            # The combined codeword missed this row's corruption: fall
            # back to a dedicated Gao decode (extra locator).
            message, row_flagged = _gao_decode(
                xs, [v % q for v in row], threshold, q
            )
            locators += 1
            secrets.append(_poly_eval(message, 0, q))
            all_flagged |= row_flagged
            errors += len(row_flagged)
            continue
        secrets.append(opener.open(base_values))
        for x, pos in flagged_pos.items():
            predicted = opener.eval_at(base_values, x)
            if predicted != row[pos] % q:
                all_flagged.add(x)
                errors += 1
    return secrets, all_flagged, BatchStats(width, locators, errors)
