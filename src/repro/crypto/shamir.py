"""Shamir secret sharing over a prime field.

The committee holds the BGV decryption key as Shamir shares: each
coefficient of the secret ring element is shared independently over Z_q
(the BGV ciphertext modulus is prime, so it doubles as the sharing field).
Because BGV decryption is *linear* in the key, committee members can
produce partial decryptions from their shares locally and any
``threshold`` of them recombine via Lagrange interpolation — this is the
arithmetic the SCALE-MAMBA MPC performs in the paper (§5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.modmath import invmod, weighted_sums_mod
from repro.errors import SecretSharingError


@dataclass(frozen=True)
class Share:
    """One party's share: the polynomial evaluated at ``x = index``."""

    index: int
    value: int

    def __post_init__(self) -> None:
        if self.index < 1:
            raise SecretSharingError("share indices must be >= 1")


@dataclass(frozen=True)
class VectorShare:
    """A share of a vector secret (e.g. a ring element's coefficients)."""

    index: int
    values: tuple[int, ...]

    def component(self, i: int) -> Share:
        return Share(self.index, self.values[i])


def _random_polynomial(
    secret: int, degree: int, field: int, rng: random.Random
) -> list[int]:
    """Coefficients [secret, a1, ..., a_degree] of a random polynomial."""
    return [secret % field] + [rng.randrange(field) for _ in range(degree)]


def _evaluate(coeffs: list[int], x: int, field: int) -> int:
    acc = 0
    for c in reversed(coeffs):
        acc = (acc * x + c) % field
    return acc


def share_secret(
    secret: int,
    threshold: int,
    num_shares: int,
    field: int,
    rng: random.Random,
    return_polynomial: bool = False,
) -> list[Share] | tuple[list[Share], list[int]]:
    """Split ``secret`` into ``num_shares`` shares, any ``threshold`` of
    which reconstruct it.

    ``return_polynomial`` exposes the sharing polynomial for callers that
    need to commit to it (Feldman VSS / VSR).
    """
    if not 1 <= threshold <= num_shares:
        raise SecretSharingError(
            f"invalid threshold {threshold} for {num_shares} shares"
        )
    if num_shares >= field:
        raise SecretSharingError("field too small for that many shares")
    poly = _random_polynomial(secret, threshold - 1, field, rng)
    shares = [Share(i, _evaluate(poly, i, field)) for i in range(1, num_shares + 1)]
    if return_polynomial:
        return shares, poly
    return shares


def lagrange_coefficients_at_zero(indices: list[int], field: int) -> dict[int, int]:
    """Lagrange basis coefficients lambda_i such that
    f(0) = sum_i lambda_i * f(i) for any polynomial of degree < len(indices)."""
    if len(set(indices)) != len(indices):
        raise SecretSharingError("duplicate share indices")
    coeffs = {}
    for i in indices:
        numerator = 1
        denominator = 1
        for j in indices:
            if j == i:
                continue
            numerator = (numerator * (-j)) % field
            denominator = (denominator * (i - j)) % field
        coeffs[i] = (numerator * invmod(denominator, field)) % field
    return coeffs


def reconstruct_secret(shares: list[Share], field: int) -> int:
    """Recombine shares via Lagrange interpolation at zero."""
    if not shares:
        raise SecretSharingError("no shares given")
    indices = [s.index for s in shares]
    lagrange = lagrange_coefficients_at_zero(indices, field)
    return sum(lagrange[s.index] * s.value for s in shares) % field


def share_vector(
    values: list[int],
    threshold: int,
    num_shares: int,
    field: int,
    rng: random.Random,
) -> list[VectorShare]:
    """Share each component of a vector independently."""
    per_component = [
        share_secret(v, threshold, num_shares, field, rng) for v in values
    ]
    return [
        VectorShare(
            index=i + 1,
            values=tuple(per_component[c][i].value for c in range(len(values))),
        )
        for i in range(num_shares)
    ]


def reconstruct_vector(shares: list[VectorShare], field: int) -> list[int]:
    """Recombine a vector secret from vector shares.

    Every coefficient recombines against the same Lagrange weights, so
    the whole vector runs as one exact limb-vectorized weighted sum
    (:func:`repro.crypto.modmath.weighted_sums_mod`) — bit-identical to
    the per-coefficient big-int arithmetic it replaces.
    """
    if not shares:
        raise SecretSharingError("no shares given")
    length = len(shares[0].values)
    if any(len(s.values) != length for s in shares):
        raise SecretSharingError("vector shares have inconsistent lengths")
    if length == 0:
        return []
    indices = [s.index for s in shares]
    lagrange = lagrange_coefficients_at_zero(indices, field)
    return weighted_sums_mod(
        [[v % field for v in s.values] for s in shares],
        [lagrange[s.index] for s in shares],
        field,
    )
