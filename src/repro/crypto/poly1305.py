"""Poly1305 one-time authenticator (RFC 8439).

Combined with ChaCha20 in :mod:`repro.crypto.aead` to build the AE scheme
the paper uses for the innermost onion layer and for path-setup messages.
Validated against the RFC 8439 test vector in the test suite.
"""

from __future__ import annotations

from repro.errors import CryptoError

TAG_BYTES = 16
_P = (1 << 130) - 5
_R_CLAMP = 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF


def poly1305_mac(key: bytes, message: bytes) -> bytes:
    """Compute the 16-byte Poly1305 tag of ``message`` under a 32-byte
    one-time key."""
    if len(key) != 32:
        raise CryptoError("Poly1305 keys are 32 bytes")
    r = int.from_bytes(key[:16], "little") & _R_CLAMP
    s = int.from_bytes(key[16:], "little")
    accumulator = 0
    for start in range(0, len(message), 16):
        block = message[start : start + 16]
        value = int.from_bytes(block + b"\x01", "little")
        accumulator = ((accumulator + value) * r) % _P
    tag = (accumulator + s) % (1 << 128)
    return tag.to_bytes(16, "little")
