"""Arithmetic in the quotient ring R_q = Z_q[x] / (x^N + 1).

:class:`RingElement` is an immutable value type; all operators return new
elements.  Multiplication dispatches through the active compute backend
(:mod:`repro.runtime.backends`): the pure-Python reference uses the
cached negacyclic NTT when the modulus supports it (every BGV modulus we
generate does) and falls back to schoolbook multiplication otherwise;
the optional NumPy backend computes the identical product vectorized.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto.modmath import centered_mod
from repro.errors import ParameterError
from repro.runtime import backends


@dataclass(frozen=True)
class RingParams:
    """Dimensions of a polynomial quotient ring.

    Attributes:
        n: polynomial degree (power of two); the ring is Z_q[x]/(x^n + 1).
        q: coefficient modulus.
    """

    n: int
    q: int

    def __post_init__(self) -> None:
        if self.n < 2 or self.n & (self.n - 1):
            raise ParameterError("ring degree must be a power of two >= 2")
        if self.q < 2:
            raise ParameterError("modulus must be >= 2")

    @property
    def supports_ntt(self) -> bool:
        return (self.q - 1) % (2 * self.n) == 0


@dataclass(frozen=True)
class RingElement:
    """An element of R_q, stored as a coefficient list of length n."""

    params: RingParams
    coeffs: tuple[int, ...] = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.coeffs) != self.params.n:
            raise ParameterError(
                f"expected {self.params.n} coefficients, got {len(self.coeffs)}"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_coeffs(cls, params: RingParams, coeffs: list[int]) -> RingElement:
        """Build an element from an arbitrary-length coefficient list,
        zero-padding or rejecting overly long input."""
        if len(coeffs) > params.n:
            raise ParameterError("too many coefficients for ring degree")
        padded = list(coeffs) + [0] * (params.n - len(coeffs))
        return cls(params, tuple(c % params.q for c in padded))

    @classmethod
    def zero(cls, params: RingParams) -> RingElement:
        return cls(params, (0,) * params.n)

    @classmethod
    def one(cls, params: RingParams) -> RingElement:
        return cls.monomial(params, 0)

    @classmethod
    def constant(cls, params: RingParams, value: int) -> RingElement:
        return cls.from_coeffs(params, [value])

    @classmethod
    def monomial(cls, params: RingParams, degree: int, coeff: int = 1) -> RingElement:
        """Return ``coeff * x^degree``, reducing modulo x^n + 1.

        Degrees >= n wrap with a sign flip, matching the quotient relation
        x^n = -1.
        """
        sign_flips, d = divmod(degree, params.n)
        value = coeff if sign_flips % 2 == 0 else -coeff
        coeffs = [0] * params.n
        coeffs[d] = value % params.q
        return cls(params, tuple(coeffs))

    @classmethod
    def random_uniform(cls, params: RingParams, rng: random.Random) -> RingElement:
        return cls(params, tuple(rng.randrange(params.q) for _ in range(params.n)))

    @classmethod
    def random_ternary(cls, params: RingParams, rng: random.Random) -> RingElement:
        """Uniform over {-1, 0, 1}^n — the BGV secret/ephemeral distribution."""
        return cls(
            params,
            tuple(rng.choice((-1, 0, 1)) % params.q for _ in range(params.n)),
        )

    @classmethod
    def random_bounded(
        cls, params: RingParams, bound: int, rng: random.Random
    ) -> RingElement:
        """Uniform over [-bound, bound]^n — the BGV error distribution.

        A bounded-uniform distribution stands in for the discrete Gaussian;
        it has the same worst-case noise-growth behaviour, which is what the
        budget analysis relies on.
        """
        return cls(
            params,
            tuple(rng.randint(-bound, bound) % params.q for _ in range(params.n)),
        )

    # -- arithmetic --------------------------------------------------------

    def _check_compatible(self, other: RingElement) -> None:
        if self.params != other.params:
            raise ParameterError("ring parameters do not match")

    def __add__(self, other: RingElement) -> RingElement:
        self._check_compatible(other)
        q = self.params.q
        return RingElement(
            self.params, tuple((a + b) % q for a, b in zip(self.coeffs, other.coeffs))
        )

    def __sub__(self, other: RingElement) -> RingElement:
        self._check_compatible(other)
        q = self.params.q
        return RingElement(
            self.params, tuple((a - b) % q for a, b in zip(self.coeffs, other.coeffs))
        )

    def __neg__(self) -> RingElement:
        q = self.params.q
        return RingElement(self.params, tuple((-a) % q for a in self.coeffs))

    def __mul__(self, other: RingElement | int) -> RingElement:
        if isinstance(other, int):
            return self.scale(other)
        self._check_compatible(other)
        n, q = self.params.n, self.params.q
        product = backends.ring_multiply(self.coeffs, other.coeffs, n, q)
        return RingElement(self.params, tuple(product))

    __rmul__ = __mul__

    def scale(self, scalar: int) -> RingElement:
        q = self.params.q
        s = scalar % q
        return RingElement(self.params, tuple((a * s) % q for a in self.coeffs))

    def shift(self, degree: int) -> RingElement:
        """Multiply by the monomial x^degree (a negacyclic rotation).

        This is how the origin vertex moves its histogram contribution into
        a GROUP BY coefficient block without a ciphertext-ciphertext
        multiplication.
        """
        n, q = self.params.n, self.params.q
        sign_flips, d = divmod(degree, n)
        flip = sign_flips % 2 == 1
        out = [0] * n
        for i, c in enumerate(self.coeffs):
            j = i + d
            sign = -1 if flip else 1
            if j >= n:
                j -= n
                sign = -sign
            out[j] = (sign * c) % q
        return RingElement(self.params, tuple(out))

    # -- views -------------------------------------------------------------

    def centered(self) -> list[int]:
        """Coefficients reduced into (-q/2, q/2]."""
        q = self.params.q
        return [centered_mod(c, q) for c in self.coeffs]

    def infinity_norm(self) -> int:
        return max(abs(c) for c in self.centered())

    def lift_mod(self, t: int) -> list[int]:
        """Centered coefficients reduced modulo ``t`` (plaintext recovery)."""
        return [c % t for c in self.centered()]

    def is_zero(self) -> bool:
        return all(c == 0 for c in self.coeffs)

    def __bool__(self) -> bool:
        return not self.is_zero()
