"""Negacyclic number-theoretic transform over Z_q.

BGV ciphertext polynomials live in R_q = Z_q[x] / (x^N + 1) with N a power
of two.  Multiplication in that ring is a *negacyclic* convolution, computed
here with the standard trick: pre-multiply coefficient i by psi^i (psi a
primitive 2N-th root of unity), run a length-N NTT with omega = psi^2,
pointwise-multiply, invert, and post-multiply by psi^{-i}.

All arithmetic uses Python integers so the modulus can be arbitrarily large
(the paper's profile uses a 550-bit prime).  The transform tables for a
given (N, q) pair are cached because building them costs more than a single
transform.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict

from repro.crypto.modmath import invmod, primitive_root_of_unity
from repro.errors import ParameterError
from repro.telemetry.runtime import count as _count


class NttContext:
    """Precomputed tables for negacyclic NTTs of length ``n`` modulo ``q``.

    ``q`` must be a prime with ``q ≡ 1 (mod 2n)`` so that a primitive
    2n-th root of unity exists.
    """

    def __init__(self, n: int, q: int):
        if n < 2 or n & (n - 1):
            raise ParameterError("NTT length must be a power of two >= 2")
        if (q - 1) % (2 * n) != 0:
            raise ParameterError(f"q={q} does not support length-{n} negacyclic NTT")
        self.n = n
        self.q = q
        self.psi = primitive_root_of_unity(2 * n, q)
        self.psi_inv = invmod(self.psi, q)
        self.n_inv = invmod(n, q)
        # Powers of psi in bit-reversed order drive the Cooley-Tukey /
        # Gentleman-Sande butterflies (Longa-Naehrig layout), which fuses the
        # psi twisting into the transform itself.
        self._psi_rev = self._bit_reversed_powers(self.psi)
        self._psi_inv_rev = self._bit_reversed_powers(self.psi_inv)

    def _bit_reversed_powers(self, base: int) -> list[int]:
        n, q = self.n, self.q
        bits = n.bit_length() - 1
        powers = [1] * n
        acc = 1
        plain = [1] * n
        for i in range(1, n):
            acc = (acc * base) % q
            plain[i] = acc
        for i in range(n):
            rev = int(format(i, f"0{bits}b")[::-1], 2) if bits else 0
            powers[rev] = plain[i]
        return powers

    def forward(self, coeffs: list[int]) -> list[int]:
        """In-place-style forward negacyclic NTT; returns a new list."""
        _count("ntt.forward.count")
        a = [c % self.q for c in coeffs]
        n, q = self.n, self.q
        psi = self._psi_rev
        t = n
        m = 1
        while m < n:
            t //= 2
            for i in range(m):
                j1 = 2 * i * t
                j2 = j1 + t
                s = psi[m + i]
                for j in range(j1, j2):
                    u = a[j]
                    v = (a[j + t] * s) % q
                    a[j] = (u + v) % q
                    a[j + t] = (u - v) % q
            m *= 2
        return a

    def inverse(self, values: list[int]) -> list[int]:
        """Inverse negacyclic NTT; returns coefficient representation."""
        _count("ntt.inverse.count")
        a = list(values)
        n, q = self.n, self.q
        psi_inv = self._psi_inv_rev
        t = 1
        m = n
        while m > 1:
            j1 = 0
            h = m // 2
            for i in range(h):
                j2 = j1 + t
                s = psi_inv[h + i]
                for j in range(j1, j2):
                    u = a[j]
                    v = a[j + t]
                    a[j] = (u + v) % q
                    a[j + t] = ((u - v) * s) % q
                j1 += 2 * t
            t *= 2
            m = h
        n_inv = self.n_inv
        return [(x * n_inv) % q for x in a]

    def multiply(self, a: list[int], b: list[int]) -> list[int]:
        """Negacyclic product of two coefficient vectors of length n."""
        if len(a) != self.n or len(b) != self.n:
            raise ParameterError("operands must have length n")
        fa = self.forward(a)
        fb = self.forward(b)
        q = self.q
        prod = [(x * y) % q for x, y in zip(fa, fb)]
        return self.inverse(prod)


#: Most (n, q) pairs a process touches: one ciphertext and one plaintext
#: ring per profile, plus a handful of test rings.  Least-recently-used
#: pairs are evicted beyond this, bounding memory when many parameter
#: sets are exercised in one process (sweeps, equivalence tests).
CONTEXT_CACHE_SIZE = 32

_CONTEXTS: OrderedDict[tuple[int, int], NttContext] = OrderedDict()
_CONTEXTS_LOCK = threading.Lock()
_CONTEXTS_PID = os.getpid()


def _reset_if_forked() -> None:
    """Drop cache state inherited through fork (must hold the lock).

    A forked ``TaskFabric`` worker starts with a copy of the parent's
    populated cache: its hit/miss counters then describe the parent's
    warm-up, not the worker's own behaviour, and a parent cache already
    at the LRU bound makes every worker start at the bound too.  Each
    process owns its cache, so the first lookup in a new pid starts
    empty and counts an honest miss.
    """
    global _CONTEXTS_PID
    pid = os.getpid()
    if pid != _CONTEXTS_PID:
        _CONTEXTS.clear()
        _CONTEXTS_PID = pid


def get_context(n: int, q: int) -> NttContext:
    """Return a cached :class:`NttContext` for ``(n, q)``.

    Table construction dominates single transforms, so the cache
    hit/miss split (``ntt.cache.hits`` / ``ntt.cache.misses``) is the
    first thing to inspect when ring operations look slow.

    The cache is safe under concurrent callers (worker pools, threaded
    benchmark harnesses): lookups and insertions hold a lock, the
    hit/miss counters stay accurate, and the cache is LRU-bounded at
    :data:`CONTEXT_CACHE_SIZE` entries.  Table construction itself runs
    outside the lock; two racing builders may both construct, but only
    one context is published and counted as the miss.  Entries inherited
    through ``fork`` are discarded on first use in the child process.
    """
    key = (n, q)
    with _CONTEXTS_LOCK:
        _reset_if_forked()
        context = _CONTEXTS.get(key)
        if context is not None:
            _CONTEXTS.move_to_end(key)
            _count("ntt.cache.hits")
            return context
    built = NttContext(n, q)  # potentially slow: keep outside the lock
    with _CONTEXTS_LOCK:
        _reset_if_forked()
        context = _CONTEXTS.get(key)
        if context is not None:
            # Another caller published while we were building; theirs
            # won the race and already counted the miss.
            _CONTEXTS.move_to_end(key)
            _count("ntt.cache.hits")
            return context
        _count("ntt.cache.misses")
        _CONTEXTS[key] = built
        while len(_CONTEXTS) > CONTEXT_CACHE_SIZE:
            _CONTEXTS.popitem(last=False)
    return built


def clear_context_cache() -> None:
    """Drop all cached contexts (tests, memory-pressure hooks, and the
    per-worker reset installed by :mod:`repro.runtime.fabric`)."""
    global _CONTEXTS_PID
    with _CONTEXTS_LOCK:
        _CONTEXTS.clear()
        _CONTEXTS_PID = os.getpid()


def negacyclic_multiply_schoolbook(a: list[int], b: list[int], q: int) -> list[int]:
    """Reference O(n^2) negacyclic multiply used to validate the NTT."""
    n = len(a)
    if len(b) != n:
        raise ParameterError("operands must have equal length")
    out = [0] * n
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            if bj == 0:
                continue
            k = i + j
            term = ai * bj
            if k >= n:
                out[k - n] = (out[k - n] - term) % q
            else:
                out[k] = (out[k] + term) % q
    return [x % q for x in out]
