"""Feldman verifiable secret sharing commitments.

Feldman VSS augments Shamir sharing with discrete-log commitments to the
sharing polynomial: the dealer publishes C_j = g^{a_j} for each polynomial
coefficient, and a shareholder with share (i, v) checks

    g^v  ==  prod_j C_j^(i^j).

A cheating dealer (or, during VSR, a cheating old-committee member) is
caught immediately.  The group is the order-``q`` subgroup of Z_P^* where
P = 2kq + 1; ``q`` is the sharing field, so exponent arithmetic lines up
with share arithmetic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from repro.crypto.modmath import is_prime
from repro.crypto.shamir import Share
from repro.errors import SecretSharingError


@dataclass(frozen=True)
class CommitmentGroup:
    """A prime-order subgroup for Feldman commitments.

    Attributes:
        modulus: the big prime P.
        order: the subgroup order q (equal to the Shamir field).
        generator: an element of order q.
    """

    modulus: int
    order: int
    generator: int

    def commit(self, exponent: int) -> int:
        return pow(self.generator, exponent % self.order, self.modulus)


@lru_cache(maxsize=16)
def group_for_field(q: int, seed: int = 0xFE1D) -> CommitmentGroup:
    """Find a commitment group whose order is the prime field ``q``.

    Searches P = 2kq + 1 for increasing k; such primes are dense enough
    that this terminates quickly even for 500+-bit q.
    """
    if not is_prime(q):
        raise SecretSharingError("Feldman commitments need a prime field")
    k = 1
    while True:
        p = 2 * k * q + 1
        if is_prime(p):
            break
        k += 1
    cofactor = (p - 1) // q
    rng = random.Random(seed ^ q)
    while True:
        h = rng.randrange(2, p - 1)
        g = pow(h, cofactor, p)
        if g != 1:
            return CommitmentGroup(modulus=p, order=q, generator=g)


@dataclass(frozen=True)
class PolynomialCommitment:
    """Commitments to every coefficient of a sharing polynomial."""

    group: CommitmentGroup
    commitments: tuple[int, ...]

    @classmethod
    def commit_polynomial(
        cls, group: CommitmentGroup, polynomial: list[int]
    ) -> PolynomialCommitment:
        return cls(group, tuple(group.commit(c) for c in polynomial))

    @property
    def degree(self) -> int:
        return len(self.commitments) - 1

    @property
    def secret_commitment(self) -> int:
        """g^secret — the commitment to the constant term."""
        return self.commitments[0]

    def expected_share_commitment(self, index: int) -> int:
        """prod_j C_j^(index^j) — what g^share must equal."""
        p, q = self.group.modulus, self.group.order
        acc = 1
        power = 1
        for c in self.commitments:
            acc = (acc * pow(c, power, p)) % p
            power = (power * index) % q
        return acc

    def verify_share(self, share: Share) -> bool:
        """Check a Shamir share against the committed polynomial."""
        return self.group.commit(share.value) == self.expected_share_commitment(
            share.index
        )


def verify_or_raise(commitment: PolynomialCommitment, share: Share) -> None:
    if not commitment.verify_share(share):
        raise SecretSharingError(
            f"share for index {share.index} fails Feldman verification"
        )
