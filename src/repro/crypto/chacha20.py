"""ChaCha20 stream cipher (RFC 8439).

The prototype in the paper instantiates SEnc with ChaCha20 (§5).  The
outer onion layers use the bare stream cipher *without* a MAC so that
forwarders can substitute random dummies that downstream adversaries
cannot distinguish from real traffic (§3.5, "Generating dummies").

Validated against the RFC 8439 test vectors in the test suite.
"""

from __future__ import annotations

import struct

from repro.errors import CryptoError

KEY_BYTES = 32
NONCE_BYTES = 12
BLOCK_BYTES = 64

_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
_MASK = 0xFFFFFFFF


def _rotl(value: int, count: int) -> int:
    return ((value << count) | (value >> (32 - count))) & _MASK


def _quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl(state[b] ^ state[c], 7)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """Produce one 64-byte keystream block."""
    if len(key) != KEY_BYTES:
        raise CryptoError("ChaCha20 keys are 32 bytes")
    if len(nonce) != NONCE_BYTES:
        raise CryptoError("ChaCha20 nonces are 12 bytes")
    state = list(_CONSTANTS)
    state += list(struct.unpack("<8L", key))
    state.append(counter & _MASK)
    state += list(struct.unpack("<3L", nonce))
    working = list(state)
    for _ in range(10):
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    out = [(w + s) & _MASK for w, s in zip(working, state)]
    return struct.pack("<16L", *out)


def chacha20_xor(
    key: bytes, nonce: bytes, data: bytes, initial_counter: int = 1
) -> bytes:
    """Encrypt/decrypt ``data`` (XOR with the keystream).

    Symmetric: applying it twice with the same key/nonce/counter returns
    the original data.
    """
    out = bytearray(len(data))
    counter = initial_counter
    for block_start in range(0, len(data), BLOCK_BYTES):
        keystream = chacha20_block(key, counter, nonce)
        counter += 1
        chunk = data[block_start : block_start + BLOCK_BYTES]
        for i, byte in enumerate(chunk):
            out[block_start + i] = byte ^ keystream[i]
    return bytes(out)
