"""Analytic noise-budget model for query feasibility (§6.2).

The paper reports that its BGV parameters "can support dozens of
multiplications", which is enough for every catalog query except Q1: a
two-hop query over degree-bound d = 10 needs d^2 = 100 multiplications and
"exceeds the noise budget of the HE scheme we chose".

This module turns that criterion into code: given a :class:`BGVProfile`
and a query's multiplication count, decide whether the query is feasible.
For the reduced test profiles the budget is derived from the exact
single-modulus noise recurrence (validated against measured noise in the
test suite); for the PAPER profile it is pinned to the calibrated value 36
(see :class:`repro.params.BGVProfile`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NoiseBudgetExceeded
from repro.params import BGVProfile


@dataclass(frozen=True)
class BudgetReport:
    """Outcome of a feasibility check."""

    profile_name: str
    multiplications_required: int
    multiplications_supported: int

    @property
    def feasible(self) -> bool:
        return self.multiplications_required <= self.multiplications_supported


def multiplications_for_query(hops: int, degree_bound: int) -> int:
    """Multiplications needed by a k-hop local aggregation with degree
    bound d.

    Each vertex in the (k-1)-hop neighborhood multiplies together the
    ciphertexts of its d children, so the total per origin vertex is
    d + d^2 + ... + d^k — the paper quotes d^2 = 100 for the two-hop Q1,
    i.e. it counts the dominant term.  We count the dominant term too so
    the reported numbers line up.
    """
    return degree_bound**hops


def check_budget(
    profile: BGVProfile, hops: int, degree_bound: int
) -> BudgetReport:
    """Report whether a k-hop query fits the profile's noise budget."""
    required = multiplications_for_query(hops, degree_bound)
    return BudgetReport(
        profile_name=profile.name,
        multiplications_required=required,
        multiplications_supported=profile.max_multiplications,
    )


def require_budget(profile: BGVProfile, hops: int, degree_bound: int) -> None:
    """Raise :class:`NoiseBudgetExceeded` if the query does not fit."""
    report = check_budget(profile, hops, degree_bound)
    if not report.feasible:
        raise NoiseBudgetExceeded(
            f"query needs {report.multiplications_required} multiplications "
            f"but profile '{profile.name}' supports only "
            f"{report.multiplications_supported}"
        )
