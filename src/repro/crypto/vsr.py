"""Extended verifiable secret redistribution (VSR).

Mycelium generates the BGV decryption key *once* (genesis committee) and
then hands it from committee to committee without ever reconstructing it
(§4.2), using the extended VSR protocol of Gupta and Gopinath.  Members of
different committees cannot combine shares across epochs to recover the
key, because each epoch's shares lie on an independent random polynomial.

Redistribution of a (t_old, n_old) sharing to a (t_new, n_new) sharing:

1. each old member i re-shares its share s_i to the new committee with a
   fresh polynomial f_i of degree t_new - 1, publishing Feldman
   commitments to f_i;
2. each new member j verifies (a) its subshare lies on f_i and (b) f_i(0)
   really is s_i, by checking g^{f_i(0)} against the *old* polynomial
   commitment;
3. the new committee agrees on a set I of t_old verified dealers and each
   new member computes s'_j = sum_{i in I} lambda_i * f_i(j), a share of
   the original secret on the combined polynomial sum lambda_i f_i;
4. the combined commitment prod C_i^{lambda_i} lets the *next*
   redistribution verify this epoch's shares, closing the loop.

Cheating dealers are detected in step 2 and excluded; as long as t_old
honest old members participate, redistribution succeeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.feldman import CommitmentGroup, PolynomialCommitment
from repro.crypto.hashes import hash_to_int
from repro.crypto.robust import BatchOpener
from repro.crypto.shamir import (
    Share,
    lagrange_coefficients_at_zero,
    share_secret,
)
from repro.errors import SecretSharingError


@dataclass(frozen=True)
class DealtSecret:
    """An initial verifiable sharing produced by the genesis committee."""

    shares: list[Share]
    commitment: PolynomialCommitment
    threshold: int


def deal_initial(
    secret: int,
    threshold: int,
    num_shares: int,
    group: CommitmentGroup,
    rng: random.Random,
) -> DealtSecret:
    """Create the epoch-0 verifiable sharing of a secret."""
    shares, poly = share_secret(
        secret, threshold, num_shares, group.order, rng, return_polynomial=True
    )
    commitment = PolynomialCommitment.commit_polynomial(group, poly)
    return DealtSecret(shares=shares, commitment=commitment, threshold=threshold)


@dataclass(frozen=True)
class RedistributionPackage:
    """What one old-committee member publishes/sends during VSR.

    ``subshares`` maps each new member index to f_i(index); in deployment
    these travel on private channels while the commitment is public.
    """

    dealer_index: int
    commitment: PolynomialCommitment
    subshares: dict[int, int]


def redistribute_share(
    dealer_share: Share,
    new_threshold: int,
    new_size: int,
    group: CommitmentGroup,
    rng: random.Random,
) -> RedistributionPackage:
    """Step 1: an old member re-shares its share to the new committee."""
    shares, poly = share_secret(
        dealer_share.value,
        new_threshold,
        new_size,
        group.order,
        rng,
        return_polynomial=True,
    )
    commitment = PolynomialCommitment.commit_polynomial(group, poly)
    return RedistributionPackage(
        dealer_index=dealer_share.index,
        commitment=commitment,
        subshares={s.index: s.value for s in shares},
    )


def verify_package(
    package: RedistributionPackage,
    old_commitment: PolynomialCommitment,
    new_index: int,
) -> bool:
    """Step 2: a new member validates one dealer's package.

    Checks both the subshare-vs-polynomial consistency and that the
    dealer's polynomial hides its *true* old share (not a fabricated one).
    """
    subshare = package.subshares.get(new_index)
    if subshare is None:
        return False
    if not package.commitment.verify_share(Share(new_index, subshare)):
        return False
    expected = old_commitment.expected_share_commitment(package.dealer_index)
    return package.commitment.secret_commitment == expected


def _batch_challenge(
    packages: list[RedistributionPackage],
    old_commitment: PolynomialCommitment,
    new_size: int,
    order: int,
) -> int:
    """Fiat-Shamir evaluation point for batch verification.

    Derived from the full public transcript (old commitment plus every
    dealer's commitment), so no dealer can choose its polynomial after
    seeing the point.  Re-drawn until it avoids 0 and the member
    indices, where the check would degenerate into one the dealer
    already had to pass.
    """
    parts = [b"vsr-batch-verify", new_size.to_bytes(4, "big")]
    for c in old_commitment.commitments:
        parts.append(c.to_bytes((c.bit_length() + 7) // 8 or 1, "big"))
    for package in packages:
        parts.append(package.dealer_index.to_bytes(8, "big"))
        for c in package.commitment.commitments:
            parts.append(c.to_bytes((c.bit_length() + 7) // 8 or 1, "big"))
    counter = 0
    while True:
        r = hash_to_int(*parts, counter.to_bytes(4, "big")) % order
        if r != 0 and r > new_size:
            return r
        counter += 1


def batch_verify_packages(
    packages: list[RedistributionPackage],
    old_commitment: PolynomialCommitment,
    new_size: int,
    new_threshold: int,
    group: CommitmentGroup,
    opener: BatchOpener | None = None,
) -> list[bool]:
    """Step 2, amortized: verify every dealer's package in one batch.

    Per-member verification costs ``new_size`` Feldman checks per
    dealer, each a (degree+1)-term multi-exponentiation.  Batch opening
    replaces them: the subshares of an honest dealer are evaluations of
    a degree < ``new_threshold`` polynomial — a Reed-Solomon codeword
    over the member indices — so one shared
    :class:`~repro.crypto.robust.BatchOpener` (reused across dealers
    *and* key coefficients, since the index set never changes) checks

    1. completeness: every new member got a subshare (a dealer that
       crashed mid-send is excluded for everyone — the torn-key guard);
    2. degree: every extra subshare matches the base interpolation
       (field arithmetic only, no group operations);
    3. binding: ``g^{f(0)}`` equals the *old* commitment's expected
       share for this dealer (the dealer re-shared its true share);
    4. consistency: ``g^{f(r)}`` equals the dealer's published
       commitment evaluated at a Fiat-Shamir point ``r`` — so the
       commitment the next epoch inherits matches the subshares
       everywhere, not just where we looked.

    Accepts and rejects exactly the packages :func:`verify_package`
    would (honest, corrupt, crashed, and tampered dealers alike, up to
    the negligible soundness error of the random-point check).  Returns
    one verdict per package, same order.
    """
    if opener is None:
        opener = BatchOpener(
            range(1, new_size + 1), new_threshold, group.order
        )
    q = group.order
    r = _batch_challenge(packages, old_commitment, new_size, q)
    verdicts = []
    for package in packages:
        if any(
            j not in package.subshares for j in range(1, new_size + 1)
        ):
            verdicts.append(False)
            continue
        base_values = [package.subshares[x] % q for x in opener.base]
        if any(
            opener.eval_at(base_values, x) != package.subshares[x] % q
            for x in opener.extras
        ):
            verdicts.append(False)
            continue
        expected = old_commitment.expected_share_commitment(
            package.dealer_index
        )
        if group.commit(opener.open(base_values)) != expected:
            verdicts.append(False)
            continue
        verdicts.append(
            group.commit(opener.eval_at(base_values, r))
            == package.commitment.expected_share_commitment(r)
        )
    return verdicts


def combine_packages(
    packages: list[RedistributionPackage],
    new_index: int,
    old_threshold: int,
    group: CommitmentGroup,
) -> tuple[Share, PolynomialCommitment]:
    """Steps 3-4: derive the new member's share and the epoch commitment.

    ``packages`` must already be verified and must all come from distinct
    dealers; exactly ``old_threshold`` of them are used (every new member
    must use the same dealer set, which the caller coordinates via the
    bulletin board).
    """
    if len(packages) < old_threshold:
        raise SecretSharingError(
            f"need {old_threshold} verified dealers, have {len(packages)}"
        )
    chosen = sorted(packages, key=lambda p: p.dealer_index)[:old_threshold]
    q = group.order
    indices = [p.dealer_index for p in chosen]
    lagrange = lagrange_coefficients_at_zero(indices, q)
    value = 0
    for package in chosen:
        subshare = package.subshares.get(new_index)
        if subshare is None:
            raise SecretSharingError(
                f"dealer {package.dealer_index} sent no subshare to {new_index}"
            )
        value = (value + lagrange[package.dealer_index] * subshare) % q
    degree = max(p.commitment.degree for p in chosen)
    combined = []
    for k in range(degree + 1):
        acc = 1
        for package in chosen:
            if k <= package.commitment.degree:
                term = pow(
                    package.commitment.commitments[k],
                    lagrange[package.dealer_index],
                    group.modulus,
                )
                acc = (acc * term) % group.modulus
        combined.append(acc)
    new_commitment = PolynomialCommitment(group, tuple(combined))
    return Share(new_index, value), new_commitment


def redistribute(
    old_shares: list[Share],
    old_commitment: PolynomialCommitment,
    old_threshold: int,
    new_threshold: int,
    new_size: int,
    group: CommitmentGroup,
    rng: random.Random,
    corrupt_dealers: set[int] | None = None,
) -> tuple[list[Share], PolynomialCommitment]:
    """Run a full redistribution round between two committees.

    ``corrupt_dealers`` simulates old members who deal garbage; their
    packages fail verification and are excluded.  Raises if fewer than
    ``old_threshold`` honest dealers remain.
    """
    corrupt = corrupt_dealers or set()
    packages = []
    for share in old_shares:
        package = redistribute_share(share, new_threshold, new_size, group, rng)
        if share.index in corrupt:
            # A Byzantine dealer re-shares a *different* value.
            package = redistribute_share(
                Share(share.index, (share.value + 1) % group.order),
                new_threshold,
                new_size,
                group,
                rng,
            )
        packages.append(package)

    # Bulletin-board agreement: a dealer counts only if *every* new
    # member verifies its package.  Deciding validity per member would
    # let a dealer whose subshares reached only part of the committee be
    # used by some members and not others, leaving the new shares on
    # different combined polynomials (a torn key that can never decrypt).
    agreed = [
        p
        for p in packages
        if all(
            verify_package(p, old_commitment, new_index)
            for new_index in range(1, new_size + 1)
        )
    ]
    if len(agreed) < old_threshold:
        raise SecretSharingError(
            f"only {len(agreed)} dealers verified by all new members, "
            f"need {old_threshold}"
        )
    new_shares = []
    epoch_commitment: PolynomialCommitment | None = None
    for new_index in range(1, new_size + 1):
        share, commitment = combine_packages(
            agreed, new_index, old_threshold, group
        )
        new_shares.append(share)
        epoch_commitment = commitment
    assert epoch_commitment is not None
    return new_shares, epoch_commitment
