"""Cryptographic substrate for the Mycelium reproduction.

Submodules:

* :mod:`repro.crypto.bgv` -- BGV leveled homomorphic encryption.
* :mod:`repro.crypto.shamir`, :mod:`repro.crypto.feldman`,
  :mod:`repro.crypto.vsr` -- verifiable secret sharing + redistribution.
* :mod:`repro.crypto.chacha20`, :mod:`repro.crypto.poly1305`,
  :mod:`repro.crypto.aead`, :mod:`repro.crypto.rsa` -- the mixnet's
  symmetric and public-key primitives.
* :mod:`repro.crypto.merkle` -- Merkle trees / verifiable maps.
* :mod:`repro.crypto.zksnark` -- simulated Groth16 (see module docstring
  for the substitution rationale).
"""
