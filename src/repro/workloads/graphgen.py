"""Synthetic contact graphs (the GAEN-style substrate of §2).

The paper's deployment target is a graph over millions of devices with
one vertex per participant and an edge whenever two devices observed
each other's pseudonyms.  We synthesize graphs with the structure the
catalog queries care about: households (cliques with household-location
edges), plus external contacts (work/social/subway) up to the protocol's
degree bound d.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.query.schema import (
    HOUSEHOLD_LOCATION,
    NUM_LOCATIONS,
    SETTINGS,
)


@dataclass
class ContactGraph:
    """An undirected contact graph with vertex and shared edge attributes.

    Edge attributes are symmetric — both endpoints hold the same record,
    mirroring reality (contact duration/time is observed by both
    devices), which is what lets the compiler evaluate edge clauses on
    either side.
    """

    degree_bound: int
    vertex_attrs: list[dict[str, int]] = field(default_factory=list)
    adjacency: list[dict[int, dict[str, int]]] = field(default_factory=list)

    @property
    def num_vertices(self) -> int:
        return len(self.vertex_attrs)

    def add_vertex(self, **attrs: int) -> int:
        vertex = len(self.vertex_attrs)
        self.vertex_attrs.append(dict(attrs))
        self.adjacency.append({})
        return vertex

    def add_edge(self, u: int, v: int, **attrs: int) -> bool:
        """Add an undirected edge; returns False if it would violate the
        degree bound or already exists."""
        if u == v:
            raise ParameterError("self-loops are implicit (padding only)")
        if v in self.adjacency[u]:
            return False
        if (
            len(self.adjacency[u]) >= self.degree_bound
            or len(self.adjacency[v]) >= self.degree_bound
        ):
            return False
        record = dict(attrs)
        self.adjacency[u][v] = record
        self.adjacency[v][u] = record  # shared record: symmetric view
        return True

    def neighbors(self, u: int) -> list[int]:
        return sorted(self.adjacency[u])

    def edge(self, u: int, v: int) -> dict[str, int]:
        return self.adjacency[u][v]

    def degree(self, u: int) -> int:
        return len(self.adjacency[u])

    def num_edges(self) -> int:
        return sum(len(adj) for adj in self.adjacency) // 2

    def k_hop_members(self, origin: int, hops: int) -> dict[int, int]:
        """BFS: vertex -> distance, for every vertex within ``hops`` of
        the origin (the origin itself at distance 0)."""
        distances = {origin: 0}
        frontier = [origin]
        for depth in range(1, hops + 1):
            next_frontier = []
            for u in frontier:
                for v in self.neighbors(u):
                    if v not in distances:
                        distances[v] = depth
                        next_frontier.append(v)
            frontier = next_frontier
        return distances

    def spanning_tree(self, origin: int, hops: int) -> dict[int, list[int]]:
        """Children lists of the BFS spanning tree rooted at ``origin``
        (the tree the §4.4 flooding protocol induces: each vertex's
        upstream neighbor is the first sender it heard the query from)."""
        distances = self.k_hop_members(origin, hops)
        children: dict[int, list[int]] = {v: [] for v in distances}
        for v, depth in distances.items():
            if v == origin:
                continue
            parent = min(
                u
                for u in self.neighbors(v)
                if u in distances and distances[u] == depth - 1
            )
            children[parent].append(v)
        return children


def _edge_attrs(rng: random.Random, setting_index: int, location: int) -> dict:
    return {
        "duration": rng.randint(1, 240),
        "contacts": rng.randint(1, 50),
        "last_contact": rng.randint(0, 13),
        "location": location,
        "setting": setting_index,
    }


def generate_household_graph(
    num_people: int,
    degree_bound: int,
    rng: random.Random,
    mean_household: int = 3,
    external_contacts: int = 2,
) -> ContactGraph:
    """Households as cliques plus random external contacts.

    Ages are correlated within a household (adults + children); external
    edges get work/social/subway locations.
    """
    if num_people < 2:
        raise ParameterError("need at least two people")
    graph = ContactGraph(degree_bound=degree_bound)
    person = 0
    while person < num_people:
        size = min(
            num_people - person, max(1, int(rng.gauss(mean_household, 1.2)))
        )
        adults = max(1, size - rng.randint(0, max(0, size - 1)))
        base_age = rng.randint(25, 70)
        members = []
        for i in range(size):
            if i < adults:
                age = min(99, max(18, base_age + rng.randint(-5, 5)))
            else:
                age = rng.randint(0, 17)
            members.append(
                graph.add_vertex(age=age, inf=0, tInf=0, tInfec=0)
            )
        setting = SETTINGS.index("household")
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                graph.add_edge(
                    u, v, **_edge_attrs(rng, setting, HOUSEHOLD_LOCATION)
                )
        person += size
    # External contacts.
    non_household = [
        i for i in range(NUM_LOCATIONS) if i != HOUSEHOLD_LOCATION
    ]
    external_settings = [
        SETTINGS.index(s) for s in ("social", "work", "family", "other")
    ]
    for u in range(graph.num_vertices):
        for _ in range(external_contacts):
            v = rng.randrange(graph.num_vertices)
            if v == u:
                continue
            graph.add_edge(
                u,
                v,
                **_edge_attrs(
                    rng, rng.choice(external_settings), rng.choice(non_household)
                ),
            )
    return graph


def generate_random_graph(
    num_people: int,
    avg_degree: float,
    degree_bound: int,
    rng: random.Random,
) -> ContactGraph:
    """An Erdos-Renyi-style contact graph with random attributes."""
    graph = ContactGraph(degree_bound=degree_bound)
    for _ in range(num_people):
        graph.add_vertex(age=rng.randint(0, 99), inf=0, tInf=0, tInfec=0)
    target_edges = int(num_people * avg_degree / 2)
    attempts = 0
    while graph.num_edges() < target_edges and attempts < target_edges * 20:
        attempts += 1
        u = rng.randrange(num_people)
        v = rng.randrange(num_people)
        if u == v:
            continue
        graph.add_edge(
            u,
            v,
            **_edge_attrs(
                rng,
                rng.randrange(len(SETTINGS)),
                rng.randrange(NUM_LOCATIONS),
            ),
        )
    return graph
