"""Attribute utilities: domain validation and overrides.

Generators in this package must only emit values inside the schema
domains — the encrypted engine's exponent encoding depends on it.  These
helpers validate that invariant and let tests construct precise
scenarios.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.query.ast import ColumnGroup
from repro.query.schema import DEFAULT_SCHEMA, Schema
from repro.workloads.graphgen import ContactGraph


def validate_graph(graph: ContactGraph, schema: Schema = DEFAULT_SCHEMA) -> None:
    """Raise if any vertex/edge attribute falls outside its schema domain."""
    for vertex, attrs in enumerate(graph.vertex_attrs):
        for name, value in attrs.items():
            spec = schema.lookup(ColumnGroup.SELF, name)
            if not spec.low <= value <= spec.high:
                raise ParameterError(
                    f"vertex {vertex}: {name}={value} outside "
                    f"[{spec.low}, {spec.high}]"
                )
    for u in range(graph.num_vertices):
        for v in graph.neighbors(u):
            for name, value in graph.edge(u, v).items():
                spec = schema.lookup(ColumnGroup.EDGE, name)
                if not spec.low <= value <= spec.high:
                    raise ParameterError(
                        f"edge ({u},{v}): {name}={value} outside "
                        f"[{spec.low}, {spec.high}]"
                    )


def set_vertex(graph: ContactGraph, vertex: int, **attrs: int) -> None:
    """Override vertex attributes (test scenario construction)."""
    graph.vertex_attrs[vertex].update(attrs)


def set_edge(graph: ContactGraph, u: int, v: int, **attrs: int) -> None:
    """Override shared edge attributes on an existing edge."""
    graph.edge(u, v).update(attrs)


def infection_rate(graph: ContactGraph) -> float:
    """Fraction of infected vertices."""
    if graph.num_vertices == 0:
        return 0.0
    infected = sum(a.get("inf", 0) for a in graph.vertex_attrs)
    return infected / graph.num_vertices
