"""Device federations and capability-biased selection (§7 Discussion).

The paper notes that phones with metered connections make poor
forwarders or committee members, but that devices increasingly come in
per-person *federations* (laptop + phone + watch sharing an account):
the federation can safely pool its data and delegate the most powerful
device.  Biasing hop/committee selection toward powerful devices gives
the adversary a small edge — all of its confederates can *claim* to be
powerful — which "slightly more aggressive parameter settings" absorb.

This module models both: federation formation/delegation, and the
effective-malice computation with the compensating hop count.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.analysis.anonymity import expected_anonymity_set
from repro.errors import ParameterError

#: Device classes, by forwarding capability.
DEVICE_CLASSES = ("watch", "phone", "laptop", "workstation")
_CLASS_POWER = {name: i for i, name in enumerate(DEVICE_CLASSES)}


@dataclass(frozen=True)
class FederatedDevice:
    device_class: str
    metered: bool

    @property
    def power(self) -> int:
        return _CLASS_POWER[self.device_class] - (1 if self.metered else 0)


@dataclass(frozen=True)
class Federation:
    """One person's device set; the delegate participates in Mycelium
    on the whole federation's behalf."""

    owner: int
    devices: tuple[FederatedDevice, ...]

    @property
    def delegate(self) -> FederatedDevice:
        return max(self.devices, key=lambda d: d.power)

    @property
    def delegate_is_capable(self) -> bool:
        """Suitable as a forwarder/committee member: unmetered and at
        least laptop-class."""
        delegate = self.delegate
        return not delegate.metered and (
            _CLASS_POWER[delegate.device_class] >= _CLASS_POWER["laptop"]
        )


def form_federations(
    num_people: int, rng: random.Random, laptop_fraction: float = 0.6
) -> list[Federation]:
    """Everyone has a phone; a fraction also has a laptop/workstation,
    and some phones are on metered connections."""
    if num_people < 1:
        raise ParameterError("need at least one person")
    federations = []
    for owner in range(num_people):
        devices = [
            FederatedDevice("phone", metered=rng.random() < 0.5)
        ]
        if rng.random() < 0.3:
            devices.append(FederatedDevice("watch", metered=False))
        if rng.random() < laptop_fraction:
            device_class = "workstation" if rng.random() < 0.2 else "laptop"
            devices.append(FederatedDevice(device_class, metered=False))
        federations.append(Federation(owner, tuple(devices)))
    return federations


def capable_fraction(federations: list[Federation]) -> float:
    if not federations:
        return 0.0
    capable = sum(1 for f in federations if f.delegate_is_capable)
    return capable / len(federations)


def effective_malicious_fraction(
    malicious_fraction: float, capable_fraction_value: float
) -> float:
    """If forwarder selection is restricted to capable devices and every
    Byzantine device *claims* to be capable, the malicious share among
    eligible forwarders rises to mal / (capable + mal*(1-capable))."""
    if not 0 <= malicious_fraction < 1:
        raise ParameterError("malicious fraction must be in [0, 1)")
    if not 0 < capable_fraction_value <= 1:
        raise ParameterError("capable fraction must be in (0, 1]")
    honest_capable = capable_fraction_value * (1 - malicious_fraction)
    return malicious_fraction / (honest_capable + malicious_fraction)


def compensating_hops(
    base_hops: int,
    replicas: int,
    forwarder_fraction: float,
    malicious_fraction: float,
    capable_fraction_value: float,
    num_devices: int,
) -> int:
    """The "slightly more aggressive parameter settings": the smallest
    hop count whose anonymity set under capability-biased selection
    matches the unbiased baseline at ``base_hops``."""
    baseline = expected_anonymity_set(
        base_hops, replicas, forwarder_fraction, malicious_fraction, num_devices
    )
    biased_malice = effective_malicious_fraction(
        malicious_fraction, capable_fraction_value
    )
    for hops in range(base_hops, base_hops + 6):
        achieved = expected_anonymity_set(
            hops, replicas, forwarder_fraction, biased_malice, num_devices
        )
        if achieved >= baseline:
            return hops
    return base_hops + 6


def bandwidth_saved_by_delegation(
    federations: list[Federation], per_device_mb: float
) -> float:
    """MB kept off metered connections by routing each federation's
    Mycelium duties to its delegate."""
    saved = 0.0
    for federation in federations:
        for device in federation.devices:
            if device.metered and device != federation.delegate:
                saved += per_device_mb
    return saved
