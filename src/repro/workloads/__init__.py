"""Synthetic workloads: household contact graphs
(:mod:`repro.workloads.graphgen`), an epidemic process
(:mod:`repro.workloads.epidemic`), and attribute/domain utilities
(:mod:`repro.workloads.attributes`).
"""
