"""A discrete-time epidemic process over a contact graph.

Generates the infection data the catalog queries analyze: seeds a few
index cases, then spreads day by day along contact edges with a
transmission probability modulated by contact duration and setting
(household contacts transmit more readily — the effect Q8 measures).
Diagnosis day lands in the tInf/tInfec columns of the schema's 14-day
window.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.query.schema import INFECTION_WINDOW_DAYS, SETTINGS
from repro.workloads.graphgen import ContactGraph

_HOUSEHOLD_SETTING = SETTINGS.index("household")
_FAMILY_SETTING = SETTINGS.index("family")


@dataclass(frozen=True)
class EpidemicConfig:
    """Transmission-model parameters."""

    seed_fraction: float = 0.05
    base_transmission: float = 0.12
    household_multiplier: float = 2.5
    duration_scale: float = 120.0  # minutes at which risk saturates
    days: int = INFECTION_WINDOW_DAYS - 1


def run_epidemic(
    graph: ContactGraph, rng: random.Random, config: EpidemicConfig | None = None
) -> dict[str, int]:
    """Mutate the graph's vertex attributes with infection outcomes.

    Returns summary statistics (seeds, total infected, transmissions).
    """
    cfg = config or EpidemicConfig()
    num_seeds = max(1, int(graph.num_vertices * cfg.seed_fraction))
    seeds = rng.sample(range(graph.num_vertices), num_seeds)
    infection_day = {}
    for seed in seeds:
        infection_day[seed] = 1
    transmissions = 0
    for day in range(1, cfg.days + 1):
        newly = {}
        for u, day_u in infection_day.items():
            if day_u > day:
                continue
            for v in graph.neighbors(u):
                if v in infection_day or v in newly:
                    continue
                edge = graph.edge(u, v)
                risk = cfg.base_transmission
                risk *= min(1.0, edge["duration"] / cfg.duration_scale) + 0.25
                if edge["setting"] in (_HOUSEHOLD_SETTING, _FAMILY_SETTING):
                    risk *= cfg.household_multiplier
                if rng.random() < min(0.95, risk):
                    newly[v] = day + 1
                    transmissions += 1
        for v, d in newly.items():
            if d <= cfg.days:
                infection_day[v] = d
    for vertex, day in infection_day.items():
        attrs = graph.vertex_attrs[vertex]
        attrs["inf"] = 1
        attrs["tInf"] = min(day, INFECTION_WINDOW_DAYS - 1)
        attrs["tInfec"] = attrs["tInf"]
    return {
        "seeds": num_seeds,
        "infected": len(infection_day),
        "transmissions": transmissions,
    }


# ---------------------------------------------------------------------------
# Campaign workloads (repro.durability)
# ---------------------------------------------------------------------------

#: The epidemic surveillance campaign: a rotating sequence of cheap
#: 1-hop catalog queries a health authority would run day after day over
#: the same contact graph.  Catalog ids are resolved by the campaign
#: runner; the cycle keeps every campaign length covered by feasible
#: TEST-profile queries.
CAMPAIGN_QUERY_CYCLE: tuple[str, ...] = ("Q5", "Q4", "Q2")


def campaign_queries(
    num_queries: int, epsilon: float = 0.5
) -> tuple[tuple[str, float], ...]:
    """The default epidemic campaign: ``num_queries`` (query, epsilon)
    pairs cycling through :data:`CAMPAIGN_QUERY_CYCLE`."""
    return tuple(
        (CAMPAIGN_QUERY_CYCLE[i % len(CAMPAIGN_QUERY_CYCLE)], epsilon)
        for i in range(num_queries)
    )


def build_campaign_graph(
    people: int, degree: int, rng: random.Random
) -> ContactGraph:
    """The campaign's contact graph: households plus an epidemic, with
    edge attributes clamped into the TEST schema's value ranges.

    Deterministic given ``rng`` — the campaign runner derives it from
    the master seed (``derive_rng(master, "workload")``) so a resumed
    process rebuilds the identical graph.
    """
    from repro.workloads.graphgen import generate_household_graph

    graph = generate_household_graph(
        people, degree_bound=degree, rng=rng, external_contacts=1
    )
    run_epidemic(graph, rng)
    for u in range(graph.num_vertices):
        for v in graph.neighbors(u):
            edge = graph.edge(u, v)
            edge["duration"] = min(edge["duration"], 20)
            edge["contacts"] = min(edge["contacts"], 8)
    return graph
