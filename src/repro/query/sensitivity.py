"""Static sensitivity analysis (§4.7).

"By construction, all queries in our language have bounded sensitivity,
and this bound can be statically determined by multiplying the maximum
value contribution of any one device by the total number of devices in
their local neighborhood."

A device influences its own local query plus every local query whose
k-hop neighborhood contains it: at most M = 1 + sum(d^i, i=1..k) local
results.  Per local result:

* HISTO terms contribute at most 2 — changing a device's data can remove
  one origin from one bin and add it to another;
* GSUM terms contribute at most the clip-range width.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.query.ast import OutputKind
from repro.query.plans import ExecutionPlan


@dataclass(frozen=True)
class SensitivityReport:
    """The static bound and its factors."""

    influenced_queries: int
    per_query_contribution: float
    sensitivity: float


def influenced_local_queries(hops: int, degree_bound: int) -> int:
    """M: how many origins' local results one device can affect."""
    return 1 + sum(degree_bound**i for i in range(1, hops + 1))


def analyze(plan: ExecutionPlan) -> SensitivityReport:
    """Compute the query's global L1 sensitivity."""
    influenced = influenced_local_queries(plan.hops, plan.degree_bound)
    if plan.output is OutputKind.HISTO:
        per_query = 2.0
    elif plan.output is OutputKind.GSUM:
        if plan.clip is None:
            raise QueryError("GSUM plans must carry a clip range")
        low, high = plan.clip
        per_query = float(high - low)
        if per_query == 0:
            per_query = 1.0  # degenerate clip still releases membership
    else:
        raise QueryError(f"unknown output kind {plan.output}")
    return SensitivityReport(
        influenced_queries=influenced,
        per_query_contribution=per_query,
        sensitivity=per_query * influenced,
    )


def laplace_scale(plan: ExecutionPlan, epsilon: float) -> float:
    """Noise scale b = sensitivity / epsilon for the Laplace mechanism."""
    if epsilon <= 0:
        raise QueryError("epsilon must be positive")
    return analyze(plan).sensitivity / epsilon
