"""Recursive-descent parser for the query language (§4).

Grammar (keywords case-insensitive, ∧/∨/∈ accepted):

    query      := SELECT aggspec FROM NEIGH '(' INT ')'
                  [WHERE pred] [GROUP BY expr]
                  [CLIP '[' int ',' int ']'] [BINS '[' int {',' int} ']']
    aggspec    := (HISTO | GSUM) '(' inner ['/' inner] ')'
    inner      := COUNT '(' '*' ')' | SUM '(' expr ')'
    pred       := andterm {OR andterm}
    andterm    := factor {AND factor}
    factor     := NOT factor | '(' pred ')' followed by comparison tail?
                | comparison
    comparison := expr (relop expr | IN '[' expr ',' expr ']' | ε)
    expr       := term {('+'|'-') term}
    term       := primary {'*' primary}
    primary    := INT | column | funccall | '(' expr ')'
    column     := ('self'|'dest'|'edge') '.' IDENT
"""

from __future__ import annotations

from repro.errors import QuerySyntaxError
from repro.query import ast
from repro.query.lexer import Token, TokenKind, tokenize

_RELOPS = {">", "<", ">=", "<=", "=", "==", "!="}
_GROUP_NAMES = {g.value: g for g in ast.ColumnGroup}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers --------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect_keyword(self, word: str) -> None:
        token = self._advance()
        if not token.is_keyword(word):
            raise QuerySyntaxError(
                f"expected {word} at position {token.position}, got {token.text!r}"
            )

    def _expect_symbol(self, symbol: str) -> None:
        token = self._advance()
        if not token.is_symbol(symbol):
            raise QuerySyntaxError(
                f"expected {symbol!r} at position {token.position}, "
                f"got {token.text!r}"
            )

    def _expect_number(self) -> int:
        token = self._advance()
        if token.kind != TokenKind.NUMBER:
            raise QuerySyntaxError(
                f"expected a number at position {token.position}, "
                f"got {token.text!r}"
            )
        return int(token.text)

    def _accept_symbol(self, symbol: str) -> bool:
        if self._peek().is_symbol(symbol):
            self._advance()
            return True
        return False

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    # -- grammar ---------------------------------------------------------------

    def parse_query(self) -> ast.Query:
        self._expect_keyword("SELECT")
        output, numerator, denominator = self._aggspec()
        self._expect_keyword("FROM")
        self._expect_keyword("NEIGH")
        self._expect_symbol("(")
        hops = self._expect_number()
        self._expect_symbol(")")
        where = None
        if self._accept_keyword("WHERE"):
            where = self._predicate()
        group_by = None
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = self._expression()
        clip = None
        if self._accept_keyword("CLIP"):
            self._expect_symbol("[")
            low = self._signed_number()
            self._expect_symbol(",")
            high = self._signed_number()
            self._expect_symbol("]")
            clip = (low, high)
        bins = None
        if self._accept_keyword("BINS"):
            self._expect_symbol("[")
            edges = [self._signed_number()]
            while self._accept_symbol(","):
                edges.append(self._signed_number())
            self._expect_symbol("]")
            bins = tuple(edges)
        end = self._advance()
        if end.kind != TokenKind.END:
            raise QuerySyntaxError(
                f"unexpected trailing input at position {end.position}: "
                f"{end.text!r}"
            )
        return ast.Query(
            output=output,
            numerator=numerator,
            denominator=denominator,
            hops=hops,
            where=where,
            group_by=group_by,
            clip=clip,
            bins=bins,
        )

    def _signed_number(self) -> int:
        if self._accept_symbol("-"):
            return -self._expect_number()
        return self._expect_number()

    def _aggspec(self):
        token = self._advance()
        if token.is_keyword("HISTO"):
            output = ast.OutputKind.HISTO
        elif token.is_keyword("GSUM"):
            output = ast.OutputKind.GSUM
        else:
            raise QuerySyntaxError(
                f"expected HISTO or GSUM at position {token.position}"
            )
        self._expect_symbol("(")
        numerator = self._inner_aggregate()
        denominator = None
        if self._accept_symbol("/"):
            denominator = self._inner_aggregate()
        self._expect_symbol(")")
        return output, numerator, denominator

    def _inner_aggregate(self) -> ast.InnerAggregate:
        token = self._advance()
        if token.is_keyword("COUNT"):
            self._expect_symbol("(")
            self._expect_symbol("*")
            self._expect_symbol(")")
            return ast.CountStar()
        if token.is_keyword("SUM"):
            self._expect_symbol("(")
            expr = self._expression()
            self._expect_symbol(")")
            return ast.SumExpr(expr)
        raise QuerySyntaxError(
            f"expected COUNT or SUM at position {token.position}"
        )

    def _predicate(self) -> ast.Predicate:
        terms = [self._and_term()]
        while self._accept_keyword("OR"):
            terms.append(self._and_term())
        if len(terms) == 1:
            return terms[0]
        return ast.Or(tuple(terms))

    def _and_term(self) -> ast.Predicate:
        factors = [self._factor()]
        while self._accept_keyword("AND"):
            factors.append(self._factor())
        if len(factors) == 1:
            return factors[0]
        return ast.And(tuple(factors))

    def _factor(self) -> ast.Predicate:
        if self._accept_keyword("NOT"):
            return ast.Not(self._factor())
        if self._peek().is_symbol("("):
            # Could be a parenthesized predicate or a parenthesized
            # arithmetic expression starting a comparison; try the
            # predicate first and fall back.
            saved = self._pos
            self._advance()
            try:
                inner = self._predicate()
                self._expect_symbol(")")
            except QuerySyntaxError:
                self._pos = saved
                return self._comparison()
            # `(pred) relop ...` is not meaningful; treat as predicate.
            return inner
        return self._comparison()

    def _comparison(self) -> ast.Predicate:
        left = self._expression()
        token = self._peek()
        if token.kind == TokenKind.SYMBOL and token.text in _RELOPS:
            op = self._advance().text
            right = self._expression()
            return ast.Compare("=" if op == "==" else op, left, right)
        if token.is_keyword("IN"):
            self._advance()
            self._expect_symbol("[")
            low = self._expression()
            self._expect_symbol(",")
            high = self._expression()
            self._expect_symbol("]")
            return ast.InRange(left, low, high)
        if token.is_symbol("["):
            # The paper's shorthand: dest.tInfec[a, b].
            self._advance()
            low = self._expression()
            self._expect_symbol(",")
            high = self._expression()
            self._expect_symbol("]")
            return ast.InRange(left, low, high)
        return ast.Truthy(left)

    def _expression(self) -> ast.Expression:
        left = self._term()
        while True:
            token = self._peek()
            if token.is_symbol("+") or token.is_symbol("-"):
                op = self._advance().text
                right = self._term()
                left = ast.BinaryOp(op, left, right)
            else:
                return left

    def _term(self) -> ast.Expression:
        left = self._primary()
        while self._peek().is_symbol("*"):
            self._advance()
            right = self._primary()
            left = ast.BinaryOp("*", left, right)
        return left

    def _primary(self) -> ast.Expression:
        token = self._advance()
        if token.kind == TokenKind.NUMBER:
            return ast.Literal(int(token.text))
        if token.is_symbol("-"):
            inner = self._primary()
            if isinstance(inner, ast.Literal):
                return ast.Literal(-inner.value)
            return ast.BinaryOp("-", ast.Literal(0), inner)
        if token.is_symbol("("):
            expr = self._expression()
            self._expect_symbol(")")
            return expr
        if token.kind == TokenKind.IDENT:
            if token.text in _GROUP_NAMES and self._peek().is_symbol("."):
                self._advance()
                name = self._advance()
                if name.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
                    raise QuerySyntaxError(
                        f"expected column name at position {name.position}"
                    )
                return ast.Column(_GROUP_NAMES[token.text], name.text)
            if self._peek().is_symbol("("):
                self._advance()
                args = []
                if not self._peek().is_symbol(")"):
                    args.append(self._expression())
                    while self._accept_symbol(","):
                        args.append(self._expression())
                self._expect_symbol(")")
                return ast.FuncCall(token.text, tuple(args))
            raise QuerySyntaxError(
                f"bare identifier {token.text!r} at position "
                f"{token.position}; columns are group.name"
            )
        raise QuerySyntaxError(
            f"unexpected token {token.text!r} at position {token.position}"
        )


def parse(text: str) -> ast.Query:
    """Parse query text into an AST."""
    return _Parser(tokenize(text)).parse_query()
