"""Column schema for the contact-graph domain of §2.1.

Every column has a bounded integer domain; boundedness is what makes
static sensitivity analysis (§4.7) and the §4.5 sequence protocol
possible.  ``comparison_bucket`` is the discretization used when a
column appears in a cross-column-group comparison: the destination then
sends one ciphertext per bucket, which is what produces the Figure 6
ciphertext counts (14 for day-offset columns, 10 for age decades).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.query.ast import ColumnGroup


@dataclass(frozen=True)
class ColumnSpec:
    """One column's metadata."""

    name: str
    groups: frozenset[ColumnGroup]
    low: int
    high: int
    comparison_bucket: int = 1
    description: str = ""

    @property
    def domain_size(self) -> int:
        return self.high - self.low + 1

    @property
    def comparison_domain_size(self) -> int:
        """Number of buckets when this column drives a §4.5 sequence."""
        return (
            self.domain_size + self.comparison_bucket - 1
        ) // self.comparison_bucket

    def bucket_of(self, value: int) -> int:
        clipped = min(max(value, self.low), self.high)
        return (clipped - self.low) // self.comparison_bucket

    def clip(self, value: int) -> int:
        return min(max(int(value), self.low), self.high)


_VERTEX = frozenset({ColumnGroup.SELF, ColumnGroup.DEST})
_EDGE = frozenset({ColumnGroup.EDGE})

#: Window length for infection-time columns: 14 days, giving the 14
#: ciphertexts of Q3/Q6/Q7/Q10 in Figure 6.
INFECTION_WINDOW_DAYS = 14

#: Edge "setting" categories (family / household / social / work / other).
SETTINGS = ("family", "household", "social", "work", "other")

#: Location categories; ids below SUBWAY_LOCATION_MAX count as subway.
NUM_LOCATIONS = 16
SUBWAY_LOCATIONS = frozenset({0, 1})
HOUSEHOLD_LOCATION = 2


DEFAULT_COLUMNS = [
    ColumnSpec(
        "inf",
        _VERTEX,
        0,
        1,
        description="1 if the participant is infected",
    ),
    ColumnSpec(
        "tInf",
        _VERTEX,
        0,
        INFECTION_WINDOW_DAYS - 1,
        description=(
            "day of diagnosis within the study window; 0 means not "
            "infected (truthiness tests treat 0 as false)"
        ),
    ),
    ColumnSpec(
        "tInfec",
        _VERTEX,
        0,
        INFECTION_WINDOW_DAYS - 1,
        description="alias domain for infection time (Q2 uses tInfec)",
    ),
    ColumnSpec(
        "age",
        _VERTEX,
        0,
        99,
        comparison_bucket=10,
        description="age in years; cross-group comparisons use decades",
    ),
    ColumnSpec(
        "duration",
        _EDGE,
        0,
        240,
        description="cumulative contact duration (minutes, clipped)",
    ),
    ColumnSpec(
        "contacts",
        _EDGE,
        0,
        50,
        description="number of distinct contact events (clipped)",
    ),
    ColumnSpec(
        "last_contact",
        _EDGE,
        0,
        INFECTION_WINDOW_DAYS - 1,
        description="day of the most recent contact",
    ),
    ColumnSpec(
        "location",
        _EDGE,
        0,
        NUM_LOCATIONS - 1,
        description="category of the contact location",
    ),
    ColumnSpec(
        "setting",
        _EDGE,
        0,
        len(SETTINGS) - 1,
        description="exposure setting (family/household/social/work/other)",
    ),
]


class Schema:
    """A lookup table of column specs, keyed by (group, name)."""

    def __init__(self, columns: list[ColumnSpec] | None = None):
        self._columns: dict[str, ColumnSpec] = {}
        for spec in columns if columns is not None else DEFAULT_COLUMNS:
            self._columns[spec.name] = spec

    def lookup(self, group: ColumnGroup, name: str) -> ColumnSpec:
        spec = self._columns.get(name)
        if spec is None:
            raise QueryError(f"unknown column {group.value}.{name}")
        if group not in spec.groups:
            raise QueryError(
                f"column {name} is not available in group {group.value}"
            )
        return spec

    def column_names(self) -> list[str]:
        return sorted(self._columns)


DEFAULT_SCHEMA = Schema()


def scaled_schema(duration_high: int = 20, contacts_high: int = 8) -> Schema:
    """A domain-reduced schema for tests that run on tiny BGV rings.

    The paper profile's ring (N = 32768) comfortably fits the default
    domains; the 64-coefficient TEST ring does not fit SUM(edge.duration)
    queries, so tests shrink the summand domains instead of slowing the
    whole suite down with a bigger ring.
    """
    columns = []
    for spec in DEFAULT_COLUMNS:
        if spec.name == "duration":
            columns.append(
                ColumnSpec(
                    spec.name,
                    spec.groups,
                    0,
                    duration_high,
                    description=spec.description,
                )
            )
        elif spec.name == "contacts":
            columns.append(
                ColumnSpec(
                    spec.name,
                    spec.groups,
                    0,
                    contacts_high,
                    description=spec.description,
                )
            )
        else:
            columns.append(spec)
    return Schema(columns)
