"""Query compiler: AST -> :class:`~repro.query.plans.ExecutionPlan`.

The compiler performs the clause partitioning of §4.4/§4.5, derives the
exponent layout (value bounds via interval analysis over the bounded
column domains), and enforces the language restrictions the paper states
for multi-hop queries (no GROUP BY, no edge sums, no cross-group
comparisons beyond one hop).

It also provides the interpreter used wherever plaintext evaluation is
legitimate: destination-side predicate/SUM evaluation, origin-side self
clauses, and the plaintext baseline engine.
"""

from __future__ import annotations

from repro.errors import QueryError, UnsupportedQueryError
from repro.params import SystemParameters
from repro.query import ast
from repro.query.builtins import get_builtin
from repro.query.plans import CrossClauseSpec, ExecutionPlan, ExponentLayout
from repro.query.schema import DEFAULT_SCHEMA, Schema

#: Row bindings: {(group, column name): int value}
Bindings = dict[tuple[ast.ColumnGroup, str], int]


# ---------------------------------------------------------------------------
# Interpretation (plaintext evaluation of expressions and predicates)
# ---------------------------------------------------------------------------


def evaluate_expression(expr: ast.Expression, bindings: Bindings) -> int:
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Column):
        key = (expr.group, expr.name)
        if key not in bindings:
            raise QueryError(f"no binding for {expr}")
        return bindings[key]
    if isinstance(expr, ast.BinaryOp):
        left = evaluate_expression(expr.left, bindings)
        right = evaluate_expression(expr.right, bindings)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        raise QueryError(f"unknown operator {expr.op}")
    if isinstance(expr, ast.FuncCall):
        builtin = get_builtin(expr.name)
        args = [evaluate_expression(a, bindings) for a in expr.args]
        return builtin(*args)
    raise QueryError(f"cannot evaluate {type(expr).__name__}")


def evaluate_predicate(pred: ast.Predicate, bindings: Bindings) -> bool:
    if isinstance(pred, ast.Truthy):
        return evaluate_expression(pred.expr, bindings) != 0
    if isinstance(pred, ast.Compare):
        left = evaluate_expression(pred.left, bindings)
        right = evaluate_expression(pred.right, bindings)
        return {
            ">": left > right,
            "<": left < right,
            ">=": left >= right,
            "<=": left <= right,
            "=": left == right,
            "!=": left != right,
        }[pred.op]
    if isinstance(pred, ast.InRange):
        value = evaluate_expression(pred.value, bindings)
        return (
            evaluate_expression(pred.low, bindings)
            <= value
            <= evaluate_expression(pred.high, bindings)
        )
    if isinstance(pred, ast.Not):
        return not evaluate_predicate(pred.operand, bindings)
    if isinstance(pred, ast.And):
        return all(evaluate_predicate(p, bindings) for p in pred.operands)
    if isinstance(pred, ast.Or):
        return any(evaluate_predicate(p, bindings) for p in pred.operands)
    raise QueryError(f"cannot evaluate predicate {type(pred).__name__}")


def evaluate_all(preds, bindings: Bindings) -> bool:
    return all(evaluate_predicate(p, bindings) for p in preds)


# ---------------------------------------------------------------------------
# Static value-bound analysis
# ---------------------------------------------------------------------------


def expression_bounds(
    expr: ast.Expression, schema: Schema
) -> tuple[int, int]:
    """Interval analysis: conservative [low, high] of an expression."""
    if isinstance(expr, ast.Literal):
        return expr.value, expr.value
    if isinstance(expr, ast.Column):
        spec = schema.lookup(expr.group, expr.name)
        return spec.low, spec.high
    if isinstance(expr, ast.BinaryOp):
        a_low, a_high = expression_bounds(expr.left, schema)
        b_low, b_high = expression_bounds(expr.right, schema)
        if expr.op == "+":
            return a_low + b_low, a_high + b_high
        if expr.op == "-":
            return a_low - b_high, a_high - b_low
        if expr.op == "*":
            corners = [
                a_low * b_low,
                a_low * b_high,
                a_high * b_low,
                a_high * b_high,
            ]
            return min(corners), max(corners)
        raise QueryError(f"unknown operator {expr.op}")
    if isinstance(expr, ast.FuncCall):
        builtin = get_builtin(expr.name)
        for arg in expr.args:
            expression_bounds(arg, schema)  # validates columns exist
        return builtin.output_low, builtin.output_high
    raise QueryError(f"cannot bound {type(expr).__name__}")


def _validate_columns(node, schema: Schema) -> None:
    for column in ast.columns_in(node):
        schema.lookup(column.group, column.name)


# ---------------------------------------------------------------------------
# Cross-clause machinery (§4.5)
# ---------------------------------------------------------------------------


def _single_dest_column(clause: ast.Predicate) -> ast.Column:
    dest_columns = {
        c for c in ast.columns_in(clause) if c.group == ast.ColumnGroup.DEST
    }
    if len(dest_columns) != 1:
        raise UnsupportedQueryError(
            "cross-group comparisons must reference exactly one dest column"
        )
    return dest_columns.pop()


def qualifying_buckets(
    cross: CrossClauseSpec, origin_bindings: Bindings
) -> list[int]:
    """Which buckets of the destination column satisfy the cross clauses
    given the origin's own values.

    A bucket qualifies if *any* raw value inside it satisfies every cross
    clause — with bucket width 1 this is exact; for coarsened columns
    (age decades) it matches the paper's group-level semantics.
    """
    spec = cross.spec
    qualifying = []
    for bucket in range(spec.comparison_domain_size):
        low = spec.low + bucket * spec.comparison_bucket
        high = min(low + spec.comparison_bucket - 1, spec.high)
        for value in range(low, high + 1):
            bindings = dict(origin_bindings)
            bindings[(ast.ColumnGroup.DEST, cross.dest_column.name)] = value
            try:
                if evaluate_all(cross.clauses, bindings):
                    qualifying.append(bucket)
                    break
            except QueryError:
                break
    return qualifying


def bucket_group(
    group_by: ast.Expression,
    cross: CrossClauseSpec,
    bucket: int,
    origin_bindings: Bindings,
) -> int:
    """For a dest-side GROUP BY: which group a sequence bucket belongs
    to, evaluated with the bucket's representative value and the origin's
    own columns."""
    spec = cross.spec
    value = spec.low + bucket * spec.comparison_bucket
    bindings = dict(origin_bindings)
    bindings[(ast.ColumnGroup.DEST, cross.dest_column.name)] = value
    return evaluate_expression(group_by, bindings)


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def compile_query(
    query: ast.Query,
    params: SystemParameters,
    schema: Schema = DEFAULT_SCHEMA,
) -> ExecutionPlan:
    """Compile a parsed query into an execution plan.

    Raises :class:`UnsupportedQueryError` for queries outside the §4
    language subset and :class:`QueryError` for schema violations.
    """
    if query.hops < 1:
        raise UnsupportedQueryError("neigh(k) needs k >= 1")
    d = params.degree_bound

    # -- aggregate ----------------------------------------------------------
    is_ratio = query.denominator is not None
    if is_ratio:
        if query.output is not ast.OutputKind.GSUM:
            raise UnsupportedQueryError("ratio aggregates require GSUM")
        if not isinstance(query.denominator, ast.CountStar):
            raise UnsupportedQueryError(
                "ratio denominators must be COUNT(*)"
            )
    if query.output is ast.OutputKind.GSUM and query.clip is None:
        raise UnsupportedQueryError("GSUM queries must specify a CLIP range")
    if query.clip is not None and query.clip[0] > query.clip[1]:
        raise QueryError("CLIP range is inverted")

    sum_expr: ast.Expression | None = None
    if isinstance(query.numerator, ast.SumExpr):
        sum_expr = query.numerator.expr
        _validate_columns(sum_expr, schema)
        groups = ast.groups_in(sum_expr)
        if ast.ColumnGroup.SELF in groups:
            raise UnsupportedQueryError(
                "SUM arguments may only reference dest/edge columns"
            )
        low, high = expression_bounds(sum_expr, schema)
        if low < 0:
            raise UnsupportedQueryError(
                "SUM arguments must be non-negative (exponent encoding)"
            )
        max_value = high
    elif isinstance(query.numerator, ast.CountStar):
        max_value = 1
    else:
        raise UnsupportedQueryError("inner aggregate must be COUNT or SUM")

    # -- clause partition -----------------------------------------------------
    self_clauses: list[ast.Predicate] = []
    per_edge_clauses: list[ast.Predicate] = []
    dest_clauses: list[ast.Predicate] = []
    cross_clauses: list[ast.Predicate] = []
    for clause in ast.conjuncts(query.where):
        _validate_columns(clause, schema)
        groups = ast.groups_in(clause)
        has_self = ast.ColumnGroup.SELF in groups
        has_dest = ast.ColumnGroup.DEST in groups
        if has_self and has_dest:
            cross_clauses.append(clause)
        elif has_self:
            if ast.ColumnGroup.EDGE in groups:
                per_edge_clauses.append(clause)
            else:
                self_clauses.append(clause)
        elif groups:
            dest_clauses.append(clause)
        else:
            # Constant clause: fold at compile time.
            if not evaluate_predicate(clause, {}):
                self_clauses.append(clause)  # always-false: zeroes output

    cross: CrossClauseSpec | None = None
    if cross_clauses:
        dest_columns = {_single_dest_column(c) for c in cross_clauses}
        if len(dest_columns) != 1:
            raise UnsupportedQueryError(
                "all cross-group comparisons must share one dest column"
            )
        column = dest_columns.pop()
        cross = CrossClauseSpec(
            dest_column=column,
            spec=schema.lookup(ast.ColumnGroup.DEST, column.name),
            clauses=tuple(cross_clauses),
        )

    # -- GROUP BY ---------------------------------------------------------------
    group_site: ast.ColumnGroup | None = None
    num_groups = 1
    if query.group_by is not None:
        _validate_columns(query.group_by, schema)
        groups = ast.groups_in(query.group_by)
        if groups <= {ast.ColumnGroup.SELF}:
            group_site = ast.ColumnGroup.SELF
        elif groups <= {ast.ColumnGroup.EDGE}:
            group_site = ast.ColumnGroup.EDGE
        elif ast.ColumnGroup.DEST in groups and ast.ColumnGroup.EDGE not in groups:
            # Q10-style grouping on a dest column: the origin groups the
            # *buckets* of the §4.5 sequence, so the group key may mix
            # dest and self columns as long as the dest side is the one
            # column already driving the sequence.
            group_site = ast.ColumnGroup.DEST
            dest_cols = {
                c
                for c in ast.columns_in(query.group_by)
                if c.group == ast.ColumnGroup.DEST
            }
            if len(dest_cols) != 1:
                raise UnsupportedQueryError(
                    "dest-side GROUP BY must use exactly one dest column"
                )
            group_column = dest_cols.pop()
            if cross is None:
                cross = CrossClauseSpec(
                    dest_column=group_column,
                    spec=schema.lookup(ast.ColumnGroup.DEST, group_column.name),
                    clauses=(),
                )
            elif cross.dest_column != group_column:
                raise UnsupportedQueryError(
                    "dest-side GROUP BY must use the same dest column as "
                    "the cross-group comparison"
                )
        else:
            raise UnsupportedQueryError(
                "GROUP BY must use self, edge, or one dest column (§4.5)"
            )
        low, high = expression_bounds(query.group_by, schema)
        num_groups = high - low + 1
        if low != 0:
            raise UnsupportedQueryError(
                "GROUP BY expressions must start their range at 0 "
                "(wrap them in a bucketing builtin)"
            )

    # -- multi-hop restrictions (§4.4) -----------------------------------------
    if query.hops > 1:
        if query.group_by is not None:
            raise UnsupportedQueryError("multi-hop queries cannot GROUP BY")
        if cross is not None:
            raise UnsupportedQueryError(
                "multi-hop queries cannot compare fields across column groups"
            )
        if sum_expr is not None and ast.ColumnGroup.EDGE in ast.groups_in(
            sum_expr
        ):
            raise UnsupportedQueryError(
                "multi-hop queries cannot sum over edge columns"
            )

    # -- exponent layout ---------------------------------------------------------
    # One-hop local queries aggregate over neighbors only (§4.3); the
    # multi-hop flooding protocol folds in the origin's own value as well
    # (§4.4 "along with an encryption of its own value").
    neighborhood = sum(d**i for i in range(1, query.hops + 1))
    if query.hops > 1:
        neighborhood += 1
    if is_ratio:
        pair_base = neighborhood * max_value + 1
        block_size = neighborhood * pair_base + neighborhood * max_value + 1
    else:
        pair_base = None
        block_size = neighborhood * max_value + 1
    layout = ExponentLayout(
        num_groups=num_groups,
        block_size=block_size,
        pair_base=pair_base,
        max_value=max_value,
    )

    return ExecutionPlan(
        query=query,
        hops=query.hops,
        output=query.output,
        is_ratio=is_ratio,
        self_clauses=tuple(self_clauses),
        per_edge_clauses=tuple(per_edge_clauses),
        dest_clauses=tuple(dest_clauses),
        cross=cross,
        sum_expr=sum_expr,
        group_by=query.group_by,
        group_site=group_site,
        layout=layout,
        clip=query.clip,
        bins=query.bins,
        degree_bound=d,
    )
