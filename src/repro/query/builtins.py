"""Built-in functions usable in queries (§2.1's onSubway, isHousehold,
stage).

Each builtin maps bounded integer inputs to a bounded integer output, so
it composes with the static sensitivity analysis.  Predicate builtins
return 0/1; bucketing builtins return a small category index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import QueryError
from repro.query import schema as schema_mod

#: stage() buckets for Q10: incubation (<=4 days after the index case's
#: diagnosis) vs illness period.
STAGE_NAMES = ("incubation", "illness")


@dataclass(frozen=True)
class Builtin:
    """A registered query function."""

    name: str
    arity: int
    output_low: int
    output_high: int
    fn: Callable[..., int]

    @property
    def output_domain_size(self) -> int:
        return self.output_high - self.output_low + 1

    def __call__(self, *args: int) -> int:
        if len(args) != self.arity:
            raise QueryError(
                f"{self.name} expects {self.arity} argument(s), got {len(args)}"
            )
        value = int(self.fn(*args))
        return min(max(value, self.output_low), self.output_high)


def _on_subway(location: int) -> int:
    return 1 if location in schema_mod.SUBWAY_LOCATIONS else 0


def _is_household(location: int) -> int:
    return 1 if location == schema_mod.HOUSEHOLD_LOCATION else 0


def _stage(day_offset: int) -> int:
    """Q10: classify a transmission by how long after the index case's
    diagnosis it happened — incubation period (0) vs illness period (1)."""
    return 0 if day_offset <= 4 else 1


def _decade(age: int) -> int:
    return min(max(age, 0), 99) // 10


BUILTINS: dict[str, Builtin] = {
    b.name: b
    for b in (
        Builtin("onSubway", 1, 0, 1, _on_subway),
        Builtin("isHousehold", 1, 0, 1, _is_household),
        Builtin("stage", 1, 0, len(STAGE_NAMES) - 1, _stage),
        Builtin("decade", 1, 0, 9, _decade),
    )
}


def get_builtin(name: str) -> Builtin:
    builtin = BUILTINS.get(name)
    if builtin is None:
        raise QueryError(f"unknown function {name}()")
    return builtin
