"""Seeded random query generation for the audit harness.

Draws query texts from the full surface of the grammar — aggregate kind,
WHERE composition across evaluation sites (self, dest, edge, cross),
GROUP BY site, CLIP ranges — and compile-checks every candidate against
the target parameters and schema, so callers only ever see queries that
parse, compile, and fit the HE profile.  A curated pool of known-good
shapes guarantees the generator always terminates with a valid query
even if every random candidate is rejected.
"""

from __future__ import annotations

import random

from repro.errors import MyceliumError
from repro.params import BGVProfile, SystemParameters, TEST
from repro.query.compiler import compile_query
from repro.query.parser import parse
from repro.query.plans import ExecutionPlan
from repro.query.schema import Schema, scaled_schema

#: Known-good shapes covering every plan feature the engines support:
#: plain and SUM histograms, cross-group comparison (§4.5 sequences),
#: self/edge/dest GROUP BY sites, ratio GSUM with CLIP, and multi-hop.
CURATED_QUERIES = (
    "SELECT HISTO(COUNT(*)) FROM neigh(1)",
    "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE dest.inf",
    "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE dest.inf AND self.inf",
    "SELECT HISTO(SUM(edge.contacts)) FROM neigh(1) WHERE dest.inf",
    "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE dest.tInf > self.tInf + 2",
    "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE dest.inf GROUP BY edge.setting",
    "SELECT HISTO(COUNT(*)) FROM neigh(1) GROUP BY stage(self.tInf)",
    "SELECT GSUM(SUM(dest.inf)/COUNT(*)) FROM neigh(1) WHERE self.inf CLIP [0, 1]",
    "SELECT HISTO(COUNT(*)) FROM neigh(2) WHERE dest.inf",
)

#: Queries with no GROUP BY, for trials whose oracle assumes each origin
#: touches exactly one coefficient block (e.g. empirical sensitivity).
CURATED_UNGROUPED_QUERIES = tuple(
    q for q in CURATED_QUERIES if "GROUP BY" not in q
)

_AGGREGATES = (
    "HISTO(COUNT(*))",
    "HISTO(SUM(edge.contacts))",
    "HISTO(SUM(dest.inf))",
    "GSUM(SUM(dest.inf)/COUNT(*))",
    "GSUM(SUM(edge.contacts)/COUNT(*))",
)

_WHERE_FRAGMENTS = (
    "dest.inf",
    "self.inf",
    "dest.tInf > 3",
    "self.tInf > 0",
    "dest.age < 60",
    "edge.duration > 3",
    "edge.contacts > 1",
    "edge.setting = 1",
    "edge.location = 2",
    "dest.tInf > self.tInf + 2",
)

_GROUP_BYS = ("edge.setting", "stage(self.tInf)")

_CLIPS = ("CLIP [0, 1]", "CLIP [0, 2]")

#: Multi-hop plans support plain aggregates over self/dest clauses only.
_MULTIHOP_FRAGMENTS = (
    "dest.inf",
    "self.inf",
    "dest.tInf > 3",
    "dest.age < 60",
)


def _candidate(rng: random.Random) -> str:
    if rng.random() < 0.15:
        parts = ["SELECT HISTO(COUNT(*)) FROM neigh(2)"]
        if rng.random() < 0.8:
            clauses = rng.sample(_MULTIHOP_FRAGMENTS, rng.randint(1, 2))
            parts.append("WHERE " + " AND ".join(clauses))
        return " ".join(parts)
    aggregate = rng.choice(_AGGREGATES)
    parts = [f"SELECT {aggregate} FROM neigh(1)"]
    if rng.random() < 0.85:
        clauses = rng.sample(_WHERE_FRAGMENTS, rng.randint(1, 3))
        parts.append("WHERE " + " AND ".join(clauses))
    if rng.random() < 0.35:
        parts.append("GROUP BY " + rng.choice(_GROUP_BYS))
    if aggregate.startswith("GSUM"):
        parts.append(rng.choice(_CLIPS))
    return " ".join(parts)


def random_query(
    rng: random.Random,
    params: SystemParameters,
    schema: Schema | None = None,
    profile: BGVProfile = TEST,
    max_attempts: int = 25,
    ungrouped_only: bool = False,
) -> tuple[str, ExecutionPlan]:
    """Draw one random query that compiles and fits ``profile``.

    Candidates that fail to parse, compile, or pass the feasibility
    check (noise budget, coefficient capacity) are redrawn; after
    ``max_attempts`` rejections the curated pool is used instead, so the
    function never fails on a valid configuration.
    """
    schema = schema if schema is not None else scaled_schema(10, 5)

    def compiled(text: str) -> ExecutionPlan | None:
        try:
            plan = compile_query(parse(text), params, schema)
            plan.validate_feasible(profile)
        except MyceliumError:
            return None
        return plan

    for _ in range(max_attempts):
        text = _candidate(rng)
        if ungrouped_only and "GROUP BY" in text:
            continue
        plan = compiled(text)
        if plan is not None:
            return text, plan
    pool = CURATED_UNGROUPED_QUERIES if ungrouped_only else CURATED_QUERIES
    text = rng.choice(pool)
    plan = compiled(text)
    if plan is None:  # pragma: no cover - curated queries always compile
        raise MyceliumError(f"curated query failed to compile: {text}")
    return text, plan
