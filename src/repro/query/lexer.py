"""Tokenizer for the query language.

Accepts both plain-ASCII AND/OR and the paper's ∧/∨ symbols, so the
queries of Figure 2 can be pasted nearly verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import QuerySyntaxError

KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "AND",
    "OR",
    "NOT",
    "IN",
    "NEIGH",
    "HISTO",
    "GSUM",
    "COUNT",
    "SUM",
    "CLIP",
    "BINS",
}


class TokenKind(Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    SYMBOL = "symbol"
    END = "end"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.text == word

    def is_symbol(self, symbol: str) -> bool:
        return self.kind == TokenKind.SYMBOL and self.text == symbol


_TWO_CHAR = (">=", "<=", "!=", "==")
_ONE_CHAR = set("()[].,*/+-<>=")


def tokenize(text: str) -> list[Token]:
    """Split query text into tokens."""
    # Normalize the paper's logical symbols.
    text = text.replace("∧", " AND ").replace("∨", " OR ")
    text = text.replace("∈", " IN ")
    tokens: list[Token] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text[i : i + 2] in _TWO_CHAR:
            tokens.append(Token(TokenKind.SYMBOL, text[i : i + 2], i))
            i += 2
            continue
        if ch in _ONE_CHAR:
            tokens.append(Token(TokenKind.SYMBOL, ch, i))
            i += 1
            continue
        if ch.isdigit():
            j = i
            while j < length and text[j].isdigit():
                j += 1
            tokens.append(Token(TokenKind.NUMBER, text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, word.upper(), i))
            else:
                tokens.append(Token(TokenKind.IDENT, word, i))
            i = j
            continue
        raise QuerySyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenKind.END, "", length))
    return tokens
