"""The §4 query language: parser, compiler, sensitivity analysis, and
the Figure 2 catalog.

``parse`` (:mod:`repro.query.parser`) accepts the paper's SQL dialect;
``compile_query`` (:mod:`repro.query.compiler`) partitions WHERE clauses
across evaluation sites and derives the exponent layout that reproduces
the Figure 6 ciphertext counts; :mod:`repro.query.sensitivity` is the
static analysis of §4.7.
"""
