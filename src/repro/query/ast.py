"""Abstract syntax tree for Mycelium's SQL dialect (§4).

The language is the paper's subset of SQL with two extensions: the outer
aggregator must be HISTO or GSUM, and GSUM queries carry a CLIP range.
We additionally accept an optional BINS clause for HISTO (the paper says
"CLIP commands and histogram bins have been omitted" from Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class ColumnGroup(Enum):
    """The three column groups visible to a local query (§4)."""

    SELF = "self"
    DEST = "dest"
    EDGE = "edge"


# -- expressions --------------------------------------------------------------


@dataclass(frozen=True)
class Column:
    """A reference like ``dest.tInf``."""

    group: ColumnGroup
    name: str

    def __str__(self) -> str:
        return f"{self.group.value}.{self.name}"


@dataclass(frozen=True)
class Literal:
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BinaryOp:
    """Arithmetic: +, -, *."""

    op: str
    left: "Expression"
    right: "Expression"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class FuncCall:
    """A built-in predicate/bucketing function like onSubway(...)."""

    name: str
    args: tuple["Expression", ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


Expression = Column | Literal | BinaryOp | FuncCall


# -- predicates ---------------------------------------------------------------


@dataclass(frozen=True)
class Compare:
    """A relational test: <, <=, >, >=, =, !=."""

    op: str
    left: Expression
    right: Expression

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class InRange:
    """value IN [lo, hi] — the BETWEEN-style range test of Q2/Q9."""

    value: Expression
    low: Expression
    high: Expression

    def __str__(self) -> str:
        return f"{self.value} IN [{self.low}, {self.high}]"


@dataclass(frozen=True)
class Truthy:
    """A bare column/function used as a predicate (e.g. ``self.inf``)."""

    expr: Expression

    def __str__(self) -> str:
        return str(self.expr)


@dataclass(frozen=True)
class Not:
    operand: "Predicate"

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


@dataclass(frozen=True)
class And:
    operands: tuple["Predicate", ...]

    def __str__(self) -> str:
        return " AND ".join(f"({o})" for o in self.operands)


@dataclass(frozen=True)
class Or:
    operands: tuple["Predicate", ...]

    def __str__(self) -> str:
        return " OR ".join(f"({o})" for o in self.operands)


Predicate = Compare | InRange | Truthy | Not | And | Or


# -- aggregates ---------------------------------------------------------------


@dataclass(frozen=True)
class CountStar:
    def __str__(self) -> str:
        return "COUNT(*)"


@dataclass(frozen=True)
class SumExpr:
    expr: Expression

    def __str__(self) -> str:
        return f"SUM({self.expr})"


InnerAggregate = CountStar | SumExpr


class OutputKind(Enum):
    HISTO = "HISTO"
    GSUM = "GSUM"


@dataclass(frozen=True)
class Query:
    """A parsed query."""

    output: OutputKind
    numerator: InnerAggregate
    #: For GSUM ratio queries (secondary attack rates), the denominator
    #: COUNT(*); None for plain aggregates.
    denominator: InnerAggregate | None
    hops: int
    where: Predicate | None
    group_by: Expression | None
    clip: tuple[int, int] | None = None
    bins: tuple[int, ...] | None = None

    def __str__(self) -> str:
        inner = str(self.numerator)
        if self.denominator is not None:
            inner = f"{inner}/{self.denominator}"
        text = f"SELECT {self.output.value}({inner}) FROM neigh({self.hops})"
        if self.where is not None:
            text += f" WHERE {self.where}"
        if self.group_by is not None:
            text += f" GROUP BY {self.group_by}"
        if self.clip is not None:
            text += f" CLIP [{self.clip[0]}, {self.clip[1]}]"
        if self.bins is not None:
            text += f" BINS [{', '.join(str(b) for b in self.bins)}]"
        return text


def conjuncts(predicate: Predicate | None) -> list[Predicate]:
    """Flatten a predicate into its top-level AND factors (the compiler
    assumes conjunctive normal form at the top level, §4.4)."""
    if predicate is None:
        return []
    if isinstance(predicate, And):
        result = []
        for operand in predicate.operands:
            result.extend(conjuncts(operand))
        return result
    return [predicate]


def columns_in(node) -> set[Column]:
    """All column references inside an expression or predicate."""
    if isinstance(node, Column):
        return {node}
    if isinstance(node, Literal) or node is None:
        return set()
    if isinstance(node, BinaryOp):
        return columns_in(node.left) | columns_in(node.right)
    if isinstance(node, FuncCall):
        out: set[Column] = set()
        for arg in node.args:
            out |= columns_in(arg)
        return out
    if isinstance(node, Compare):
        return columns_in(node.left) | columns_in(node.right)
    if isinstance(node, InRange):
        return columns_in(node.value) | columns_in(node.low) | columns_in(node.high)
    if isinstance(node, Truthy):
        return columns_in(node.expr)
    if isinstance(node, Not):
        return columns_in(node.operand)
    if isinstance(node, (And, Or)):
        out = set()
        for operand in node.operands:
            out |= columns_in(operand)
        return out
    if isinstance(node, CountStar):
        return set()
    if isinstance(node, SumExpr):
        return columns_in(node.expr)
    raise TypeError(f"unknown AST node {type(node).__name__}")


def groups_in(node) -> set[ColumnGroup]:
    """Column groups referenced by an AST node."""
    return {column.group for column in columns_in(node)}
