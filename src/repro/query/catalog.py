"""The paper's query catalog (Figure 2), with the CLIP ranges and
histogram bins the paper says it omitted.

Every entry records the query text, the motivating description, and the
ciphertext count the paper reports in Figure 6 (which the test suite
checks against the compiler's output).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import SystemParameters
from repro.query import ast
from repro.query.compiler import compile_query
from repro.query.parser import parse
from repro.query.plans import ExecutionPlan
from repro.query.schema import Schema, DEFAULT_SCHEMA


@dataclass(frozen=True)
class CatalogEntry:
    """One published query."""

    qid: str
    description: str
    text: str
    #: Ciphertexts per contribution, as reported in Figure 6.
    paper_ciphertexts: int

    def parsed(self) -> ast.Query:
        return parse(self.text)

    def plan(
        self,
        params: SystemParameters,
        schema: Schema = DEFAULT_SCHEMA,
    ) -> ExecutionPlan:
        return compile_query(self.parsed(), params, schema)


CATALOG: dict[str, CatalogEntry] = {
    entry.qid: entry
    for entry in (
        CatalogEntry(
            qid="Q1",
            description=(
                "Histogram of the number of infections in an infected "
                "participant's two-hop neighborhood, within 14 days"
            ),
            text=(
                "SELECT HISTO(COUNT(*)) FROM neigh(2) "
                "WHERE dest.inf AND self.inf"
            ),
            paper_ciphertexts=1,
        ),
        CatalogEntry(
            qid="Q2",
            description=(
                "Histogram of the amount of time A has spent near B, if A "
                "is infected within 5-15 days of contact with B"
            ),
            text=(
                "SELECT HISTO(SUM(edge.duration)) FROM neigh(1) "
                "WHERE self.inf AND dest.tInfec IN "
                "[edge.last_contact+5, edge.last_contact+10]"
            ),
            paper_ciphertexts=1,
        ),
        CatalogEntry(
            qid="Q3",
            description=(
                "Histogram of the frequency of contact between A and B, "
                "if A infected B"
            ),
            text=(
                "SELECT HISTO(SUM(edge.contacts)) FROM neigh(1) "
                "WHERE self.inf AND dest.tInf AND (dest.tInf > self.tInf+2)"
            ),
            paper_ciphertexts=14,
        ),
        CatalogEntry(
            qid="Q4",
            description=(
                "Secondary attack rate of infected participants if they "
                "travelled on the subway"
            ),
            text=(
                "SELECT HISTO(SUM(dest.inf)) FROM neigh(1) "
                "WHERE onSubway(edge.location) AND self.inf"
            ),
            paper_ciphertexts=1,
        ),
        CatalogEntry(
            qid="Q5",
            description=(
                "Histogram of the number of distinct contacts within the "
                "last 24 hours, for different age groups"
            ),
            text=(
                "SELECT HISTO(COUNT(*)) FROM neigh(1) "
                "GROUP BY decade(self.age)"
            ),
            paper_ciphertexts=1,
        ),
        CatalogEntry(
            qid="Q6",
            description=(
                "Histogram of secondary infections caused by infected "
                "participants in different age groups"
            ),
            text=(
                "SELECT HISTO(COUNT(*)) FROM neigh(1) "
                "WHERE self.inf AND dest.tInf AND (dest.tInf > self.tInf+2) "
                "GROUP BY decade(self.age)"
            ),
            paper_ciphertexts=14,
        ),
        CatalogEntry(
            qid="Q7",
            description=(
                "Histogram of secondary infections based on type of "
                "exposure (such as family, social, work)"
            ),
            text=(
                "SELECT HISTO(COUNT(*)) FROM neigh(1) "
                "WHERE self.inf AND dest.tInf AND (dest.tInf > self.tInf+2) "
                "GROUP BY edge.setting"
            ),
            paper_ciphertexts=14,
        ),
        CatalogEntry(
            qid="Q8",
            description=(
                "Secondary attack rates in household vs non-household "
                "contacts"
            ),
            text=(
                "SELECT GSUM(SUM(dest.inf)/COUNT(*)) FROM neigh(1) "
                "WHERE self.inf GROUP BY isHousehold(edge.location) "
                "CLIP [0, 1]"
            ),
            paper_ciphertexts=1,
        ),
        CatalogEntry(
            qid="Q9",
            description=(
                "Secondary attack rates within case-contact pairs in the "
                "same age group vs different age groups"
            ),
            text=(
                "SELECT GSUM(SUM(dest.inf)/COUNT(*)) FROM neigh(1) "
                "WHERE dest.age IN [0, 100] AND "
                "self.age IN [dest.age-10, dest.age+10] CLIP [0, 1]"
            ),
            paper_ciphertexts=10,
        ),
        CatalogEntry(
            qid="Q10",
            description=(
                "Secondary attack rates at different stages of the disease "
                "(incubation period vs illness period)"
            ),
            text=(
                "SELECT GSUM(SUM(dest.inf)/COUNT(*)) FROM neigh(1) "
                "WHERE self.inf AND (dest.tInf > self.tInf+2) "
                "GROUP BY stage(dest.tInf - self.tInf) CLIP [0, 1]"
            ),
            paper_ciphertexts=14,
        ),
    )
}


def all_queries() -> list[CatalogEntry]:
    return [CATALOG[f"Q{i}"] for i in range(1, 11)]
