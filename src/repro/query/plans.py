"""Execution-plan structures produced by the compiler (§4.3-§4.5).

A plan captures everything the engines need:

* how the WHERE clauses are partitioned across evaluation sites
  (origin-global, origin-per-edge, destination, cross-group sequence);
* the exponent layout: how (group, count, sum) triples map into
  plaintext-polynomial coefficients;
* how many ciphertexts each contribution requires (Figure 6);
* the multiplication count, for the noise-budget feasibility check that
  reproduces the §6.2 generality result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto import noise
from repro.errors import UnsupportedQueryError
from repro.params import BGVProfile, SystemParameters
from repro.query import ast
from repro.query.schema import ColumnSpec


@dataclass(frozen=True)
class ExponentLayout:
    """How local results are encoded as monomial exponents (§4.1, §4.5).

    Each GROUP BY group owns a disjoint coefficient block of
    ``block_size`` coefficients.  Within a block, a plain aggregate value
    ``v`` encodes as exponent ``v``; a ratio aggregate (count, sum)
    encodes as ``count * pair_base + sum``.
    """

    num_groups: int
    block_size: int
    pair_base: int | None  # None for plain aggregates
    max_value: int  # vmax: largest per-neighbor summand

    @property
    def total_coefficients(self) -> int:
        return self.num_groups * self.block_size

    def encode(self, group: int, count: int, total: int) -> int:
        """Exponent for one origin's local result."""
        if self.pair_base is None:
            inner = total
        else:
            inner = count * self.pair_base + total
        return group * self.block_size + inner

    def decode(self, exponent: int) -> tuple[int, int, int]:
        """(group, count, sum) for a coefficient index.  For plain
        aggregates count is reported as -1 (unknown)."""
        group, inner = divmod(exponent, self.block_size)
        if self.pair_base is None:
            return group, -1, inner
        count, total = divmod(inner, self.pair_base)
        return group, count, total


@dataclass(frozen=True)
class CrossClauseSpec:
    """A §4.5 sequence protocol instance: the destination reports one
    ciphertext per bucket of ``dest_column``'s comparison domain, and the
    origin selects the qualifying subsequence."""

    dest_column: ast.Column
    spec: ColumnSpec
    clauses: tuple[ast.Predicate, ...]

    @property
    def num_buckets(self) -> int:
        return self.spec.comparison_domain_size


@dataclass(frozen=True)
class ExecutionPlan:
    """A compiled query, ready for the plaintext or encrypted engine."""

    query: ast.Query
    hops: int
    output: ast.OutputKind
    is_ratio: bool
    #: SELF-only clauses: evaluated at the origin; failure zeroes the
    #: whole contribution (§4.4 "Final processing").
    self_clauses: tuple[ast.Predicate, ...]
    #: SELF+EDGE clauses: the origin filters individual neighbors.
    per_edge_clauses: tuple[ast.Predicate, ...]
    #: DEST/EDGE clauses: evaluated by each destination (§4.4).
    dest_clauses: tuple[ast.Predicate, ...]
    #: SELF x DEST clauses: handled via the §4.5 sequence protocol.
    cross: CrossClauseSpec | None
    #: SUM argument (None for COUNT), evaluated destination-side.
    sum_expr: ast.Expression | None
    group_by: ast.Expression | None
    group_site: ast.ColumnGroup | None  # SELF or EDGE
    layout: ExponentLayout
    clip: tuple[int, int] | None
    bins: tuple[int, ...] | None
    degree_bound: int

    @property
    def ciphertexts_per_contribution(self) -> int:
        """The Figure 6 column: ciphertexts each device sends per
        neighbor contribution."""
        return self.cross.num_buckets if self.cross is not None else 1

    @property
    def multiplications(self) -> int:
        """Homomorphic multiplications per origin (dominant term d^k,
        matching the paper's accounting for Q1)."""
        return noise.multiplications_for_query(self.hops, self.degree_bound)

    def budget_report(self, profile: BGVProfile) -> noise.BudgetReport:
        return noise.check_budget(profile, self.hops, self.degree_bound)

    def validate_feasible(self, profile: BGVProfile) -> None:
        """Raise if the plan does not fit the HE parameters: either the
        noise budget (§6.2) or the plaintext coefficient capacity."""
        noise.require_budget(profile, self.hops, self.degree_bound)
        if self.layout.total_coefficients > profile.n:
            raise UnsupportedQueryError(
                f"plan needs {self.layout.total_coefficients} plaintext "
                f"coefficients but the ring only has {profile.n}"
            )

    def communication_crounds(self, params: SystemParameters) -> int:
        """Vertex-program rounds cost 2k message waves of k+1 C-rounds
        each (§4.4 flooding + aggregation), i.e. Figure 5(d)'s 2k+2 for
        one-hop queries."""
        return 2 * self.hops * (params.hops + 1)
