"""Draw random trial cases from one master seed.

``generate_case(master_seed, index)`` is a pure function: every random
choice comes from an RNG derived from ``(master_seed, "case", index)``
via :func:`repro.runtime.derive_rng`, so any trial can be regenerated
from the two integers alone — the property the replay bundle and the
shrinker both rely on.

The trial-kind schedule is a fixed function of the index so a run of N
trials covers every invariant family at a predictable ratio (mixnet
trials build a full onion-routing world and are the most expensive, so
they get the smallest share).
"""

from __future__ import annotations

import random
from functools import lru_cache

from repro.audit.cases import GraphSpec, TrialCase
from repro.engine.malicious import Behavior
from repro.params import TEST, SystemParameters
from repro.query.randgen import random_query
from repro.query.schema import ColumnGroup, Schema, scaled_schema
from repro.runtime import derive_rng
from repro.runtime.backends import available_backends
from repro.workloads.graphgen import ContactGraph

#: Degree bound for generated graphs/plans: 3 keeps two-hop plans (d^2=9
#: multiplications) inside the TEST profile's noise budget.
DEGREE_BOUND = 3

#: Behaviours the generator draws from — everything except LIE_IN_RANGE,
#: which is undetectable by design and has no exact oracle (§4.7).
FAULT_BEHAVIORS = (
    Behavior.DROP_MESSAGE,
    Behavior.FORGED_PROOF,
    Behavior.OVERSIZED_EXPONENT,
    Behavior.MULTI_COEFFICIENT,
    Behavior.LARGE_COEFFICIENT,
    Behavior.BAD_AGGREGATION,
)


def audit_params() -> SystemParameters:
    """The compilation parameters every generated plan uses."""
    return SystemParameters(degree_bound=DEGREE_BOUND)


def audit_schema() -> Schema:
    """Domain-reduced schema so SUM queries fit the TEST ring."""
    return scaled_schema(10, 5)


@lru_cache(maxsize=1)
def _backends() -> tuple[str, ...]:
    return tuple(available_backends())


def _random_attrs(
    rng: random.Random, schema: Schema, group: ColumnGroup
) -> dict[str, int]:
    attrs = {}
    for name in schema.column_names():
        try:
            spec = schema.lookup(group, name)
        except Exception:
            continue
        attrs[name] = rng.randint(spec.low, spec.high)
    return attrs


def random_graph(rng: random.Random, schema: Schema | None = None) -> GraphSpec:
    """A small random contact graph with schema-conformant attributes."""
    schema = schema if schema is not None else audit_schema()
    num_vertices = rng.randint(2, 8)
    graph = ContactGraph(degree_bound=DEGREE_BOUND)
    for _ in range(num_vertices):
        graph.add_vertex(**_random_attrs(rng, schema, ColumnGroup.SELF))
    pairs = [
        (u, v)
        for u in range(num_vertices)
        for v in range(u + 1, num_vertices)
    ]
    rng.shuffle(pairs)
    target = rng.randint(max(1, num_vertices - 1), len(pairs))
    added = 0
    for u, v in pairs:
        if added >= target:
            break
        if graph.add_edge(u, v, **_random_attrs(rng, schema, ColumnGroup.EDGE)):
            added += 1
    return GraphSpec.from_graph(graph)


def _random_faults(
    rng: random.Random, num_vertices: int
) -> tuple[tuple[int, ...], dict[int, str]]:
    """Offline devices plus Byzantine behaviour assignments."""
    if rng.random() >= 0.6:
        return (), {}
    offline = tuple(
        v for v in range(num_vertices) if rng.random() < 0.15
    )
    behaviors = {
        v: rng.choice(FAULT_BEHAVIORS).value
        for v in range(num_vertices)
        if v not in offline and rng.random() < 0.2
    }
    return offline, behaviors


def _kind_for_index(index: int) -> str:
    if index % 12 == 11:
        return "mixnet"
    if index % 12 == 9:
        return "crash"
    if index % 12 == 6:
        return "robust"
    if index % 12 == 10:
        return "flagging"
    if index % 12 == 2:
        return "shard_equivalence"
    if index % 12 == 4:
        return "offline_equivalence"
    if index % 24 == 8:
        return "byzantine_survival"
    if index % 24 == 20:
        return "quarantine_soundness"
    if index % 4 == 1:
        return "budget"
    if index % 4 == 3:
        return "sensitivity" if index % 8 == 3 else "shamir"
    return "equivalence"


def generate_case(
    master_seed: int, index: int, kind: str | None = None
) -> TrialCase:
    """Deterministically draw trial ``index`` of a run seeded with
    ``master_seed``.

    ``kind`` overrides the index schedule (used by ``--kinds`` filtered
    runs); the case data still derives purely from the two integers.
    """
    rng = derive_rng(master_seed, "case", index)
    kind = kind if kind is not None else _kind_for_index(index)
    seed = rng.getrandbits(48)

    if kind == "budget":
        total = round(rng.uniform(0.5, 3.0), 3)
        epsilons = tuple(
            round(rng.choice([0.01, 0.05, 0.1, 0.25]) * rng.uniform(0.5, 2.0), 6)
            for _ in range(rng.randint(5, 30))
        )
        per_query = round(
            total * rng.choice([0.02, 0.05, 0.1, 0.5, 1.2]), 6
        )
        return TrialCase(
            kind=kind,
            seed=seed,
            index=index,
            total_epsilon=total,
            epsilons=epsilons,
            per_query_epsilon=per_query,
            delta=1e-6,
        )

    if kind == "shamir":
        threshold = rng.randint(2, 3)
        return TrialCase(
            kind=kind,
            seed=seed,
            index=index,
            threshold=threshold,
            num_shares=threshold + rng.randint(1, 2),
        )

    if kind in ("robust", "flagging"):
        # A committee large enough to *correct* errors: with threshold 2
        # and n in 4..7 the unique-decoding radius (n - 2) // 2 is 1..2.
        threshold = 2
        num_shares = rng.randint(4, 7)
        radius = (num_shares - threshold) // 2
        if kind == "robust":
            num_corrupt = rng.randint(0, radius)
        else:
            num_corrupt = radius
        corrupt = tuple(
            sorted(rng.sample(range(num_shares), num_corrupt))
        )
        return TrialCase(
            kind=kind,
            seed=seed,
            index=index,
            threshold=threshold,
            num_shares=num_shares,
            corrupt=corrupt,
        )

    if kind == "mixnet":
        return TrialCase(
            kind=kind,
            seed=seed,
            index=index,
            people=8,
            failure=round(rng.uniform(0.05, 0.2), 3),
        )

    if kind == "crash":
        from repro.durability.campaign import PHASES

        num_queries = rng.randint(1, 2)
        return TrialCase(
            kind=kind,
            seed=seed,
            index=index,
            people=8,
            kill_phase=rng.choice(PHASES),
            kill_query=rng.randrange(num_queries),
            kill_before=rng.random() < 0.5,
            num_queries=num_queries,
            rotate_every=rng.choice([0, 1]),
        )

    if kind in ("byzantine_survival", "quarantine_soundness"):
        schema = audit_schema()
        graph = random_graph(rng, schema)
        n = len(graph.vertices)
        # byzantine_survival pins honest bit-identity against an
        # attackers-offline baseline, which only forged-proof attackers
        # guarantee (they are both leaf-breaking and origin-rejecting);
        # quarantine_soundness only needs origin rejection, so it also
        # draws bad-aggregation claim tamperers.
        pool = (
            ("forged-proof",)
            if kind == "byzantine_survival"
            else ("forged-proof", "bad-aggregation")
        )
        num_attackers = rng.randint(1, max(1, min(2, n - 1)))
        attackers = sorted(rng.sample(range(n), num_attackers))
        behaviors = {device: rng.choice(pool) for device in attackers}
        honest = [v for v in range(n) if v not in behaviors]
        # Honest churn rides along, but at least one honest origin stays
        # online so the aggregate is non-empty.
        offline = tuple(
            v for v in honest[:-1] if rng.random() < 0.15
        )
        query = rng.choice(
            (
                "SELECT HISTO(COUNT(*)) FROM neigh(1)",
                "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE dest.inf",
            )
        )
        return TrialCase(
            kind=kind,
            seed=seed,
            index=index,
            query=query,
            graph=graph,
            offline=offline,
            behaviors=behaviors,
            backend=rng.choice(_backends()) if _backends() else "pure",
            num_queries=rng.randint(2, 3),
        )

    params = audit_params()
    schema = audit_schema()
    graph = random_graph(rng, schema)
    text, plan = random_query(
        rng,
        params,
        schema=schema,
        profile=TEST,
        ungrouped_only=(kind == "sensitivity"),
    )
    offline: tuple[int, ...] = ()
    behaviors: dict[int, str] = {}
    if (
        kind in ("equivalence", "shard_equivalence", "offline_equivalence")
        and plan.hops == 1
    ):
        offline, behaviors = _random_faults(rng, len(graph.vertices))
    backend = rng.choice(_backends()) if _backends() else "pure"
    workers = 2 if (
        kind in ("equivalence", "offline_equivalence")
        and rng.random() < 0.2
    ) else 1
    # Deliberately allowed to exceed the vertex count: trailing empty
    # shards must be a no-op at the reduction root.
    shards = rng.choice((2, 3, 5, 8)) if kind == "shard_equivalence" else 1
    # Small enough that multi-hop trials exhaust their pools and refill
    # along the same derivation chain mid-run.
    pool_entries = rng.choice((1, 2, 4)) if kind == "offline_equivalence" else 4
    return TrialCase(
        kind=kind,
        seed=seed,
        index=index,
        query=text,
        graph=graph,
        offline=offline,
        behaviors=behaviors,
        backend=backend,
        workers=workers,
        shards=shards,
        pool_entries=pool_entries,
    )
