"""Replay bundles: a failing trial as one JSON file.

A bundle records everything needed to reproduce a failure offline: the
master seed and trial index that generated the case, the full case, and
(when the shrinker ran) the minimal reproducer.  ``python -m repro audit
--replay bundle.json`` re-runs it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.audit.cases import TrialCase

BUNDLE_VERSION = 1


@dataclass(frozen=True)
class ReplayBundle:
    """A serialized failure."""

    master_seed: int
    trial_index: int
    case: TrialCase
    shrunk: TrialCase | None = None
    failed_checks: tuple[str, ...] = ()

    @property
    def reproducer(self) -> TrialCase:
        """The case to re-run: the minimal one when available."""
        return self.shrunk if self.shrunk is not None else self.case

    def to_dict(self) -> dict:
        return {
            "version": BUNDLE_VERSION,
            "master_seed": self.master_seed,
            "trial_index": self.trial_index,
            "case": self.case.to_dict(),
            "shrunk": self.shrunk.to_dict() if self.shrunk else None,
            "failed_checks": list(self.failed_checks),
        }

    @classmethod
    def from_dict(cls, data: dict) -> ReplayBundle:
        shrunk = data.get("shrunk")
        return cls(
            master_seed=int(data["master_seed"]),
            trial_index=int(data["trial_index"]),
            case=TrialCase.from_dict(data["case"]),
            shrunk=TrialCase.from_dict(shrunk) if shrunk else None,
            failed_checks=tuple(data.get("failed_checks", ())),
        )


def write_bundle(path: str | Path, bundle: ReplayBundle) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(bundle.to_dict(), indent=2) + "\n")
    return path


def load_bundle(path: str | Path) -> ReplayBundle:
    return ReplayBundle.from_dict(json.loads(Path(path).read_text()))
