"""Check results and small assertion helpers.

Every invariant a trial asserts becomes one :class:`CheckResult` — a
named pass/fail with enough detail to read the failure without
re-running anything.  Trials never raise on a failed invariant; they
return the full check list so one broken invariant doesn't mask others.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CheckResult:
    """One named invariant assertion."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "ok" if self.passed else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{mark}] {self.name}{suffix}"


def check(name: str, passed: bool, detail: str = "") -> CheckResult:
    """Record an invariant; keep ``detail`` even on success so passing
    runs are auditable too."""
    return CheckResult(name=name, passed=bool(passed), detail=detail)


def check_equal(name: str, got, expected) -> CheckResult:
    passed = got == expected
    detail = "" if passed else f"got {got!r}, expected {expected!r}"
    return CheckResult(name=name, passed=passed, detail=detail)


def check_le(name: str, lhs: float, rhs: float, tol: float = 0.0) -> CheckResult:
    passed = lhs <= rhs + tol
    detail = "" if passed else f"{lhs!r} > {rhs!r} (tol {tol!r})"
    return CheckResult(name=name, passed=passed, detail=detail)


def failed(results: list[CheckResult]) -> list[CheckResult]:
    return [r for r in results if not r.passed]
