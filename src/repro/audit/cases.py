"""Serializable trial cases — the unit of generation, replay, and shrinking.

A :class:`TrialCase` is pure data: everything one audit trial needs to
run, as JSON-compatible values.  Replay bundles serialize cases with
:meth:`TrialCase.to_dict`; the shrinker produces smaller cases by
transforming this data, never live objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.workloads.graphgen import ContactGraph

#: The trial families the harness audits.
TRIAL_KINDS = (
    "equivalence", "budget", "sensitivity", "shamir", "mixnet", "crash",
    "robust", "flagging", "shard_equivalence", "offline_equivalence",
    "byzantine_survival", "quarantine_soundness",
)


@dataclass(frozen=True)
class GraphSpec:
    """A contact graph as plain data (vertex attrs + edge records)."""

    degree_bound: int
    vertices: tuple[dict, ...]
    edges: tuple[tuple[int, int, dict], ...]

    def build(self) -> ContactGraph:
        graph = ContactGraph(degree_bound=self.degree_bound)
        for attrs in self.vertices:
            graph.add_vertex(**attrs)
        for u, v, attrs in self.edges:
            graph.add_edge(u, v, **attrs)
        return graph

    @classmethod
    def from_graph(cls, graph: ContactGraph) -> GraphSpec:
        edges = []
        for u in range(graph.num_vertices):
            for v in graph.neighbors(u):
                if u < v:
                    edges.append((u, v, dict(graph.edge(u, v))))
        return cls(
            degree_bound=graph.degree_bound,
            vertices=tuple(dict(a) for a in graph.vertex_attrs),
            edges=tuple(edges),
        )

    def to_dict(self) -> dict:
        return {
            "degree_bound": self.degree_bound,
            "vertices": [dict(a) for a in self.vertices],
            "edges": [[u, v, dict(a)] for u, v, a in self.edges],
        }

    @classmethod
    def from_dict(cls, data: dict) -> GraphSpec:
        return cls(
            degree_bound=int(data["degree_bound"]),
            vertices=tuple(dict(a) for a in data["vertices"]),
            edges=tuple(
                (int(u), int(v), dict(a)) for u, v, a in data["edges"]
            ),
        )

    def drop_vertex(self, vertex: int) -> GraphSpec:
        """Remove the highest-index vertex (no renumbering needed)."""
        if vertex != len(self.vertices) - 1:
            raise ValueError("only the last vertex can be dropped")
        return GraphSpec(
            degree_bound=self.degree_bound,
            vertices=self.vertices[:-1],
            edges=tuple(
                (u, v, a) for u, v, a in self.edges if u != vertex and v != vertex
            ),
        )

    def drop_edge(self, index: int) -> GraphSpec:
        return replace(
            self,
            edges=self.edges[:index] + self.edges[index + 1 :],
        )


@dataclass(frozen=True)
class TrialCase:
    """One audit trial, fully determined by this data plus the bench keys.

    Only the fields relevant to ``kind`` are meaningful; the rest keep
    their defaults so every case serializes uniformly.
    """

    kind: str
    seed: int
    index: int = 0
    # -- equivalence / sensitivity / mixnet --------------------------------
    query: str = ""
    graph: GraphSpec | None = None
    offline: tuple[int, ...] = ()
    behaviors: dict[int, str] = field(default_factory=dict)
    backend: str = "pure"
    workers: int = 1
    #: Shard count for shard_equivalence trials: the sharded aggregation
    #: at this K must be bit-identical to the flat aggregator.
    shards: int = 1
    #: Pool size for offline_equivalence trials — deliberately small so
    #: some trials exhaust their pools and exercise the same-chain
    #: refill path mid-run.
    pool_entries: int = 4
    # -- budget ------------------------------------------------------------
    total_epsilon: float = 1.0
    epsilons: tuple[float, ...] = ()
    per_query_epsilon: float = 0.1
    delta: float = 1e-6
    # -- shamir / vsr / robust ---------------------------------------------
    threshold: int = 2
    num_shares: int = 3
    #: Member positions (0-based, into the trial committee's member
    #: list) whose partial decryptions are corrupted — robust decode
    #: must correct through them and flag exactly these members.
    corrupt: tuple[int, ...] = ()
    # -- mixnet ------------------------------------------------------------
    people: int = 8
    failure: float = 0.1
    # -- crash (durable campaign kill/resume) ------------------------------
    kill_phase: str = ""
    kill_query: int = 0
    kill_before: bool = False
    num_queries: int = 2
    rotate_every: int = 1

    def __post_init__(self) -> None:
        if self.kind not in TRIAL_KINDS:
            raise ValueError(f"unknown trial kind {self.kind!r}")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "index": self.index,
            "query": self.query,
            "graph": self.graph.to_dict() if self.graph is not None else None,
            "offline": list(self.offline),
            "behaviors": {str(k): v for k, v in self.behaviors.items()},
            "backend": self.backend,
            "workers": self.workers,
            "shards": self.shards,
            "pool_entries": self.pool_entries,
            "total_epsilon": self.total_epsilon,
            "epsilons": list(self.epsilons),
            "per_query_epsilon": self.per_query_epsilon,
            "delta": self.delta,
            "threshold": self.threshold,
            "num_shares": self.num_shares,
            "corrupt": list(self.corrupt),
            "people": self.people,
            "failure": self.failure,
            "kill_phase": self.kill_phase,
            "kill_query": self.kill_query,
            "kill_before": self.kill_before,
            "num_queries": self.num_queries,
            "rotate_every": self.rotate_every,
        }

    @classmethod
    def from_dict(cls, data: dict) -> TrialCase:
        graph = data.get("graph")
        return cls(
            kind=data["kind"],
            seed=int(data["seed"]),
            index=int(data.get("index", 0)),
            query=data.get("query", ""),
            graph=GraphSpec.from_dict(graph) if graph is not None else None,
            offline=tuple(int(d) for d in data.get("offline", ())),
            behaviors={
                int(k): str(v) for k, v in data.get("behaviors", {}).items()
            },
            backend=data.get("backend", "pure"),
            workers=int(data.get("workers", 1)),
            shards=int(data.get("shards", 1)),
            pool_entries=int(data.get("pool_entries", 4)),
            total_epsilon=float(data.get("total_epsilon", 1.0)),
            epsilons=tuple(float(e) for e in data.get("epsilons", ())),
            per_query_epsilon=float(data.get("per_query_epsilon", 0.1)),
            delta=float(data.get("delta", 1e-6)),
            threshold=int(data.get("threshold", 2)),
            num_shares=int(data.get("num_shares", 3)),
            corrupt=tuple(int(c) for c in data.get("corrupt", ())),
            people=int(data.get("people", 8)),
            failure=float(data.get("failure", 0.1)),
            kill_phase=data.get("kill_phase", ""),
            kill_query=int(data.get("kill_query", 0)),
            kill_before=bool(data.get("kill_before", False)),
            num_queries=int(data.get("num_queries", 2)),
            rotate_every=int(data.get("rotate_every", 1)),
        )
