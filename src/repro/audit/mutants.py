"""Known-bad mutants for the harness self-test.

Each mutant re-introduces a realistic bug — several are the very bugs
this harness was built after (ledger drift, non-monotone composition,
phantom-query admission) — as a reversible monkey-patch, plus a small
set of trial cases guaranteed to expose it.  ``repro audit --self-test``
verifies two things per mutant: the cases pass on the clean tree
(baseline) and at least one check fails under the patch (caught).  A
harness that cannot re-find these bugs has no business vouching for the
pipeline.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass

from repro.audit.cases import GraphSpec, TrialCase
from repro.core import committee as committee_mod
from repro.core import aggregator as aggregator_mod
from repro.crypto import bgv, shamir
from repro.crypto.polyring import RingElement
from repro.dp import budget as budget_mod
from repro.errors import PrivacyBudgetExceeded
from repro.query import sensitivity as sensitivity_mod
from repro.sharding import aggregate as shard_aggregate_mod


@contextmanager
def _patched(obj, name: str, value) -> Iterator[None]:
    original = getattr(obj, name)
    setattr(obj, name, value)
    try:
        yield
    finally:
        setattr(obj, name, original)


# ---------------------------------------------------------------------------
# Fixed cases dense enough to exercise every code path a mutant breaks
# ---------------------------------------------------------------------------


def _k4_graph() -> GraphSpec:
    """A complete graph on four vertices (degree 3 everywhere): every
    origin multiplies three leaf ciphertexts, so noise actually grows."""
    vertex = {"inf": 1, "tInf": 3, "tInfec": 3, "age": 30}
    edge = {
        "duration": 2,
        "contacts": 1,
        "last_contact": 1,
        "location": 1,
        "setting": 1,
    }
    return GraphSpec(
        degree_bound=3,
        vertices=tuple(dict(vertex) for _ in range(4)),
        edges=tuple(
            (u, v, dict(edge)) for u in range(4) for v in range(u + 1, 4)
        ),
    )


def _equivalence_case(seed: int, behaviors: dict[int, str] | None = None) -> TrialCase:
    return TrialCase(
        kind="equivalence",
        seed=seed,
        query="SELECT HISTO(COUNT(*)) FROM neigh(1)",
        graph=_k4_graph(),
        behaviors=behaviors or {},
    )


def _budget_case(seed: int) -> TrialCase:
    return TrialCase(
        kind="budget",
        seed=seed,
        total_epsilon=1.0,
        epsilons=(0.1,) * 8,
        per_query_epsilon=0.5,
        delta=1e-6,
    )


def _sensitivity_case(seed: int) -> TrialCase:
    return TrialCase(
        kind="sensitivity",
        seed=seed,
        query="SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE dest.inf",
        graph=_k4_graph(),
    )


def _shamir_case(seed: int) -> TrialCase:
    return TrialCase(kind="shamir", seed=seed, threshold=2, num_shares=4)


def _flagging_case(seed: int) -> TrialCase:
    # No injected corruption: the honest-run-flags-nobody check is what
    # exposes a partial-decryption computation that silently perturbs a
    # share (the decoder *corrects* the lie, so oracle equality passes).
    return TrialCase(kind="flagging", seed=seed, threshold=2, num_shares=6)


def _robust_case(seed: int) -> TrialCase:
    return TrialCase(
        kind="robust", seed=seed, threshold=2, num_shares=6, corrupt=(1,)
    )


def _shard_equivalence_case(seed: int, shards: int = 3) -> TrialCase:
    return TrialCase(
        kind="shard_equivalence",
        seed=seed,
        query="SELECT HISTO(COUNT(*)) FROM neigh(1)",
        graph=_k4_graph(),
        shards=shards,
    )


def _offline_equivalence_case(seed: int, pool_entries: int = 2) -> TrialCase:
    # pool_entries below the per-origin draw count, so the same-chain
    # refill path is part of what the mutant must not be able to hide in.
    return TrialCase(
        kind="offline_equivalence",
        seed=seed,
        query="SELECT HISTO(COUNT(*)) FROM neigh(1)",
        graph=_k4_graph(),
        pool_entries=pool_entries,
    )


def _quarantine_case(seed: int) -> TrialCase:
    # One persistent forged-proof attacker and one claim tamperer over
    # three queries: both must be quarantined by query 2, so a ledger
    # that never records rejections fails the completeness check.
    return TrialCase(
        kind="quarantine_soundness",
        seed=seed,
        query="SELECT HISTO(COUNT(*)) FROM neigh(1)",
        graph=_k4_graph(),
        behaviors={0: "forged-proof", 2: "bad-aggregation"},
        num_queries=3,
    )


def _crash_case(seed: int) -> TrialCase:
    # Kill right after the release record of query 0 so the resume path
    # restores (rather than re-runs) the charge record — the exact path
    # the double-apply mutant corrupts.
    return TrialCase(
        kind="crash",
        seed=seed,
        people=8,
        kill_phase="release",
        kill_query=0,
        num_queries=2,
        rotate_every=1,
    )


# ---------------------------------------------------------------------------
# The mutants
# ---------------------------------------------------------------------------


def _mutant_drop_coefficient():
    original = committee_mod.threshold_decrypt

    def bad(committee, ciphertext, rng, participating=None):
        plain = original(committee, ciphertext, rng, participating=participating)
        coeffs = list(plain.coeffs)
        for i, c in enumerate(coeffs):
            if c:
                coeffs[i] = 0
                break
        return RingElement(plain.params, tuple(coeffs))

    return _patched(committee_mod, "threshold_decrypt", bad)


def _mutant_charge_skips_ledger():
    def bad(self, epsilon, label=""):
        if not self.can_afford(epsilon):
            raise PrivacyBudgetExceeded("budget exhausted")
        # the bug: forgets self.history.append((label, epsilon))

    return _patched(budget_mod.PrivacyBudget, "charge", bad)


def _mutant_admission_slack():
    def bad(self, epsilon):
        return self.spent + epsilon <= self.total_epsilon + 1e-6

    return _patched(budget_mod.PrivacyBudget, "can_afford", bad)


def _mutant_composition_missing_min():
    def bad(per_query_epsilon, num_queries, delta):
        if num_queries == 0:
            return 0.0
        return budget_mod.advanced_composition_epsilon(
            per_query_epsilon, num_queries, delta
        )

    return _patched(budget_mod, "composed_epsilon", bad)


def _mutant_phantom_query():
    original = budget_mod.queries_supported

    def bad(total_epsilon, per_query_epsilon, delta=None):
        return max(1, original(total_epsilon, per_query_epsilon, delta))

    return _patched(budget_mod, "queries_supported", bad)


def _mutant_sensitivity_halved():
    original = sensitivity_mod.analyze

    def bad(plan):
        report = original(plan)
        return sensitivity_mod.SensitivityReport(
            influenced_queries=report.influenced_queries,
            per_query_contribution=report.per_query_contribution,
            sensitivity=report.sensitivity / 2,
        )

    return _patched(sensitivity_mod, "analyze", bad)


def _mutant_multiply_undercounts_noise():
    original = bgv.multiply

    def bad(a, b):
        ct = original(a, b)
        return dataclasses.replace(
            ct, noise_bits=max(a.noise_bits, b.noise_bits) + 1
        )

    return _patched(bgv, "multiply", bad)


def _mutant_lagrange_shifted():
    original = shamir.lagrange_coefficients_at_zero

    def bad(indices, field):
        coeffs = original(indices, field)
        first = min(coeffs)
        coeffs[first] = (coeffs[first] + 1) % field
        return coeffs

    return _patched(shamir, "lagrange_coefficients_at_zero", bad)


def _mutant_wrong_share():
    original = committee_mod.robust_partial_decrypt

    def bad(member, ciphertext, profile, smudge_share):
        partial = original(member, ciphertext, profile, smudge_share)
        if member.share_index == 1:
            # the bug: one member's partial decryption is off by one
            return committee_mod.PartialDecryption(
                partial.share_index,
                partial.value + RingElement.constant(profile.ring, 1),
            )
        return partial

    return _patched(committee_mod, "robust_partial_decrypt", bad)


def _mutant_stale_pool():
    from repro.offline import pools as pools_mod

    original = pools_mod.leaf_randomness

    def bad(pk, master_seed, origin, index):
        # the bug: the *pool-fill* path (prepared_leaf_randomness is
        # only called by EncryptionPool) derives from a shifted seed —
        # every entry is still valid randomness (encryptions, proofs,
        # and decryptions all succeed), so only the offline-vs-inline
        # serialization comparison can catch it
        return bgv.PreparedRandomness.prepare(
            pk, original(pk.profile, master_seed + 1, origin, index)
        )

    return _patched(pools_mod, "prepared_leaf_randomness", bad)


def _mutant_journal_double_apply():
    from repro.durability import campaign as campaign_mod

    original = campaign_mod.CampaignRunner._restore_charge

    def bad(self, query_index, data, ctx):
        # the bug: a journaled budget charge is applied twice on resume
        original(self, query_index, data, ctx)
        original(self, query_index, data, ctx)

    return _patched(campaign_mod.CampaignRunner, "_restore_charge", bad)


def _mutant_colluding_shard():
    original = shard_aggregate_mod.shard_claimed_partial

    def bad(chunk_partials):
        claimed = original(chunk_partials)
        if claimed is not None:
            # the bug: a colluding shard aggregator replays its first
            # chunk into the claimed partial, inflating those bins
            return bgv.add(claimed, list(chunk_partials)[0])
        return claimed

    return _patched(shard_aggregate_mod, "shard_claimed_partial", bad)


def _mutant_unquarantined_attacker():
    from repro.adversary import quarantine as quarantine_mod

    def bad(self, rejected):
        # the bug: rejections are observed but never tallied, so no
        # origin ever crosses the quarantine threshold
        return ()

    return _patched(
        quarantine_mod.SuspicionLedger, "record_rejections", bad
    )


def _mutant_aggregator_accepts_everything():
    def bad(self, submission):
        return True, 0.0, 0

    return _patched(
        aggregator_mod.QueryAggregator, "verify_submission", bad
    )


@dataclass(frozen=True)
class Mutant:
    """One injectable bug plus the cases that must expose it."""

    name: str
    description: str
    patch: Callable[[], object]
    cases: tuple[TrialCase, ...]


MUTANTS: tuple[Mutant, ...] = (
    Mutant(
        name="decrypt-drops-coefficient",
        description="threshold decryption silently zeroes one coefficient",
        patch=_mutant_drop_coefficient,
        cases=(_shamir_case(101), _equivalence_case(102)),
    ),
    Mutant(
        name="charge-skips-ledger",
        description="PrivacyBudget.charge deducts nothing from the ledger",
        patch=_mutant_charge_skips_ledger,
        cases=(_budget_case(201),),
    ),
    Mutant(
        name="admission-slack",
        description="can_afford admits epsilon-dust past an exhausted budget",
        patch=_mutant_admission_slack,
        cases=(_budget_case(301),),
    ),
    Mutant(
        name="composition-missing-min",
        description="composed epsilon uses raw Thm 3.20 (worse than k*eps)",
        patch=_mutant_composition_missing_min,
        cases=(_budget_case(401),),
    ),
    Mutant(
        name="phantom-query",
        description="queries_supported reports >= 1 even when nothing fits",
        patch=_mutant_phantom_query,
        cases=(_budget_case(501),),
    ),
    Mutant(
        name="sensitivity-halved",
        description="static sensitivity analysis returns half the bound",
        patch=_mutant_sensitivity_halved,
        cases=(_sensitivity_case(601),),
    ),
    Mutant(
        name="multiply-undercounts-noise",
        description="homomorphic multiply tags noise as max(a,b)+1 bits",
        patch=_mutant_multiply_undercounts_noise,
        cases=(_equivalence_case(701),),
    ),
    Mutant(
        name="lagrange-shifted",
        description="one Lagrange coefficient is off by one",
        patch=_mutant_lagrange_shifted,
        cases=(_shamir_case(801),),
    ),
    Mutant(
        name="aggregator-accepts-everything",
        description="submission verification never rejects",
        patch=_mutant_aggregator_accepts_everything,
        cases=(_equivalence_case(901, behaviors={0: "bad-aggregation"}),),
    ),
    Mutant(
        name="wrong_share",
        description="one member's robust partial decryption is off by one",
        patch=_mutant_wrong_share,
        cases=(_flagging_case(1101), _robust_case(1102)),
    ),
    Mutant(
        name="colluding-shard",
        description="a shard aggregator tampers its claimed partial sum",
        patch=_mutant_colluding_shard,
        cases=(_shard_equivalence_case(1201),),
    ),
    Mutant(
        name="stale-pool",
        description="precomputed pool entries derive from a shifted seed",
        patch=_mutant_stale_pool,
        cases=(_offline_equivalence_case(1301),),
    ),
    Mutant(
        name="unquarantined-attacker",
        description="the suspicion ledger never quarantines rejected origins",
        patch=_mutant_unquarantined_attacker,
        cases=(_quarantine_case(1401),),
    ),
    Mutant(
        name="journal-double-apply",
        description="a journaled budget charge is applied twice on resume",
        patch=_mutant_journal_double_apply,
        cases=(_crash_case(1001),),
    ),
)
