"""Differential-testing and invariant-audit harness.

One master seed drives everything: a generator draws random execution
plans, contact graphs, fault schedules, and runtime configurations; an
oracle runner executes each trial through the encrypted engine (across
backends and worker counts) and the plaintext reference; and a checker
library asserts the protocol invariants of ``docs/CORRECTNESS.md`` —
encrypted-vs-plaintext coefficient equality (degraded under faults),
privacy-budget conservation, static-vs-empirical sensitivity, BGV noise
soundness, Shamir/VSR reconstruction, and mixnet delivery/complaint
consistency.

Failures shrink to a minimal reproducer and dump a replay bundle so any
failure is one CLI command to reproduce::

    python -m repro audit --seed 7 --trials 50 --shrink
    python -m repro audit --replay audit-failure.json
    python -m repro audit --self-test   # inject mutants, verify caught
"""

from repro.audit.cases import GraphSpec, TrialCase
from repro.audit.checks import CheckResult
from repro.audit.generator import generate_case
from repro.audit.runner import (
    AuditReport,
    TrialOutcome,
    run_audit,
    run_self_test,
    run_single_case,
)

__all__ = [
    "AuditReport",
    "CheckResult",
    "GraphSpec",
    "TrialCase",
    "TrialOutcome",
    "generate_case",
    "run_audit",
    "run_self_test",
    "run_single_case",
]
