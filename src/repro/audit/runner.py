"""The audit run loop: generate, execute, shrink, bundle, report.

``run_audit`` drives N seeded trials; any failure is (optionally) shrunk
to a minimal reproducer and dumped as a replay bundle.  ``run_self_test``
injects the known mutants of :mod:`repro.audit.mutants` and verifies the
harness catches every one — the check that the checker itself works.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro import telemetry
from repro.audit.bench import AuditBench, get_bench
from repro.audit.cases import TrialCase
from repro.audit.checks import CheckResult
from repro.audit.generator import generate_case
from repro.audit.replay import ReplayBundle, write_bundle
from repro.audit.shrink import shrink_case
from repro.audit.trials import run_trial


@dataclass
class TrialOutcome:
    """One executed trial: the case plus every check it asserted."""

    case: TrialCase
    checks: list[CheckResult]
    seconds: float = 0.0

    @property
    def failed_checks(self) -> list[CheckResult]:
        return [c for c in self.checks if not c.passed]

    @property
    def passed(self) -> bool:
        return not self.failed_checks


def run_single_case(
    case: TrialCase, bench: AuditBench | None = None
) -> TrialOutcome:
    """Execute one case; an unhandled exception becomes a failed check
    (``<kind>.no-unhandled-error``) rather than aborting the run."""
    bench = bench if bench is not None else get_bench()
    start = time.perf_counter()
    try:
        checks = run_trial(case, bench)
    except Exception as exc:  # noqa: BLE001 - converted into a finding
        checks = [
            CheckResult(
                name=f"{case.kind}.no-unhandled-error",
                passed=False,
                detail=f"{type(exc).__name__}: {exc}",
            )
        ]
    return TrialOutcome(
        case=case, checks=checks, seconds=time.perf_counter() - start
    )


@dataclass
class AuditReport:
    """Everything one audit run produced."""

    master_seed: int
    num_trials: int
    outcomes: list[TrialOutcome] = field(default_factory=list)
    shrunk: dict[int, TrialCase] = field(default_factory=dict)
    bundle_paths: list[Path] = field(default_factory=list)

    @property
    def failures(self) -> list[TrialOutcome]:
        return [o for o in self.outcomes if not o.passed]

    @property
    def passed(self) -> bool:
        return not self.failures

    @property
    def total_checks(self) -> int:
        return sum(len(o.checks) for o in self.outcomes)

    def summary(self) -> str:
        kinds = Counter(o.case.kind for o in self.outcomes)
        lines = [
            f"audit: seed={self.master_seed} trials={len(self.outcomes)} "
            f"checks={self.total_checks} failures={len(self.failures)}",
            "  trials by kind: "
            + ", ".join(f"{k}={v}" for k, v in sorted(kinds.items())),
        ]
        for outcome in self.failures:
            lines.append(
                f"  FAILED trial {outcome.case.index} ({outcome.case.kind}):"
            )
            for check in outcome.failed_checks:
                lines.append(f"    {check}")
        for path in self.bundle_paths:
            lines.append(f"  replay bundle: {path}")
        return "\n".join(lines)


def run_audit(
    master_seed: int,
    num_trials: int,
    shrink: bool = False,
    bundle_dir: str | Path | None = None,
    log=None,
    kinds: tuple[str, ...] | None = None,
) -> AuditReport:
    """Run ``num_trials`` seeded trials; shrink and bundle any failure.

    ``kinds`` restricts the run to the given trial families, assigned
    round-robin over the indices (the default ``None`` keeps the full
    index schedule).  Case data still derives purely from
    ``(master_seed, index)``, so filtered runs replay the same way.
    """
    from repro.audit.cases import TRIAL_KINDS

    if kinds is not None:
        unknown = [k for k in kinds if k not in TRIAL_KINDS]
        if unknown:
            raise ValueError(f"unknown trial kinds {unknown}")
    bench = get_bench()
    report = AuditReport(master_seed=master_seed, num_trials=num_trials)
    with telemetry.span(
        "audit.run", seed=master_seed, trials=num_trials
    ):
        for index in range(num_trials):
            case = generate_case(
                master_seed,
                index,
                kind=kinds[index % len(kinds)] if kinds else None,
            )
            with telemetry.span(
                "audit.trial", kind=case.kind, index=index
            ):
                outcome = run_single_case(case, bench)
            telemetry.count("audit.trials.total")
            telemetry.count("audit.checks.total", len(outcome.checks))
            telemetry.count(
                "audit.checks.failed", len(outcome.failed_checks)
            )
            telemetry.observe("audit.trial.seconds", outcome.seconds)
            report.outcomes.append(outcome)
            if log is not None and index and index % 10 == 0:
                log(f"audit: {index}/{num_trials} trials")
            if outcome.passed:
                continue
            if log is not None:
                log(
                    f"audit: trial {index} ({case.kind}) FAILED: "
                    + "; ".join(c.name for c in outcome.failed_checks)
                )
            if shrink:
                minimal, spent = shrink_case(
                    case,
                    lambda c: not run_single_case(c, bench).passed,
                )
                report.shrunk[index] = minimal
                if log is not None:
                    log(
                        f"audit: shrank trial {index} in {spent} executions"
                    )
            if bundle_dir is not None:
                bundle = ReplayBundle(
                    master_seed=master_seed,
                    trial_index=index,
                    case=case,
                    shrunk=report.shrunk.get(index),
                    failed_checks=tuple(
                        c.name for c in outcome.failed_checks
                    ),
                )
                path = Path(bundle_dir) / (
                    f"audit-failure-s{master_seed}-t{index}.json"
                )
                report.bundle_paths.append(write_bundle(path, bundle))
    return report


# ---------------------------------------------------------------------------
# Self-test: the harness must catch every known mutant
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MutantOutcome:
    """Baseline-clean + caught verdict for one injected bug."""

    name: str
    description: str
    baseline_clean: bool
    caught: bool

    @property
    def passed(self) -> bool:
        return self.baseline_clean and self.caught


@dataclass
class SelfTestReport:
    results: list[MutantOutcome]

    @property
    def num_caught(self) -> int:
        return sum(1 for r in self.results if r.caught)

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    def summary(self) -> str:
        lines = [
            f"self-test: {self.num_caught}/{len(self.results)} mutants caught"
        ]
        for r in self.results:
            verdict = (
                "caught"
                if r.passed
                else ("BASELINE DIRTY" if not r.baseline_clean else "MISSED")
            )
            lines.append(f"  [{verdict}] {r.name}: {r.description}")
        return "\n".join(lines)


def run_self_test(log=None) -> SelfTestReport:
    """Inject every known mutant; the harness must flag each one while
    staying green on the clean tree."""
    from repro.audit.mutants import MUTANTS

    bench = get_bench()
    results = []
    for mutant in MUTANTS:
        baseline_clean = all(
            run_single_case(case, bench).passed for case in mutant.cases
        )
        with mutant.patch():
            caught = any(
                not run_single_case(case, bench).passed
                for case in mutant.cases
            )
        results.append(
            MutantOutcome(
                name=mutant.name,
                description=mutant.description,
                baseline_clean=baseline_clean,
                caught=caught,
            )
        )
        if log is not None:
            log(f"self-test: {mutant.name}: " + ("caught" if caught else "MISSED"))
    return SelfTestReport(results=results)
