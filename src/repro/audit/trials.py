"""Trial bodies: run one case through the system and check invariants.

Each trial family targets one slice of the protocol:

* ``equivalence`` — the encrypted pipeline (executor → aggregator →
  threshold decryption) against the plaintext oracle, including the
  *degraded* oracle under offline devices and Byzantine behaviours, plus
  BGV noise soundness on every ciphertext it produces.
* ``budget`` — privacy-budget conservation, monotonicity, and the
  advanced-composition admission arithmetic.
* ``sensitivity`` — the §4.7 static sensitivity bound against the
  empirically measured L1 influence of one device's data.
* ``shamir`` — threshold reconstruction, VSR redistribution, and
  committee threshold decryption against direct decryption.
* ``mixnet`` — a full onion-routed query under injected faults must
  either match the degraded oracle or fail with a typed error.
* ``shard_equivalence`` — the sharded aggregation path (per-shard
  partial sums claim-checked at the reduction root) must be
  bit-identical to the flat aggregator at any shard count, including
  under Byzantine submissions.
* ``offline_equivalence`` — the offline/online split: a run consuming
  precomputed encryption-randomness pools and prepared relin keys must
  serialize bit-identically to the inline run on the same derivation
  chain, including when small pools exhaust and refill mid-run.  Only
  a serialization comparison can catch a stale pool — wrong-seed
  entries still produce valid encryptions, proofs, and decryptions.
* ``byzantine_survival`` — a multi-query run under forged-proof
  attackers feeding the suspicion ledger: every answer must match the
  degraded oracle, and the honest devices' answer must be bit-identical
  to a baseline run with the attackers simply offline.
* ``quarantine_soundness`` — the quarantine ledger under forged-proof
  and claim-tampering attackers: honest origins are never suspected,
  quarantined origins are always real attackers, and every persistent
  attacker is quarantined once its rejections reach the threshold.

Deliberate style point: cross-module entry points the mutant self-test
patches (``threshold_decrypt``, ``composed_epsilon``, ``analyze``, …)
are always called through their module object, never imported as bare
names, so a patched module attribute is what the trial exercises.
"""

from __future__ import annotations

import math
import random

from repro.audit.bench import AuditBench
from repro.audit.cases import TrialCase
from repro.audit.checks import CheckResult, check, check_equal, check_le
from repro.audit.generator import audit_params, audit_schema
from repro.core import committee as committee_mod
from repro.core.aggregator import QueryAggregator
from repro.crypto import bgv, shamir, vsr
from repro.dp import budget as budget_mod
from repro.engine import histogram as histogram_mod
from repro.engine import plaintext as plaintext_mod
from repro.engine.encrypted import EncryptedExecutor
from repro.engine.malicious import Behavior
from repro.errors import MyceliumError, PrivacyBudgetExceeded
from repro.query import sensitivity as sensitivity_mod
from repro.query.ast import OutputKind
from repro.query.compiler import compile_query
from repro.query.parser import parse
from repro.query.plans import ExecutionPlan
from repro.params import TEST
from repro.query.schema import ColumnGroup
from repro.runtime import TaskFabric, backends, derive_rng


def compile_case_plan(case: TrialCase) -> ExecutionPlan:
    """Compile a case's query exactly as the generator did."""
    plan = compile_query(parse(case.query), audit_params(), audit_schema())
    plan.validate_feasible(TEST)
    return plan


def run_trial(case: TrialCase, bench: AuditBench) -> list[CheckResult]:
    """Dispatch a case to its trial body; returns every check result."""
    if case.kind == "equivalence":
        return _run_equivalence(case, bench)
    if case.kind == "budget":
        return _run_budget(case)
    if case.kind == "sensitivity":
        return _run_sensitivity(case, bench)
    if case.kind == "shamir":
        return _run_shamir(case, bench)
    if case.kind == "mixnet":
        return _run_mixnet(case)
    if case.kind == "crash":
        return _run_crash(case)
    if case.kind == "robust":
        return _run_robust(case, bench)
    if case.kind == "flagging":
        return _run_flagging(case, bench)
    if case.kind == "shard_equivalence":
        return _run_shard_equivalence(case, bench)
    if case.kind == "offline_equivalence":
        return _run_offline_equivalence(case, bench)
    if case.kind == "byzantine_survival":
        return _run_byzantine_survival(case, bench)
    if case.kind == "quarantine_soundness":
        return _run_quarantine_soundness(case, bench)
    raise ValueError(f"unknown trial kind {case.kind!r}")


# ---------------------------------------------------------------------------
# Equivalence: encrypted pipeline vs (degraded) plaintext oracle
# ---------------------------------------------------------------------------


def _noise_checks(
    bench: AuditBench, label: str, ct: bgv.Ciphertext
) -> list[CheckResult]:
    """exact <= tagged (estimate soundness); tagged <= capacity when the
    ciphertext must still decrypt correctly."""
    exact = bgv.exact_noise_bits(bench.secret, ct)
    capacity = bgv.noise_capacity_bits(bench.profile)
    return [
        check(
            f"{label}.noise-estimate-sound",
            exact <= ct.noise_bits,
            f"measured {exact:.1f} bits, tagged {ct.noise_bits:.1f}",
        ),
        check(
            f"{label}.noise-within-capacity",
            ct.noise_bits <= capacity,
            f"tagged {ct.noise_bits:.1f} bits, capacity {capacity:.1f}",
        ),
    ]


def _run_equivalence(case: TrialCase, bench: AuditBench) -> list[CheckResult]:
    results: list[CheckResult] = []
    plan = compile_case_plan(case)
    graph = case.graph.build()
    behaviors = {d: Behavior(v) for d, v in case.behaviors.items()}
    expectation = plaintext_mod.expected_under_faults(
        plan, graph, offline=case.offline, behaviors=behaviors
    )

    with backends.use_backend(case.backend), TaskFabric(
        workers=case.workers, chunk_size=2
    ) as fabric:
        executor = EncryptedExecutor(
            plan, bench.public, bench.zk, random.Random(case.seed), fabric=fabric
        )
        submissions = executor.run(
            graph, behaviors=behaviors, offline=set(case.offline)
        )
        aggregator = QueryAggregator(
            zk=bench.zk, relin_keys=bench.relin_keys, fabric=fabric
        )
        aggregation = aggregator.aggregate(submissions)

    results.append(
        check_equal(
            "equivalence.rejected-origins",
            frozenset(aggregation.rejected),
            expectation.rejected_origins,
        )
    )
    expected_accepted = frozenset(
        range(graph.num_vertices)
    ) - frozenset(case.offline) - expectation.rejected_origins
    results.append(
        check_equal(
            "equivalence.accepted-origins",
            frozenset(aggregation.accepted),
            expected_accepted,
        )
    )
    results.append(
        check_equal(
            "equivalence.defaulted-pairs",
            executor.stats.defaulted_members,
            expectation.defaulted_pairs,
        )
    )
    neighborhood = sensitivity_mod.influenced_local_queries(
        plan.hops, plan.degree_bound
    )
    results.append(
        check_le(
            "equivalence.multiplication-bound",
            executor.stats.multiplications,
            graph.num_vertices * neighborhood,
        )
    )
    # Device outputs are pre-relinearization (arbitrary degree): only the
    # estimate-soundness half applies; the capacity bound is an
    # aggregate-level property.  Report one summary check.
    unsound = [
        s.origin
        for s in submissions
        if bgv.exact_noise_bits(bench.secret, s.ciphertext)
        > s.ciphertext.noise_bits
    ]
    results.append(
        check(
            "equivalence.submission-noise-estimates-sound",
            not unsound,
            f"origins with under-tagged noise: {unsound}" if unsound else "",
        )
    )

    if aggregation.ciphertext is None:
        results.append(
            check(
                "equivalence.empty-aggregate-means-zero",
                not any(expectation.coefficients),
                f"expected coefficients {expectation.coefficients}",
            )
        )
        return results

    results.extend(
        _noise_checks(bench, "equivalence.aggregate", aggregation.ciphertext)
    )
    plain = committee_mod.threshold_decrypt(
        bench.committee,
        aggregation.ciphertext,
        derive_rng(case.seed, "decrypt"),
    )
    decrypted = tuple(
        plain.coeffs[i] for i in range(plan.layout.total_coefficients)
    )
    results.append(
        check_equal(
            "equivalence.coefficients", decrypted, expectation.coefficients
        )
    )
    direct = bgv.decrypt(bench.secret, aggregation.ciphertext)
    results.append(
        check_equal(
            "equivalence.threshold-matches-direct",
            tuple(plain.coeffs),
            tuple(direct.coeffs),
        )
    )
    return results


# ---------------------------------------------------------------------------
# Shard equivalence: sharded aggregation vs the flat aggregator
# ---------------------------------------------------------------------------


def _run_shard_equivalence(
    case: TrialCase, bench: AuditBench
) -> list[CheckResult]:
    from repro import sharding as sharding_mod
    from repro.errors import ShardIntegrityError

    results: list[CheckResult] = []
    plan = compile_case_plan(case)
    graph = case.graph.build()
    behaviors = {d: Behavior(v) for d, v in case.behaviors.items()}
    expectation = plaintext_mod.expected_under_faults(
        plan, graph, offline=case.offline, behaviors=behaviors
    )

    with backends.use_backend(case.backend), TaskFabric(
        workers=case.workers, chunk_size=2
    ) as fabric:
        executor = EncryptedExecutor(
            plan, bench.public, bench.zk, random.Random(case.seed), fabric=fabric
        )
        submissions = executor.run(
            graph, behaviors=behaviors, offline=set(case.offline)
        )
        flat = QueryAggregator(
            zk=bench.zk, relin_keys=bench.relin_keys, fabric=fabric
        ).aggregate(submissions)
        try:
            sharded = sharding_mod.ShardedAggregator(
                zk=bench.zk,
                relin_keys=bench.relin_keys,
                num_shards=case.shards,
                fabric=fabric,
            ).aggregate(submissions)
        except ShardIntegrityError as exc:
            # An honest run must never trip the root's claim check — a
            # shard aggregator lying about its partial sum lands here.
            results.append(
                check(
                    "shard-equivalence.root-accepts-honest-partials",
                    False,
                    f"{type(exc).__name__}: {exc}",
                )
            )
            return results
    results.append(
        check("shard-equivalence.root-accepts-honest-partials", True)
    )

    results.append(
        check_equal(
            "shard-equivalence.accepted",
            tuple(sharded.accepted),
            tuple(flat.accepted),
        )
    )
    results.append(
        check_equal(
            "shard-equivalence.rejected",
            tuple(sharded.rejected),
            tuple(flat.rejected),
        )
    )
    results.append(
        check_equal(
            "shard-equivalence.rejected-match-oracle",
            frozenset(sharded.rejected),
            expectation.rejected_origins,
        )
    )
    results.append(
        check_equal(
            "shard-equivalence.summation-root",
            sharded.summation_root,
            flat.summation_root,
        )
    )
    # Exact float equality: the sharded path replays the flat left fold
    # in global submission order.
    results.append(
        check_equal(
            "shard-equivalence.verification-seconds",
            sharded.verification_seconds,
            flat.verification_seconds,
        )
    )
    results.append(
        check_equal(
            "shard-equivalence.proofs-verified",
            sharded.proofs_verified,
            flat.proofs_verified,
        )
    )

    if flat.ciphertext is None or sharded.ciphertext is None:
        results.append(
            check(
                "shard-equivalence.both-empty",
                flat.ciphertext is None and sharded.ciphertext is None,
                "one path produced a ciphertext and the other none",
            )
        )
        return results

    results.append(
        check(
            "shard-equivalence.ciphertext-bit-identical",
            sharded.ciphertext.serialize() == flat.ciphertext.serialize(),
            f"K={case.shards} components diverge from the flat fold",
        )
    )
    results.extend(
        _noise_checks(bench, "shard-equivalence.aggregate", sharded.ciphertext)
    )
    plain = committee_mod.threshold_decrypt(
        bench.committee,
        sharded.ciphertext,
        derive_rng(case.seed, "decrypt"),
    )
    decrypted = tuple(
        plain.coeffs[i] for i in range(plan.layout.total_coefficients)
    )
    results.append(
        check_equal(
            "shard-equivalence.coefficients",
            decrypted,
            expectation.coefficients,
        )
    )
    return results


# ---------------------------------------------------------------------------
# Offline equivalence: precomputed pools vs the inline derivation chain
# ---------------------------------------------------------------------------


def _run_offline_equivalence(
    case: TrialCase, bench: AuditBench
) -> list[CheckResult]:
    from repro.durability.serialize import submissions_digest
    from repro.offline import store as offline_store_mod

    results: list[CheckResult] = []
    plan = compile_case_plan(case)
    graph = case.graph.build()
    behaviors = {d: Behavior(v) for d, v in case.behaviors.items()}
    master = derive_rng(case.seed, "offline-audit").getrandbits(64)

    with backends.use_backend(case.backend), TaskFabric(
        workers=case.workers, chunk_size=2
    ) as fabric:
        inline = EncryptedExecutor(
            plan, bench.public, bench.zk, random.Random(case.seed), fabric=fabric
        ).run(
            graph,
            behaviors=behaviors,
            offline=set(case.offline),
            master_seed=master,
        )
        # The offline phase: pools derived through the store module so
        # the stale-pool mutant can poison the derivation chain.
        store = offline_store_mod.OfflineStore(bench.public)
        store.ensure_encryption_pools(
            bench.public, master, range(graph.num_vertices), case.pool_entries
        )
        pooled_executor = EncryptedExecutor(
            plan,
            bench.public,
            bench.zk,
            random.Random(case.seed),
            fabric=fabric,
            offline_store=store,
        )
        pooled = pooled_executor.run(
            graph,
            behaviors=behaviors,
            offline=set(case.offline),
            master_seed=master,
        )
        stats = pooled_executor.stats

        flat = QueryAggregator(
            zk=bench.zk, relin_keys=bench.relin_keys, fabric=fabric
        ).aggregate(inline)
        prepared = QueryAggregator(
            zk=bench.zk,
            relin_keys=store.relin_for(bench.relin_keys),
            fabric=fabric,
        ).aggregate(pooled)

    # Every online origin gets a pool, so every draw must be a pool hit
    # (hits may be zero only when nothing was encrypted at all — e.g.
    # every vertex offline).
    results.append(
        check(
            "offline-equivalence.pool-consumed",
            stats.pool_misses == 0,
            f"hits={stats.pool_hits} misses={stats.pool_misses} — "
            "draws bypassed the precomputed pools",
        )
    )
    results.append(
        check_equal(
            "offline-equivalence.submissions-digest",
            submissions_digest(pooled),
            submissions_digest(inline),
        )
    )
    results.append(
        check_equal(
            "offline-equivalence.rejected",
            tuple(prepared.rejected),
            tuple(flat.rejected),
        )
    )
    if flat.ciphertext is None or prepared.ciphertext is None:
        results.append(
            check(
                "offline-equivalence.both-empty",
                flat.ciphertext is None and prepared.ciphertext is None,
                "one path produced a ciphertext and the other none",
            )
        )
        return results
    results.append(
        check(
            "offline-equivalence.aggregate-bit-identical",
            prepared.ciphertext.serialize() == flat.ciphertext.serialize(),
            "prepared relinearization diverges from the sequential fold",
        )
    )
    return results


# ---------------------------------------------------------------------------
# Byzantine survival / quarantine soundness: the suspicion ledger under
# seeded attackers, checked against the degraded oracle every query
# ---------------------------------------------------------------------------


def _encrypted_round(
    case: TrialCase,
    bench: AuditBench,
    plan: ExecutionPlan,
    graph,
    behaviors: dict[int, Behavior],
    offline: frozenset[int],
    tag: str,
    query_index: int,
):
    """One encrypted submit→aggregate→decrypt pass; returns the
    aggregation plus the decoded coefficient tuple (zeros when the
    aggregate is empty, so callers compare uniformly)."""
    with backends.use_backend(case.backend), TaskFabric(
        workers=1, chunk_size=2
    ) as fabric:
        executor = EncryptedExecutor(
            plan,
            bench.public,
            bench.zk,
            random.Random(
                derive_rng(case.seed, tag, query_index).getrandbits(48)
            ),
            fabric=fabric,
        )
        submissions = executor.run(
            graph, behaviors=behaviors, offline=set(offline)
        )
        aggregation = QueryAggregator(
            zk=bench.zk, relin_keys=bench.relin_keys, fabric=fabric
        ).aggregate(submissions)
    total = plan.layout.total_coefficients
    if aggregation.ciphertext is None:
        return aggregation, (0,) * total
    plain = committee_mod.threshold_decrypt(
        bench.committee,
        aggregation.ciphertext,
        derive_rng(case.seed, tag, "decrypt", query_index),
    )
    return aggregation, tuple(plain.coeffs[i] for i in range(total))


def _run_byzantine_survival(
    case: TrialCase, bench: AuditBench
) -> list[CheckResult]:
    from repro.adversary import quarantine as quarantine_mod

    results: list[CheckResult] = []
    plan = compile_case_plan(case)
    graph = case.graph.build()
    behaviors = {d: Behavior(v) for d, v in case.behaviors.items()}
    attackers = frozenset(behaviors)
    ledger = quarantine_mod.SuspicionLedger()

    for q in range(case.num_queries):
        quarantined = frozenset(ledger.quarantined)
        offline = frozenset(case.offline) | quarantined
        active = {d: b for d, b in behaviors.items() if d not in offline}
        oracle = plaintext_mod.expected_under_faults(
            plan, graph, offline=offline, behaviors=active
        )
        aggregation, decoded = _encrypted_round(
            case, bench, plan, graph, active, offline, "byz", q
        )
        results.append(
            check_equal(
                f"byzantine.rejected-matches-oracle[{q}]",
                frozenset(aggregation.rejected),
                oracle.rejected_origins,
            )
        )
        results.append(
            check_equal(
                f"byzantine.coefficients[{q}]",
                decoded,
                oracle.coefficients,
            )
        )
        # Honest-only bit-identity: forged-proof attackers are both
        # origin-rejecting and leaf-breaking, so the attacked answer
        # must equal a run where the attackers were simply offline —
        # the attack's blast radius never reaches honest answers.
        _, baseline = _encrypted_round(
            case,
            bench,
            plan,
            graph,
            {},
            frozenset(case.offline) | attackers,
            "byz",
            q,
        )
        results.append(
            check_equal(
                f"byzantine.honest-bit-identical[{q}]",
                decoded,
                baseline,
            )
        )
        ledger.record_rejections(aggregation.rejected)

    final = frozenset(ledger.quarantined)
    results.append(
        check(
            "byzantine.quarantine-subset-of-attackers",
            final <= attackers,
            f"quarantined {sorted(final)} vs attackers {sorted(attackers)}",
        )
    )
    # Every case runs >= threshold queries, and a forged proof is
    # rejected every round its origin stays online, so persistence
    # must land every attacker in quarantine by the end.
    results.append(
        check_equal(
            "byzantine.attackers-quarantined", final, attackers
        )
    )
    return results


def _run_quarantine_soundness(
    case: TrialCase, bench: AuditBench
) -> list[CheckResult]:
    from repro.adversary import quarantine as quarantine_mod

    results: list[CheckResult] = []
    plan = compile_case_plan(case)
    graph = case.graph.build()
    behaviors = {d: Behavior(v) for d, v in case.behaviors.items()}
    attackers = frozenset(behaviors)
    ledger = quarantine_mod.SuspicionLedger()

    for q in range(case.num_queries):
        quarantined = frozenset(ledger.quarantined)
        offline = frozenset(case.offline) | quarantined
        active = {d: b for d, b in behaviors.items() if d not in offline}
        oracle = plaintext_mod.expected_under_faults(
            plan, graph, offline=offline, behaviors=active
        )
        aggregation, decoded = _encrypted_round(
            case, bench, plan, graph, active, offline, "quar", q
        )
        results.append(
            check_equal(
                f"quarantine.rejected-matches-oracle[{q}]",
                frozenset(aggregation.rejected),
                oracle.rejected_origins,
            )
        )
        results.append(
            check_equal(
                f"quarantine.coefficients[{q}]",
                decoded,
                oracle.coefficients,
            )
        )
        # A quarantined origin defaults to Enc(x^0) server-side — it
        # must never reach the aggregator again, accepted or rejected.
        results.append(
            check(
                f"quarantine.quarantined-never-resubmit[{q}]",
                not quarantined
                & (set(aggregation.accepted) | set(aggregation.rejected)),
                f"quarantined {sorted(quarantined)} reappeared in round {q}",
            )
        )
        ledger.record_rejections(aggregation.rejected)

    suspected = frozenset(ledger.suspicion)
    final = frozenset(ledger.quarantined)
    results.append(
        check(
            "quarantine.honest-never-suspected",
            suspected <= attackers,
            f"suspected {sorted(suspected)} vs attackers {sorted(attackers)}",
        )
    )
    results.append(
        check(
            "quarantine.soundness",
            final <= attackers,
            f"quarantined {sorted(final)} vs attackers {sorted(attackers)}",
        )
    )
    # Completeness: every attacker misbehaves each round it is online,
    # and the case runs at least ``threshold`` queries, so each must be
    # quarantined by the end.  The unquarantined-attacker mutant (a
    # ledger that never records rejections) fails exactly here.
    results.append(
        check_equal("quarantine.attackers-quarantined", final, attackers)
    )
    return results


# ---------------------------------------------------------------------------
# Budget: conservation, monotonicity, admission arithmetic
# ---------------------------------------------------------------------------


def _run_budget(case: TrialCase) -> list[CheckResult]:
    results: list[CheckResult] = []
    budget = budget_mod.PrivacyBudget(case.total_epsilon)
    ledger: list[float] = []
    previous_remaining = budget.remaining
    conserved = True
    monotone = True
    rejected_cleanly = True
    for epsilon in case.epsilons:
        if budget.can_afford(epsilon):
            budget.charge(epsilon)
            ledger.append(epsilon)
        else:
            try:
                budget.charge(epsilon)
                rejected_cleanly = False
            except PrivacyBudgetExceeded:
                pass
        if budget.spent != math.fsum(ledger):
            conserved = False
        if math.fsum(ledger) > case.total_epsilon:
            conserved = False
        if budget.remaining > previous_remaining:
            monotone = False
        previous_remaining = budget.remaining
    results.append(
        check(
            "budget.spent-equals-ledger",
            conserved,
            f"spent {budget.spent!r} after {len(ledger)} charges of "
            f"{case.total_epsilon}",
        )
    )
    results.append(check("budget.remaining-monotone", monotone))
    results.append(
        check(
            "budget.charge-raises-when-unaffordable",
            rejected_cleanly,
        )
    )
    if ledger:
        results.append(
            check(
                "budget.no-overcharge-admission",
                not budget.can_afford(case.total_epsilon),
                "a full-budget charge on a non-empty ledger must be refused",
            )
        )

    # Advanced composition: the closed-form count must equal what the
    # accountant actually admits, and the composed bound must be monotone
    # and never worse than sequential composition.
    adv = budget_mod.AdvancedCompositionBudget(
        case.total_epsilon, case.per_query_epsilon, case.delta
    )
    admitted = 0
    while adv.can_afford_next() and admitted <= 100_000:
        adv.charge()
        admitted += 1
    supported = budget_mod.queries_supported(
        case.total_epsilon, case.per_query_epsilon, case.delta
    )
    results.append(
        check_equal("budget.supported-matches-admission", supported, admitted)
    )
    composed = [
        budget_mod.composed_epsilon(case.per_query_epsilon, k, case.delta)
        for k in range(0, 13)
    ]
    results.append(
        check(
            "budget.composed-monotone",
            all(a <= b + 1e-12 for a, b in zip(composed, composed[1:])),
            f"composed sequence {composed}",
        )
    )
    results.append(
        check(
            "budget.composed-not-worse-than-sequential",
            all(
                composed[k] <= k * case.per_query_epsilon + 1e-12
                for k in range(len(composed))
            ),
        )
    )
    # A budget smaller than one query's composed epsilon supports zero
    # queries — a fixed probe for the classic off-by-one.
    results.append(
        check_equal(
            "budget.zero-queries-when-nothing-fits",
            budget_mod.queries_supported(0.5, 1.0, 1e-6),
            0,
        )
    )
    # A budget filled to exactly its limit must refuse even epsilon-dust:
    # this is the boundary an absolute admission slack silently crosses.
    probe = budget_mod.PrivacyBudget(1.0)
    for _ in range(4):
        probe.charge(0.25)
    results.append(
        check(
            "budget.exhausted-refuses-epsilon-dust",
            not probe.can_afford(1e-7),
            "an exactly-full budget admitted a 1e-7 charge",
        )
    )
    return results


# ---------------------------------------------------------------------------
# Sensitivity: static bound vs measured L1 influence
# ---------------------------------------------------------------------------


def _released_values(plan: ExecutionPlan, coefficients: tuple[int, ...]) -> list[float]:
    if plan.output is OutputKind.HISTO:
        groups = histogram_mod.decode_histogram(list(coefficients), plan)
        return [float(c) for g in groups for c in g.counts]
    return [float(v) for v in histogram_mod.decode_gsum(list(coefficients), plan)]


def _perturb_device(graph, device: int, rng: random.Random) -> None:
    schema = audit_schema()
    for name in schema.column_names():
        try:
            spec = schema.lookup(ColumnGroup.SELF, name)
        except MyceliumError:
            continue
        graph.vertex_attrs[device][name] = rng.randint(spec.low, spec.high)
    for neighbor in graph.neighbors(device):
        record = graph.edge(device, neighbor)
        for name in schema.column_names():
            try:
                spec = schema.lookup(ColumnGroup.EDGE, name)
            except MyceliumError:
                continue
            value = rng.randint(spec.low, spec.high)
            record[name] = value
            graph.edge(neighbor, device)[name] = value


def _run_sensitivity(case: TrialCase, bench: AuditBench) -> list[CheckResult]:
    results: list[CheckResult] = []
    plan = compile_case_plan(case)
    report = sensitivity_mod.analyze(plan)

    # Independent recomputation of the §4.7 formula.
    influenced = 1 + sum(
        plan.degree_bound**i for i in range(1, plan.hops + 1)
    )
    if plan.output is OutputKind.HISTO:
        per_query = 2.0
    else:
        low, high = plan.clip
        per_query = float(high - low) or 1.0
    results.append(
        check_equal(
            "sensitivity.static-formula",
            (report.influenced_queries, report.sensitivity),
            (influenced, per_query * influenced),
        )
    )

    base = plaintext_mod.run_plaintext(plan, case.graph.build())
    base_values = _released_values(plan, base.coefficients)
    rng = random.Random(case.seed)
    worst = 0.0
    for _ in range(3):
        perturbed_graph = case.graph.build()
        device = rng.randrange(perturbed_graph.num_vertices)
        _perturb_device(perturbed_graph, device, rng)
        other = plaintext_mod.run_plaintext(plan, perturbed_graph)
        other_values = _released_values(plan, other.coefficients)
        l1 = sum(
            abs(a - b) for a, b in zip(base_values, other_values)
        )
        worst = max(worst, l1)
    results.append(
        check_le(
            "sensitivity.static-bounds-empirical",
            worst,
            report.sensitivity,
            tol=1e-9,
        )
    )
    return results


# ---------------------------------------------------------------------------
# Shamir / VSR / threshold decryption
# ---------------------------------------------------------------------------


def _run_shamir(case: TrialCase, bench: AuditBench) -> list[CheckResult]:
    results: list[CheckResult] = []
    field = bench.shamir_field
    rng = random.Random(case.seed)
    secret = rng.randrange(field)
    t, n = case.threshold, case.num_shares
    shares = shamir.share_secret(secret, t, n, field, rng)

    reconstructed_ok = all(
        shamir.reconstruct_secret(rng.sample(shares, t), field) == secret
        for _ in range(3)
    )
    results.append(
        check("shamir.threshold-reconstructs", reconstructed_ok)
    )
    below = shamir.reconstruct_secret(rng.sample(shares, t - 1), field)
    results.append(
        check(
            "shamir.below-threshold-fails",
            below != secret,
            "t-1 shares interpolated the secret exactly",
        )
    )
    vector = [rng.randrange(field) for _ in range(4)]
    vector_shares = shamir.share_vector(vector, t, n, field, rng)
    results.append(
        check_equal(
            "shamir.vector-roundtrip",
            shamir.reconstruct_vector(rng.sample(vector_shares, t), field),
            vector,
        )
    )

    group = bench.committee.group
    dealt = vsr.deal_initial(secret, t, n, group, rng)
    new_n = n + 1
    new_shares, _ = vsr.redistribute(
        dealt.shares,
        dealt.commitment,
        old_threshold=t,
        new_threshold=t,
        new_size=new_n,
        group=group,
        rng=rng,
    )
    results.append(
        check_equal(
            "shamir.vsr-preserves-secret",
            shamir.reconstruct_secret(new_shares[:t], field),
            secret,
        )
    )
    if n > t:
        corrupt_shares, _ = vsr.redistribute(
            dealt.shares,
            dealt.commitment,
            old_threshold=t,
            new_threshold=t,
            new_size=new_n,
            group=group,
            rng=rng,
            corrupt_dealers={dealt.shares[0].index},
        )
        results.append(
            check_equal(
                "shamir.vsr-survives-corrupt-dealer",
                shamir.reconstruct_secret(corrupt_shares[:t], field),
                secret,
            )
        )

    # Committee threshold decryption must agree with direct decryption.
    exponent = rng.randrange(bench.profile.n)
    ciphertext = bgv.encrypt_monomial(bench.public, exponent, rng)
    plain = committee_mod.threshold_decrypt(
        bench.committee, ciphertext, derive_rng(case.seed, "decrypt")
    )
    results.append(
        check_equal(
            "shamir.threshold-decrypt-matches-direct",
            tuple(plain.coeffs),
            tuple(bgv.decrypt(bench.secret, ciphertext).coeffs),
        )
    )
    return results


# ---------------------------------------------------------------------------
# Robust decode: single-pass Reed-Solomon decryption vs the honest oracle
# ---------------------------------------------------------------------------


def _robust_committee(case: TrialCase, bench: AuditBench, rng: random.Random):
    """A trial-sized committee sharing the bench secret key.

    The bench committee (3 members, threshold 2) has a unique-decoding
    radius of 0, so robust trials deal their own larger committee —
    cheap next to keygen, and the bench secret stays the oracle.
    """
    member_ids = sorted(rng.sample(range(100), case.num_shares))
    trial_committee = committee_mod.genesis_share_key(
        bench.secret, member_ids, case.threshold, rng
    )
    corrupt_ids = {member_ids[p] for p in case.corrupt}
    return trial_committee, corrupt_ids


def _run_robust(case: TrialCase, bench: AuditBench) -> list[CheckResult]:
    results: list[CheckResult] = []
    rng = random.Random(case.seed)
    trial_committee, corrupt_ids = _robust_committee(case, bench, rng)
    exponent = rng.randrange(bench.profile.n)
    ciphertext = bgv.encrypt_monomial(bench.public, exponent, rng)
    oracle = bgv.decrypt(bench.secret, ciphertext)

    plain, flagged = committee_mod.robust_threshold_decrypt(
        trial_committee,
        ciphertext,
        derive_rng(case.seed, "decrypt"),
        corrupt_members=corrupt_ids,
    )
    results.append(
        check_equal(
            "robust.decode-matches-oracle",
            tuple(plain.coeffs),
            tuple(oracle.coeffs),
        )
    )
    results.append(
        check_equal("robust.flags-exactly-corrupt", flagged, corrupt_ids)
    )

    # Field-level batch opening: many codewords on one index set must
    # cost exactly one error-locator computation.
    from repro.crypto import robust as robust_mod

    field = bench.shamir_field
    vector = [rng.randrange(field) for _ in range(8)]
    vector_shares = shamir.share_vector(
        vector, case.threshold, case.num_shares, field, rng
    )
    indices = [s.index for s in vector_shares]
    rows = [
        [s.values[j] for s in vector_shares] for j in range(len(vector))
    ]
    for p in case.corrupt:
        for j in range(len(rows)):
            rows[j][p] = (rows[j][p] + 1 + p) % field
    secrets, flagged_idx, stats = robust_mod.batch_robust_reconstruct(
        indices, rows, case.threshold, field
    )
    results.append(
        check_equal("robust.batch-secrets", secrets, vector)
    )
    results.append(
        check_equal(
            "robust.batch-flags-exactly-corrupt",
            flagged_idx,
            {indices[p] for p in case.corrupt},
        )
    )
    results.append(
        check_equal(
            "robust.batch-single-locator", stats.locator_computations, 1
        )
    )
    return results


# ---------------------------------------------------------------------------
# Flagging: soundness — flagged members are a subset of the actual liars
# ---------------------------------------------------------------------------


def _run_flagging(case: TrialCase, bench: AuditBench) -> list[CheckResult]:
    from repro.errors import RobustDecodingError

    results: list[CheckResult] = []
    rng = random.Random(case.seed)
    trial_committee, corrupt_ids = _robust_committee(case, bench, rng)
    exponent = rng.randrange(bench.profile.n)
    ciphertext = bgv.encrypt_monomial(bench.public, exponent, rng)
    oracle = bgv.decrypt(bench.secret, ciphertext)

    # An all-honest committee must flag nobody — a decoder (or a partial
    # computation) that silently perturbs a share is caught right here.
    plain, flagged = committee_mod.robust_threshold_decrypt(
        trial_committee,
        ciphertext,
        derive_rng(case.seed, "decrypt"),
    )
    results.append(
        check_equal(
            "flagging.honest-run-matches-oracle",
            tuple(plain.coeffs),
            tuple(oracle.coeffs),
        )
    )
    results.append(
        check_equal("flagging.honest-run-flags-nobody", flagged, set())
    )

    # At the full decoding radius, every flagged member must really be
    # corrupt (soundness) and the plaintext must still be exact.
    plain, flagged = committee_mod.robust_threshold_decrypt(
        trial_committee,
        ciphertext,
        derive_rng(case.seed, "decrypt", "corrupt"),
        corrupt_members=corrupt_ids,
    )
    results.append(
        check(
            "flagging.flagged-subset-of-corrupt",
            flagged <= corrupt_ids,
            f"flagged {sorted(flagged)} vs corrupt {sorted(corrupt_ids)}",
        )
    )
    results.append(
        check_equal(
            "flagging.radius-decode-matches-oracle",
            tuple(plain.coeffs),
            tuple(oracle.coeffs),
        )
    )

    # One liar past the radius: the decoder must refuse (typed error) or
    # still land on the exact plaintext — never a silently wrong one.
    radius = (case.num_shares - case.threshold) // 2
    overload = {
        m.device_id for m in trial_committee.members[: radius + 1]
    }
    try:
        plain, _ = committee_mod.robust_threshold_decrypt(
            trial_committee,
            ciphertext,
            derive_rng(case.seed, "decrypt", "overload"),
            corrupt_members=overload,
        )
    except RobustDecodingError:
        results.append(check("flagging.overload-never-wrong", True))
    else:
        results.append(
            check(
                "flagging.overload-never-wrong",
                tuple(plain.coeffs) == tuple(oracle.coeffs),
                "decode past the radius returned a wrong plaintext",
            )
        )
    return results


# ---------------------------------------------------------------------------
# Crash: kill the campaign coordinator at a phase boundary, resume, and
# require bit-identical released results, ledger, and epoch commitments
# ---------------------------------------------------------------------------


def _run_crash(case: TrialCase) -> list[CheckResult]:
    import shutil
    import tempfile

    from repro.durability import campaign as campaign_mod
    from repro.errors import CoordinatorCrash
    from repro.workloads.epidemic import campaign_queries

    results: list[CheckResult] = []
    config = campaign_mod.CampaignConfig(
        master_seed=case.seed,
        queries=campaign_queries(case.num_queries),
        people=case.people,
        degree=3,
        rotate_every=case.rotate_every,
    )
    oracle_dir = tempfile.mkdtemp(prefix="audit-crash-oracle-")
    victim_dir = tempfile.mkdtemp(prefix="audit-crash-victim-")
    try:
        oracle = campaign_mod.run_campaign(config, oracle_dir)
        kill = campaign_mod.KillSpec(
            phase=case.kill_phase,
            query=case.kill_query,
            before=case.kill_before,
        )
        crashed = False
        try:
            campaign_mod.run_campaign(config, victim_dir, kill=kill)
        except CoordinatorCrash:
            crashed = True
        results.append(
            check(
                "crash.kill-point-fired",
                crashed,
                f"kill at {case.kill_phase}:{case.kill_query} "
                f"(before={case.kill_before}) never triggered",
            )
        )
        resumed = campaign_mod.resume_campaign(victim_dir)
        results.append(
            check_equal(
                "crash.ledger-identical", resumed.ledger, oracle.ledger
            )
        )
        results.append(
            check_equal(
                "crash.epochs-identical", resumed.epochs, oracle.epochs
            )
        )
        results.append(
            check_equal(
                "crash.results-identical", resumed.results, oracle.results
            )
        )
        results.append(
            check_equal(
                "crash.digest-identical", resumed.digest, oracle.digest
            )
        )
    finally:
        shutil.rmtree(oracle_dir, ignore_errors=True)
        shutil.rmtree(victim_dir, ignore_errors=True)
    return results


# ---------------------------------------------------------------------------
# Mixnet: onion-routed query under faults
# ---------------------------------------------------------------------------


def _run_mixnet(case: TrialCase) -> list[CheckResult]:
    from repro.core.system import MyceliumSystem
    from repro.faults import FaultInjector, FaultPlan
    from repro.mixnet.network import MixnetWorld
    from repro.params import SystemParameters
    from repro.query.schema import scaled_schema
    from repro.workloads.epidemic import run_epidemic
    from repro.workloads.graphgen import generate_household_graph

    results: list[CheckResult] = []
    rng = random.Random(case.seed)
    graph = generate_household_graph(
        case.people, degree_bound=2, rng=rng, external_contacts=1
    )
    run_epidemic(graph, rng)
    for u in range(graph.num_vertices):
        for v in graph.neighbors(u):
            edge = graph.edge(u, v)
            edge["duration"] = min(edge["duration"], 20)
            edge["contacts"] = min(edge["contacts"], 8)
    params = SystemParameters(
        num_devices=graph.num_vertices,
        hops=2,
        replicas=2,
        forwarder_fraction=0.45,
        degree_bound=2,
        pseudonyms_per_device=2,
        churn_fraction=min(0.9, case.failure),
    )
    world = MixnetWorld(
        params,
        num_devices=graph.num_vertices,
        rng=rng,
        rsa_bits=512,
        pseudonyms_per_device=2,
    )
    system = MyceliumSystem.setup(
        num_devices=graph.num_vertices,
        rng=rng,
        params=params,
        schema=scaled_schema(),
        committee_size=3,
        committee_threshold=2,
        total_epsilon=10.0,
    )
    fault_start = params.telescoping_crounds + 4
    fault_plan = FaultPlan.generate(
        seed=case.seed,
        num_devices=graph.num_vertices,
        churn_fraction=case.failure / 2,
        churn_window_rounds=4,
        horizon_rounds=96,
        start_round=fault_start,
        wire_drop_rate=case.failure / 2,
        wire_delay_rate=case.failure / 4,
        wire_corrupt_rate=case.failure / 4,
        wire_fault_start=fault_start,
    )
    FaultInjector(fault_plan).attach(world)
    query = "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE dest.inf"
    try:
        result = system.run_query(
            query, graph, epsilon=1.0, noiseless=True, world=world
        )
    except MyceliumError as exc:
        results.append(
            check(
                "mixnet.typed-failure",
                True,
                f"{type(exc).__name__}: {exc}",
            )
        )
        return results

    report = result.metadata.recovery
    plan = system.compile(query)
    expected, _ = plaintext_mod.aggregate_coefficients(
        plan,
        graph,
        skipped_origins=report.skipped_origins,
        defaulted=report.defaulted_by_origin,
    )
    expected_counts = [
        [int(c) for c in g.counts]
        for g in histogram_mod.decode_histogram(expected, plan)
    ]
    got_counts = [[int(round(c)) for c in g.counts] for g in result.groups]
    results.append(
        check_equal(
            "mixnet.matches-degraded-oracle", got_counts, expected_counts
        )
    )
    results.append(
        check_equal(
            "mixnet.complaint-count-consistent",
            result.metadata.complaints,
            len(report.complaints),
        )
    )
    results.append(
        check(
            "mixnet.decrypt-attempts-positive",
            report.decrypt_attempts >= 1,
            f"attempts {report.decrypt_attempts}",
        )
    )
    results.append(
        check(
            "mixnet.crounds-bounded",
            0 < report.crounds <= 96 + fault_start,
            f"crounds {report.crounds}",
        )
    )
    return results
