"""Greedy minimization of failing trial cases.

Given a case and a "does it still fail?" predicate, repeatedly apply the
first size-reducing transformation that preserves the failure, until no
transformation applies or the execution budget runs out.  The
transformations only ever shrink the case's serialized form, so the loop
terminates; the result is the case a human actually wants to read.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import replace

from repro import telemetry
from repro.audit.cases import TrialCase

#: Hard cap on trial executions one shrink may spend.
MAX_SHRINK_EXECUTIONS = 200


def _graph_transformations(case: TrialCase) -> Iterator[TrialCase]:
    graph = case.graph
    if graph is None:
        return
    if len(graph.vertices) > 2:
        dropped = len(graph.vertices) - 1
        yield replace(
            case,
            graph=graph.drop_vertex(dropped),
            offline=tuple(d for d in case.offline if d != dropped),
            behaviors={
                d: b for d, b in case.behaviors.items() if d != dropped
            },
        )
    for index in range(len(graph.edges)):
        yield replace(case, graph=graph.drop_edge(index))


def _fault_transformations(case: TrialCase) -> Iterator[TrialCase]:
    for device in case.behaviors:
        yield replace(
            case,
            behaviors={
                d: b for d, b in case.behaviors.items() if d != device
            },
        )
    for device in case.offline:
        yield replace(
            case,
            offline=tuple(d for d in case.offline if d != device),
        )


def _runtime_transformations(case: TrialCase) -> Iterator[TrialCase]:
    if case.workers != 1:
        yield replace(case, workers=1)
    if case.backend != "pure":
        yield replace(case, backend="pure")
    # Keep at least two shards so the case still exercises the sharded
    # aggregation path rather than degenerating to the flat one.
    if case.shards > 2:
        yield replace(case, shards=2)


def _epsilon_transformations(case: TrialCase) -> Iterator[TrialCase]:
    n = len(case.epsilons)
    if n > 1:
        yield replace(case, epsilons=case.epsilons[: n // 2])
        yield replace(case, epsilons=case.epsilons[n // 2 :])
    if 1 < n <= 8:
        for index in range(n):
            yield replace(
                case,
                epsilons=case.epsilons[:index] + case.epsilons[index + 1 :],
            )


def _committee_transformations(case: TrialCase) -> Iterator[TrialCase]:
    for index in range(len(case.corrupt)):
        yield replace(
            case,
            corrupt=case.corrupt[:index] + case.corrupt[index + 1 :],
        )
    if case.num_shares > case.threshold + 1 and all(
        p < case.num_shares - 1 for p in case.corrupt
    ):
        yield replace(case, num_shares=case.num_shares - 1)


def transformations(case: TrialCase) -> Iterator[TrialCase]:
    """Candidate one-step reductions, most aggressive first."""
    yield from _graph_transformations(case)
    yield from _fault_transformations(case)
    yield from _epsilon_transformations(case)
    yield from _committee_transformations(case)
    yield from _runtime_transformations(case)


def shrink_case(
    case: TrialCase,
    is_failing: Callable[[TrialCase], bool],
    max_executions: int = MAX_SHRINK_EXECUTIONS,
) -> tuple[TrialCase, int]:
    """Greedily minimize ``case`` while ``is_failing`` stays true.

    Returns the smallest failing case found and the number of trial
    executions spent.  ``is_failing(case)`` is assumed true on entry (the
    caller just observed the failure) and is not re-checked.
    """
    executions = 0
    current = case
    progress = True
    while progress and executions < max_executions:
        progress = False
        for candidate in transformations(current):
            if executions >= max_executions:
                break
            executions += 1
            try:
                failing = is_failing(candidate)
            except Exception:
                # A transformation that makes the trial error out in a
                # *new* way is still a failure worth keeping small, but
                # we prefer reproducing the original; treat as not
                # failing and move on.
                failing = False
            if failing:
                current = candidate
                progress = True
                break
    telemetry.count("audit.shrink.executions", executions)
    return current, executions
