"""Shared cryptographic fixtures for audit trials.

Key generation dominates trial cost, and every invariant the harness
checks is a property of *queries*, not of key material — so one bench
(BGV keys, relinearization keys, the Groth16 setup, and a genesis-shared
committee) is built once per process and reused across all trials.  The
genesis secret is kept, exactly as :class:`repro.core.system.MyceliumSystem`
keeps it, to serve as the decryption oracle the invariants compare
against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from repro.core import committee as committee_mod
from repro.crypto import bgv, zksnark
from repro.engine.zkcircuits import build_circuits
from repro.params import TEST, BGVProfile

#: Deferred relinearization leaves a device output at degree up to its
#: neighborhood size; the largest plan the generator draws is two hops at
#: degree bound 3 (1 + 3 + 9 = 13 vertices).  Cover it with margin.
RELIN_POWER = 16

#: One fixed seed for the bench: trials must be a function of the *case*
#: seed alone, so the key material is pinned rather than drawn per run.
BENCH_SEED = 0xA0D17


@dataclass(frozen=True)
class AuditBench:
    """Process-wide key material for audit trials."""

    profile: BGVProfile
    secret: bgv.SecretKey
    public: bgv.PublicKey
    relin_keys: bgv.RelinKeySet
    zk: zksnark.Groth16System
    committee: committee_mod.Committee

    @property
    def shamir_field(self) -> int:
        """The prime field the committee's key shares live in."""
        return self.committee.group.order


@lru_cache(maxsize=1)
def get_bench() -> AuditBench:
    """Build (once) the shared bench."""
    rng = random.Random(BENCH_SEED)
    secret, public = bgv.keygen(TEST, rng)
    relin_keys = bgv.make_relin_keys(secret, RELIN_POWER, rng)
    zk = zksnark.Groth16System.setup(build_circuits(), rng)
    committee = committee_mod.genesis_share_key(secret, [0, 1, 2], 2, rng)
    return AuditBench(
        profile=TEST,
        secret=secret,
        public=public,
        relin_keys=relin_keys,
        zk=zk,
        committee=committee,
    )
