"""Analytic scaling model for sharded aggregation.

The paper benchmarks components and extrapolates to planetary scale
(§6.1).  The sharded live simulation lets us *measure* further up the
curve — 10^4 to 10^6 devices on one machine — before extrapolating.
This module fits the measured devices→wall-clock line and the
shard-size→peak-RSS line from ``benchmarks/bench_shard_scale.py``
sweeps, predicts the 10^9-device deployment, and cross-checks the
prediction against the Figure 9(b) aggregator compute model
(:mod:`repro.analysis.aggregator_model`), which priced the same
aggregation work in flat aggregator cores: both models are linear in
the population, so their ratio must be the constant
``seconds_per_device / AGGREGATION_SECONDS_PER_DEVICE`` at every N.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.aggregator_model import (
    AGGREGATION_SECONDS_PER_DEVICE,
    DEADLINE_HOURS,
)
from repro.errors import ParameterError


@dataclass(frozen=True)
class ShardScalePoint:
    """One cell of a devices × shards sweep."""

    devices: int
    shards: int
    wall_seconds: float
    peak_rss_bytes: int

    @property
    def shard_size(self) -> int:
        """The largest shard's device count (balanced partition)."""
        return -(-self.devices // self.shards)


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line ``y = slope * x + intercept``."""

    slope: float
    intercept: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def fit_line(xs: list[float], ys: list[float]) -> LinearFit:
    """Ordinary least squares through ``(xs, ys)``."""
    if len(xs) != len(ys):
        raise ParameterError("x and y lengths differ")
    if len(xs) < 2:
        raise ParameterError("need at least two points to fit a line")
    n = len(xs)
    mean_x = math.fsum(xs) / n
    mean_y = math.fsum(ys) / n
    variance = math.fsum((x - mean_x) ** 2 for x in xs)
    if variance == 0:
        raise ParameterError("need at least two distinct x values")
    covariance = math.fsum(
        (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
    )
    slope = covariance / variance
    return LinearFit(slope=slope, intercept=mean_y - slope * mean_x)


def fit_wall_clock(points: list[ShardScalePoint]) -> LinearFit:
    """Wall-clock seconds as a line in the device count.

    The simulated sweep runs shards sequentially, so the total work —
    and therefore the fitted slope — is independent of K; a real
    deployment divides the slope by the number of parallel shard
    aggregators (see :func:`shards_required`).
    """
    return fit_line(
        [float(p.devices) for p in points],
        [p.wall_seconds for p in points],
    )


def fit_peak_rss(points: list[ShardScalePoint]) -> LinearFit:
    """Peak RSS as a line in the *shard size*, not the device count.

    A positive slope against shard size with a layout-independent
    intercept (interpreter + keys + contribution bank) is the measured
    form of the memory-bounded streaming claim: state for one shard is
    resident at a time.
    """
    return fit_line(
        [float(p.shard_size) for p in points],
        [float(p.peak_rss_bytes) for p in points],
    )


def shards_required(
    devices: int,
    seconds_per_device: float,
    deadline_hours: float = DEADLINE_HOURS,
) -> int:
    """Parallel shard aggregators needed to meet the Figure 9(b)
    deadline, with the reduction tree's log K closing additions taken
    as negligible against the per-shard linear work."""
    if devices < 0:
        raise ParameterError("device count must be non-negative")
    if seconds_per_device <= 0:
        raise ParameterError("seconds per device must be positive")
    if deadline_hours <= 0:
        raise ParameterError("deadline must be positive")
    budget_seconds = deadline_hours * 3600
    return max(1, math.ceil(devices * seconds_per_device / budget_seconds))


def figure_9b_cross_check(
    seconds_per_device: float,
    populations: tuple[int, ...] = (10**6, 10**7, 10**8, 10**9),
    deadline_hours: float = DEADLINE_HOURS,
) -> list[dict[str, float]]:
    """Measured sharded model vs the paper-anchored aggregation model.

    Each row compares total aggregation seconds under the measured
    per-device slope with the Figure 9(b) anchor
    (:data:`AGGREGATION_SECONDS_PER_DEVICE`), and the shard count that
    meets the deadline.  ``ratio_to_paper`` must be the same constant
    in every row — both models are linear — which is the re-validation
    the benchmark asserts.
    """
    rows = []
    for n in populations:
        measured_seconds = n * seconds_per_device
        paper_seconds = n * AGGREGATION_SECONDS_PER_DEVICE
        rows.append(
            {
                "devices": float(n),
                "measured_seconds": measured_seconds,
                "paper_seconds": paper_seconds,
                "ratio_to_paper": measured_seconds / paper_seconds,
                "shards_required": float(
                    shards_required(n, seconds_per_device, deadline_hours)
                ),
            }
        )
    return rows
