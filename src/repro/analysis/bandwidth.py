"""Bandwidth models: Figures 7 and 9(a).

From §6.4: each device originates r * C_q * d large FHE ciphertexts per
direction (query out, response back), and a device chosen as a forwarder
additionally relays a batch of (r * C_q * d) / f ciphertexts.  With the
Figure 4 defaults and C_q = 1 this gives ~170 MB for non-forwarders,
~1030 MB for forwarders, and ~430 MB in expectation (a k*f fraction of
devices forward).

Figure 9(a) is the aggregator's *send* side: what it serves to each
device's downloads, plus Merkle/receipt overhead — ~350 MB per device
at (k=3, r=2).
"""

from __future__ import annotations

from repro.analysis.costmodel import (
    PAPER_CIPHERTEXT_MB,
    PROOF_OVERHEAD_FRACTION,
    forwarder_probability,
)
from repro.params import SystemParameters


def non_forwarder_mb(
    params: SystemParameters,
    ciphertexts_per_query: int = 1,
    ciphertext_mb: float = PAPER_CIPHERTEXT_MB,
) -> float:
    """Figure 7, right family: r*C_q*d ciphertexts out + the same back."""
    own = params.replicas * ciphertexts_per_query * params.degree_bound
    return 2 * own * ciphertext_mb


def forwarder_mb(
    params: SystemParameters,
    ciphertexts_per_query: int = 1,
    ciphertext_mb: float = PAPER_CIPHERTEXT_MB,
) -> float:
    """Figure 7, left family: own traffic plus the relayed batch."""
    batch = (
        params.replicas * ciphertexts_per_query * params.degree_bound
    ) / params.forwarder_fraction
    return non_forwarder_mb(params, ciphertexts_per_query, ciphertext_mb) + (
        batch * ciphertext_mb
    )


def expected_user_mb(
    params: SystemParameters,
    ciphertexts_per_query: int = 1,
    ciphertext_mb: float = PAPER_CIPHERTEXT_MB,
) -> float:
    """§6.4's headline: ~430 MB per device for a C_q = 1 query."""
    p_forward = forwarder_probability(params)
    return p_forward * forwarder_mb(
        params, ciphertexts_per_query, ciphertext_mb
    ) + (1 - p_forward) * non_forwarder_mb(
        params, ciphertexts_per_query, ciphertext_mb
    )


def aggregator_per_user_mb(
    params: SystemParameters,
    ciphertexts_per_query: int = 1,
    ciphertext_mb: float = PAPER_CIPHERTEXT_MB,
) -> float:
    """Figure 9(a): traffic the aggregator sends each device.

    Downloads: a forwarder fetches its relay batch; every device fetches
    its own responses.  Receipts and mailbox-tree proofs add
    PROOF_OVERHEAD_FRACTION on top.
    """
    own_download = (
        params.replicas * ciphertexts_per_query * params.degree_bound
    ) * ciphertext_mb
    batch_download = own_download / params.forwarder_fraction
    p_forward = forwarder_probability(params)
    expected = p_forward * batch_download + (1 - p_forward) * own_download
    return expected * (1 + PROOF_OVERHEAD_FRACTION)


def figure_7_series(
    base: SystemParameters,
    hops_range: tuple[int, ...] = (2, 3, 4),
    replicas_range: tuple[int, ...] = (1, 2, 3),
) -> dict[str, dict[tuple[int, int], float]]:
    """Per-user MB for every (k, r) cell, forwarder and non-forwarder."""
    forwarders = {}
    non_forwarders = {}
    for k in hops_range:
        for r in replicas_range:
            params = SystemParameters(
                num_devices=base.num_devices,
                hops=k,
                replicas=r,
                forwarder_fraction=base.forwarder_fraction,
                committee_size=base.committee_size,
                degree_bound=base.degree_bound,
            )
            forwarders[(k, r)] = forwarder_mb(params)
            non_forwarders[(k, r)] = non_forwarder_mb(params)
    return {"forwarder": forwarders, "non_forwarder": non_forwarders}


def figure_9a_series(
    base: SystemParameters,
    hops_range: tuple[int, ...] = (2, 3, 4),
    replicas_range: tuple[int, ...] = (1, 2, 3),
) -> dict[tuple[int, int], float]:
    """Aggregator-to-device MB for every (k, r) cell."""
    series = {}
    for k in hops_range:
        for r in replicas_range:
            params = SystemParameters(
                num_devices=base.num_devices,
                hops=k,
                replicas=r,
                forwarder_fraction=base.forwarder_fraction,
                committee_size=base.committee_size,
                degree_bound=base.degree_bound,
            )
            series[(k, r)] = aggregator_per_user_mb(params)
    return series
