"""Shared constants and primitives for the evaluation cost models (§6).

Where the paper reports a measured constant we use it directly (e.g.
4.3 MB per FHE ciphertext); where our implementation produces its own
constant (e.g. the serialized size at the PAPER profile) we expose both
so EXPERIMENTS.md can show them side by side.
"""

from __future__ import annotations

import math

from repro.params import PAPER, SystemParameters

#: The paper's reported ciphertext size (§6.4).
PAPER_CIPHERTEXT_MB = 4.3

#: Our PAPER-profile ciphertext size (two ring elements, §5 parameters).
def implementation_ciphertext_mb() -> float:
    return PAPER.ciphertext_bytes / 1e6


#: Mailbox / Merkle-proof overhead on top of raw ciphertext traffic,
#: calibrated so the aggregator-side total reproduces Figure 9(a)'s
#: ~350 MB at (k=3, r=2).
PROOF_OVERHEAD_FRACTION = 0.10

#: One C-round, in hours (Figure 4 discussion: "one-hour C-rounds").
CROUND_HOURS = 1.0


def binomial_tail(n: int, p: float, k_min: int) -> float:
    """P[Binomial(n, p) >= k_min], computed exactly."""
    if k_min <= 0:
        return 1.0
    if k_min > n:
        return 0.0
    total = 0.0
    for k in range(k_min, n + 1):
        total += math.comb(n, k) * (p**k) * ((1 - p) ** (n - k))
    return min(1.0, total)


def binomial_pmf(n: int, p: float, k: int) -> float:
    return math.comb(n, k) * (p**k) * ((1 - p) ** (n - k))


def forwarder_probability(params: SystemParameters) -> float:
    """A device serves as a forwarder with probability ~k*f (§3.4
    buckets are disjoint per hop position)."""
    return min(1.0, params.hops * params.forwarder_fraction)
