"""Protocol-duration model: Figure 5(d).

Telescoping path setup costs k^2 + 2k C-rounds (§3.4: extensions of
2+4+...+2(k-1) rounds plus 3k for the final DST/ACK/key exchange);
forwarding one query costs 2k + 2 C-rounds (k+1 out for the query, k+1
back for the response, §6.3).  With one-hour C-rounds and k = 3, both
phases of a one-hop query finish within a day.
"""

from __future__ import annotations

from repro.analysis.costmodel import CROUND_HOURS
from repro.errors import ParameterError


def telescoping_crounds(hops: int) -> int:
    if hops < 1:
        raise ParameterError("need at least one hop")
    return hops * hops + 2 * hops


def forwarding_crounds(hops: int) -> int:
    """One vertex-program communication round (query + response)."""
    if hops < 1:
        raise ParameterError("need at least one hop")
    return 2 * hops + 2


def query_crounds(hops: int, vertex_rounds: int) -> int:
    """A vertex program with 2k' message waves (k'-hop query) over a
    k-hop mixnet costs vertex_rounds * (k + 1) C-rounds plus setup."""
    return telescoping_crounds(hops) + vertex_rounds * (hops + 1)


def hours(crounds: int, cround_hours: float = CROUND_HOURS) -> float:
    return crounds * cround_hours


def figure_5d_series(
    hops_range: tuple[int, ...] = (2, 3, 4)
) -> dict[str, list[tuple[int, int]]]:
    """C-round counts for telescoping and forwarding vs path length."""
    return {
        "telescoping": [(k, telescoping_crounds(k)) for k in hops_range],
        "forwarding": [(k, forwarding_crounds(k)) for k in hops_range],
    }
