"""Accuracy vs. privacy analysis (an extension the paper leaves to the
analyst).

Given a query's static sensitivity, how accurate is a release at a given
epsilon and population size?  Useful in two directions: choosing epsilon
for a target relative error, and understanding how Mycelium's accuracy
*improves* with scale — the Laplace noise is constant in N while the
signal grows, which is exactly why the system targets millions of
devices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.query.plans import ExecutionPlan
from repro.query.sensitivity import analyze


@dataclass(frozen=True)
class AccuracyEstimate:
    """Error bounds for one released value."""

    epsilon: float
    noise_scale: float
    expected_absolute_error: float
    error_bound_95: float

    def relative_error(self, true_magnitude: float) -> float:
        if true_magnitude <= 0:
            return math.inf
        return self.expected_absolute_error / true_magnitude


def estimate(plan: ExecutionPlan, epsilon: float) -> AccuracyEstimate:
    """Error statistics of the Laplace mechanism for this plan.

    For Laplace(b): E|X| = b and P[|X| > b*ln(1/0.05)] = 5%.
    """
    if epsilon <= 0:
        raise ParameterError("epsilon must be positive")
    scale = analyze(plan).sensitivity / epsilon
    return AccuracyEstimate(
        epsilon=epsilon,
        noise_scale=scale,
        expected_absolute_error=scale,
        error_bound_95=scale * math.log(1 / 0.05),
    )


def epsilon_for_relative_error(
    plan: ExecutionPlan,
    target_relative_error: float,
    expected_magnitude: float,
) -> float:
    """Smallest epsilon achieving the target expected relative error for
    a release of the given magnitude."""
    if target_relative_error <= 0 or expected_magnitude <= 0:
        raise ParameterError("targets must be positive")
    sensitivity = analyze(plan).sensitivity
    return sensitivity / (target_relative_error * expected_magnitude)


def signal_to_noise_by_population(
    plan: ExecutionPlan,
    epsilon: float,
    populations: tuple[int, ...],
    signal_fraction: float = 0.1,
) -> list[tuple[int, float]]:
    """(N, SNR) rows: the released bin's expected magnitude is
    ``signal_fraction * N`` while the noise scale is constant — accuracy
    grows linearly with deployment size."""
    if not 0 < signal_fraction <= 1:
        raise ParameterError("signal fraction must be in (0, 1]")
    scale = estimate(plan, epsilon).noise_scale
    return [(n, signal_fraction * n / scale) for n in populations]
