"""Closed-form models behind the paper's evaluation figures, validated
against both the paper's anchors and the simulator: anonymity (Fig 5a/b),
goodput (5c), duration (5d), bandwidth (7, 9a), committee trade-offs (8),
aggregator compute (9b), and measurement extrapolation (§6.1/§6.4).
"""
