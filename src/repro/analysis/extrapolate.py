"""Scaling measured micro-benchmarks to deployment parameters (§6.1).

The paper could not deploy millions of devices; it benchmarks components
and extrapolates, and so do we.  This module (a) scales measured
ring-operation times between BGV profiles, and (b) assembles the §6.4
per-device compute budget (~14 minutes of ciphertext operations plus
~1 minute of proof generation) from per-operation costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.zksnark import PROVING_SECONDS_PER_CONSTRAINT
from repro.engine.zkcircuits import AGGREGATE_CONSTRAINTS, LEAF_CONSTRAINTS
from repro.params import BGVProfile, SystemParameters

#: §6.4 anchors (MacBook Pro, unoptimized Python BGV).
PAPER_HE_MINUTES = 14.0
PAPER_ZKP_MINUTES = 1.0


def ring_op_scale(from_profile: BGVProfile, to_profile: BGVProfile) -> float:
    """Cost ratio of one NTT-based ring multiplication between profiles.

    O(n log n) butterflies, each a multiplication of q-bit integers; for
    big-int arithmetic the per-multiplication cost grows roughly
    quadratically in the limb count.
    """

    def cost(profile: BGVProfile) -> float:
        limbs = max(1.0, profile.q_bits / 64)
        return profile.n * math.log2(profile.n) * limbs * limbs

    return cost(to_profile) / cost(from_profile)


@dataclass(frozen=True)
class DeviceComputeModel:
    """Per-device compute for one query (§6.4)."""

    encryptions: int
    multiplications: int
    proofs: int
    encrypt_seconds: float
    multiply_seconds: float
    he_seconds: float
    zkp_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.he_seconds + self.zkp_seconds

    @property
    def total_minutes(self) -> float:
        return self.total_seconds / 60


def device_compute(
    params: SystemParameters,
    ciphertexts_per_query: int,
    encrypt_seconds: float,
    multiply_seconds: float,
) -> DeviceComputeModel:
    """Assemble the per-device budget from measured per-op times.

    A device encrypts d * C_q contributions (one set per neighbor that
    queries it), performs d multiplications for its own local
    aggregation, and generates d * C_q leaf proofs plus one aggregation
    proof.
    """
    d = params.degree_bound
    encryptions = d * ciphertexts_per_query
    multiplications = d
    proofs = encryptions + 1
    he_seconds = (
        encryptions * encrypt_seconds + multiplications * multiply_seconds
    )
    zkp_seconds = (
        encryptions * LEAF_CONSTRAINTS + AGGREGATE_CONSTRAINTS
    ) * PROVING_SECONDS_PER_CONSTRAINT
    return DeviceComputeModel(
        encryptions=encryptions,
        multiplications=multiplications,
        proofs=proofs,
        encrypt_seconds=encrypt_seconds,
        multiply_seconds=multiply_seconds,
        he_seconds=he_seconds,
        zkp_seconds=zkp_seconds,
    )


def paper_anchored_device_minutes() -> tuple[float, float]:
    """The paper's reported split: (HE minutes, ZKP minutes)."""
    return PAPER_HE_MINUTES, PAPER_ZKP_MINUTES


def scale_measurement(
    measured_seconds: float,
    from_profile: BGVProfile,
    to_profile: BGVProfile,
) -> float:
    """Extrapolate one measured ring-op latency to another profile."""
    return measured_seconds * ring_op_scale(from_profile, to_profile)
