"""Topology-privacy models: Figures 5(a) and 5(b).

From §6.3: each *honest* forwarder multiplies the set of possible
senders of a delivered message by r/f (every message it uploaded could
have continued any of the messages it downloaded, and only a fraction f
of devices are eligible per hop while each sends r replicas).  A
*colluding* forwarder contributes nothing — the adversary traces the
message straight through it.  With k hops of which a Binomial(k, mal)
number collude:

    E[set size] = sum_m P[m colluders] * min(N, (r/f)^(k-m))

The identification event of Figure 5(b) is a replica whose path is
*entirely* malicious: probability 1 - (1 - mal^k)^r per message.
"""

from __future__ import annotations

from repro.analysis.costmodel import binomial_pmf
from repro.errors import ParameterError


def expected_anonymity_set(
    hops: int,
    replicas: int,
    forwarder_fraction: float,
    malicious_fraction: float,
    num_devices: int,
) -> float:
    """Figure 5(a): expected sender anonymity-set size."""
    if not 0 <= malicious_fraction < 1:
        raise ParameterError("malicious fraction must be in [0, 1)")
    growth = replicas / forwarder_fraction
    expected = 0.0
    for colluders in range(hops + 1):
        p = binomial_pmf(hops, malicious_fraction, colluders)
        size = min(float(num_devices), growth ** (hops - colluders))
        expected += p * size
    return expected


def identification_probability(
    hops: int, replicas: int, malicious_fraction: float
) -> float:
    """Figure 5(b): probability the adversary identifies a sender
    exactly — some replica traversed only colluding hops."""
    if not 0 <= malicious_fraction < 1:
        raise ParameterError("malicious fraction must be in [0, 1)")
    per_path = malicious_fraction**hops
    return 1 - (1 - per_path) ** replicas


def figure_5a_series(
    num_devices: int = 1_100_000,
    forwarder_fraction: float = 0.1,
    malicious_fraction: float = 0.02,
    hops_range: tuple[int, ...] = (1, 2, 3, 4),
    replicas_range: tuple[int, ...] = (1, 2, 3),
) -> dict[int, list[tuple[int, float]]]:
    """The Figure 5(a) series: anonymity set vs hops, one line per r."""
    return {
        r: [
            (
                k,
                expected_anonymity_set(
                    k, r, forwarder_fraction, malicious_fraction, num_devices
                ),
            )
            for k in hops_range
        ]
        for r in replicas_range
    }


def figure_5b_series(
    replicas: int = 3,
    hops_range: tuple[int, ...] = (2, 3, 4),
    malice_range: tuple[float, ...] = (0.005, 0.01, 0.02, 0.04),
) -> dict[int, list[tuple[float, float]]]:
    """The Figure 5(b) series: identification probability vs malice
    rate, one line per path length."""
    return {
        k: [
            (mal, identification_probability(k, replicas, mal))
            for mal in malice_range
        ]
        for k in hops_range
    }
