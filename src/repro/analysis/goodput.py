"""Message-delivery model: Figure 5(c).

A replica is delivered iff every one of its k forwarders stays online
and honest through its C-round; a message is lost only when all r
replicas fail:

    success = 1 - (1 - (1 - fail)^k)^r

At the paper's defaults (r=2, k=3, 4% node failure) about one message
in a hundred is lost, matching §6.3.
"""

from __future__ import annotations

from repro.errors import ParameterError


def replica_success(hops: int, failure_rate: float) -> float:
    """Probability one replica survives its whole path."""
    if not 0 <= failure_rate <= 1:
        raise ParameterError("failure rate must be in [0, 1]")
    return (1 - failure_rate) ** hops


def message_success(hops: int, replicas: int, failure_rate: float) -> float:
    """Figure 5(c)'s goodput: probability at least one replica arrives."""
    miss = 1 - replica_success(hops, failure_rate)
    return 1 - miss**replicas


def figure_5c_series(
    hops: int = 3,
    replicas_range: tuple[int, ...] = (1, 2, 3),
    failure_range: tuple[float, ...] = (
        0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08,
    ),
) -> dict[int, list[tuple[float, float]]]:
    """Goodput vs node failure rate, one line per replica count."""
    return {
        r: [(f, message_success(hops, r, f)) for f in failure_range]
        for r in replicas_range
    }
