"""Committee trade-off models: Figure 8 and the §6.5 costs.

Figure 8 reasons about committee size C (the paper built these graphs
"using equations obtained from the Honeycrisp authors"):

* **Privacy failure** (8a): the sampled committee contains enough
  malicious members to reconstruct the key — at least ceil(C/2), since
  Shamir reconstruction needs a majority with the SCALE-MAMBA threshold
  t < C/2.

* **Liveness** (8b): enough members are online to decrypt — at least
  floor(C/2) + 1 present.

§6.5's measured costs (3 minutes of MPC, ~4.5 GB per member at C = 10)
anchor the cost model; both scale with committee size and ciphertext
size.
"""

from __future__ import annotations

from repro.analysis.costmodel import PAPER_CIPHERTEXT_MB, binomial_tail
from repro.errors import ParameterError

#: §6.5 anchors at C = 10.
MPC_MINUTES_AT_10 = 3.0
MPC_GB_PER_MEMBER_AT_10 = 4.5


def reconstruction_threshold(committee_size: int) -> int:
    """Members needed to reconstruct the key: a majority."""
    return committee_size // 2 + 1


def privacy_failure_probability(
    committee_size: int, malicious_fraction: float
) -> float:
    """Figure 8(a): P[>= majority of the committee is malicious]."""
    if not 0 <= malicious_fraction < 1:
        raise ParameterError("malicious fraction must be in [0, 1)")
    return binomial_tail(
        committee_size,
        malicious_fraction,
        reconstruction_threshold(committee_size),
    )


def liveness_probability(
    committee_size: int, unavailable_fraction: float
) -> float:
    """Figure 8(b): P[enough members online to decrypt]."""
    if not 0 <= unavailable_fraction <= 1:
        raise ParameterError("unavailable fraction must be in [0, 1]")
    return binomial_tail(
        committee_size,
        1 - unavailable_fraction,
        reconstruction_threshold(committee_size),
    )


def figure_8a_series(
    sizes: tuple[int, ...] = (10, 20, 30, 40),
    malice_range: tuple[float, ...] = (0.005, 0.01, 0.02, 0.04),
) -> dict[int, list[tuple[float, float]]]:
    return {
        c: [(m, privacy_failure_probability(c, m)) for m in malice_range]
        for c in sizes
    }


def figure_8b_series(
    sizes: tuple[int, ...] = (10, 20, 30, 40),
    churn_range: tuple[float, ...] = (
        0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07,
    ),
) -> dict[int, list[tuple[float, float]]]:
    return {
        c: [(f, liveness_probability(c, f)) for f in churn_range]
        for c in sizes
    }


# ---------------------------------------------------------------------------
# §6.5 cost model
# ---------------------------------------------------------------------------


def mpc_minutes(committee_size: int) -> float:
    """Decryption-MPC wall time.  Pairwise communication dominates, so
    time grows with committee size relative to the C = 10 anchor."""
    return MPC_MINUTES_AT_10 * (committee_size / 10)


def mpc_gb_per_member(
    committee_size: int, ciphertext_mb: float = PAPER_CIPHERTEXT_MB
) -> float:
    """Per-member MPC bandwidth: shares of the (large) ciphertext are
    exchanged pairwise, so it scales with both C and the ciphertext."""
    return (
        MPC_GB_PER_MEMBER_AT_10
        * (committee_size / 10)
        * (ciphertext_mb / PAPER_CIPHERTEXT_MB)
    )
