"""Aggregator compute model: Figure 9(b).

The aggregator verifies every device's Groth16 proofs and performs the
global ciphertext aggregation.  Groth16 verification is linear in the
public I/O, which here contains the 4.3 MB ciphertexts — so proof
verification dominates and total work scales linearly with the number of
participants.  Figure 9(b) asks: how many cores finish within 10 hours?
"""

from __future__ import annotations

from repro.analysis.costmodel import PAPER_CIPHERTEXT_MB
from repro.crypto.zksnark import (
    VERIFY_SECONDS_BASE,
    VERIFY_SECONDS_PER_PUBLIC_BYTE,
)
from repro.errors import ParameterError
from repro.params import SystemParameters

#: Homomorphic addition of one 4.3 MB ciphertext into the running sum.
AGGREGATION_SECONDS_PER_DEVICE = 0.05

DEADLINE_HOURS = 10.0


def proofs_per_device(
    params: SystemParameters, ciphertexts_per_query: int = 1
) -> int:
    """Each device submits d * C_q leaf proofs (its contributions to its
    neighbors' aggregations) plus one aggregation proof."""
    return params.degree_bound * ciphertexts_per_query + 1


def verification_seconds_per_proof(
    ciphertext_mb: float = PAPER_CIPHERTEXT_MB,
) -> float:
    return VERIFY_SECONDS_BASE + ciphertext_mb * 1e6 * (
        VERIFY_SECONDS_PER_PUBLIC_BYTE
    )


def zkp_seconds_per_device(
    params: SystemParameters, ciphertexts_per_query: int = 1
) -> float:
    return proofs_per_device(params, ciphertexts_per_query) * (
        verification_seconds_per_proof()
    )


def cores_required(
    num_devices: int,
    params: SystemParameters,
    ciphertexts_per_query: int = 1,
    deadline_hours: float = DEADLINE_HOURS,
    spot_check_fraction: float = 1.0,
) -> dict[str, float]:
    """Figure 9(b): cores needed for ZKP verification and aggregation.

    ``spot_check_fraction`` models the §6.6 mitigation of verifying only
    a sample of the proofs.
    """
    if deadline_hours <= 0:
        raise ParameterError("deadline must be positive")
    if not 0 < spot_check_fraction <= 1:
        raise ParameterError("spot-check fraction must be in (0, 1]")
    budget_seconds = deadline_hours * 3600
    zkp_seconds = (
        num_devices
        * zkp_seconds_per_device(params, ciphertexts_per_query)
        * spot_check_fraction
    )
    aggregation_seconds = num_devices * AGGREGATION_SECONDS_PER_DEVICE
    return {
        "zkp_cores": zkp_seconds / budget_seconds,
        "aggregation_cores": aggregation_seconds / budget_seconds,
        "total_cores": (zkp_seconds + aggregation_seconds) / budget_seconds,
    }


def figure_9b_series(
    params: SystemParameters,
    populations: tuple[int, ...] = (10**6, 10**7, 10**8, 10**9),
) -> list[tuple[int, float, float]]:
    """(N, zkp cores, aggregation cores) rows."""
    rows = []
    for n in populations:
        cores = cores_required(n, params)
        rows.append((n, cores["zkp_cores"], cores["aggregation_cores"]))
    return rows
