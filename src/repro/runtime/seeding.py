"""Deterministic per-item seed derivation for parallel work.

Sequential code that shares one ``random.Random`` cannot be sharded:
the i-th item's randomness would depend on how many draws every earlier
item made, and on which worker ran it.  Instead, a stage draws a single
*master seed* from its existing RNG (keeping whole-pipeline replay
intact) and derives an independent seed per work item from the master
seed and the item's stable label.  Seeds depend only on (master, label),
never on worker count or execution order.
"""

from __future__ import annotations

import hashlib
import random

_DOMAIN = b"mycelium.runtime.seed.v1"


def derive_seed(master_seed: int, *labels: object) -> int:
    """A 64-bit seed bound to ``master_seed`` and a stable label path."""
    h = hashlib.sha256()
    h.update(_DOMAIN)
    h.update(master_seed.to_bytes(16, "big", signed=False))
    for label in labels:
        h.update(b"\x1f")
        h.update(str(label).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big")


def derive_rng(master_seed: int, *labels: object) -> random.Random:
    """A fresh ``random.Random`` seeded with :func:`derive_seed`."""
    return random.Random(derive_seed(master_seed, *labels))
