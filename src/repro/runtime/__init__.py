"""Parallel execution runtime and pluggable compute backends.

Two layers (docs/PERFORMANCE.md):

* :mod:`repro.runtime.fabric` — a deterministic worker-pool fabric.
  :class:`TaskFabric` shards independent work items (per-origin
  ciphertext generation, onion wrapping, proof verification, ciphertext
  summation) across a ``ProcessPoolExecutor`` while guaranteeing that
  results are *bit-identical at any worker count*: item order is stable,
  chunking is independent of the pool size, and any randomness a task
  needs is derived per item with :func:`repro.runtime.seeding.derive_rng`.
  ``workers=1`` (the default) runs everything in-process with zero
  pickling, which is what the test suite exercises.

* :mod:`repro.runtime.backends` — a pluggable compute-backend registry
  for the crypto hot paths.  The :class:`ComputeBackend` protocol covers
  the negacyclic-NTT/polynomial-ring kernel under every BGV operation;
  the reference implementation is the existing pure-Python
  :class:`repro.crypto.ntt.NttContext`, and
  :mod:`repro.runtime.numpy_backend` provides an exact vectorized NumPy
  kernel (auto-detected; NumPy stays an optional import).

:class:`repro.runtime.config.RuntimeConfig` selects both knobs and can
be set globally, per ``with`` block, or per query via
``MyceliumSystem.run_query(..., runtime=...)``.
"""

from repro.runtime.backends import (
    ComputeBackend,
    active_backend,
    available_backends,
    known_backends,
    resolve_backend,
    use_backend,
)
from repro.runtime.config import (
    RuntimeConfig,
    get_runtime_config,
    set_runtime_config,
    use_runtime,
)
from repro.runtime.fabric import TaskFabric
from repro.runtime.seeding import derive_rng, derive_seed

__all__ = [
    "ComputeBackend",
    "RuntimeConfig",
    "TaskFabric",
    "active_backend",
    "available_backends",
    "derive_rng",
    "derive_seed",
    "get_runtime_config",
    "known_backends",
    "resolve_backend",
    "set_runtime_config",
    "use_backend",
    "use_runtime",
]
