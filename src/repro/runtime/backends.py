"""Pluggable compute backends for the negacyclic polynomial kernel.

Every BGV operation bottoms out in ring arithmetic in
R_q = Z_q[x]/(x^n + 1); :class:`ComputeBackend` is the seam that lets
that kernel be swapped without touching protocol code.  Two backends
ship:

* ``pure`` — the reference implementation, delegating to the existing
  pure-Python :class:`repro.crypto.ntt.NttContext` (and the schoolbook
  fallback for non-NTT-friendly moduli).  Always available.
* ``numpy`` — an exact vectorized kernel
  (:mod:`repro.runtime.numpy_backend`).  Registered only when NumPy
  imports; NumPy remains an optional dependency.

Backends must be *bit-identical*: for the same inputs every backend
returns the same coefficients (enforced by
``tests/crypto/test_backend_equivalence.py``).  Selection is by name via
:class:`repro.runtime.config.RuntimeConfig` (``"auto"`` picks the
fastest available), the ``--backend`` CLI flag, or the
``MYCELIUM_BACKEND`` environment variable.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.crypto import ntt
from repro.errors import ParameterError
from repro.runtime.config import AUTO_BACKEND
from repro.telemetry import runtime as telemetry


@runtime_checkable
class ComputeBackend(Protocol):
    """The negacyclic-NTT/polyring kernel under every HE operation.

    Coefficient vectors are Python ``list[int]`` with entries in
    ``[0, q)``; implementations must return exactly what the reference
    backend returns for the same inputs.
    """

    name: str

    def forward_ntt(self, coeffs: Sequence[int], n: int, q: int) -> list[int]:
        """Negacyclic (psi-twisted) forward NTT; requires 2n | q - 1."""
        ...

    def inverse_ntt(self, values: Sequence[int], n: int, q: int) -> list[int]:
        """Inverse of :meth:`forward_ntt`."""
        ...

    def negacyclic_multiply(
        self, a: Sequence[int], b: Sequence[int], n: int, q: int
    ) -> list[int]:
        """Product in Z_q[x]/(x^n + 1) for *any* modulus q."""
        ...


class PureBackend:
    """Reference backend: the pure-Python NTT plus schoolbook fallback."""

    name = "pure"

    def forward_ntt(self, coeffs: Sequence[int], n: int, q: int) -> list[int]:
        return ntt.get_context(n, q).forward(list(coeffs))

    def inverse_ntt(self, values: Sequence[int], n: int, q: int) -> list[int]:
        return ntt.get_context(n, q).inverse(list(values))

    def negacyclic_multiply(
        self, a: Sequence[int], b: Sequence[int], n: int, q: int
    ) -> list[int]:
        if (q - 1) % (2 * n) == 0:
            return ntt.get_context(n, q).multiply(list(a), list(b))
        return ntt.negacyclic_multiply_schoolbook(list(a), list(b), q)


_factories: dict[str, Callable[[], ComputeBackend]] = {}
_instances: dict[str, ComputeBackend] = {}


def register_backend(name: str, factory: Callable[[], ComputeBackend]) -> None:
    """Add a backend factory; the instance is created lazily, once."""
    _factories[name] = factory


def _numpy_factory() -> ComputeBackend:
    from repro.runtime.numpy_backend import NumpyBackend  # optional dep

    return NumpyBackend()


register_backend("pure", PureBackend)
register_backend("numpy", _numpy_factory)


def _instantiate(name: str) -> ComputeBackend:
    if name not in _instances:
        if name not in _factories:
            raise ParameterError(
                f"unknown compute backend {name!r}; known: {sorted(_factories)}"
            )
        _instances[name] = _factories[name]()
    return _instances[name]


def known_backends() -> list[str]:
    """Every acceptable backend *name*: registered factories plus
    ``"auto"``.  Unlike :func:`available_backends` this does not try to
    instantiate anything — it is the validation set for configuration
    (``MYCELIUM_BACKEND``, ``--backend``)."""
    return sorted(_factories) + [AUTO_BACKEND]


def available_backends() -> list[str]:
    """Names of backends that actually instantiate on this machine."""
    names = []
    for name in _factories:
        try:
            _instantiate(name)
        except ImportError:
            continue
        names.append(name)
    return names


def resolve_backend(name: str = AUTO_BACKEND) -> ComputeBackend:
    """Instantiate a backend by name; ``"auto"`` prefers the NumPy kernel."""
    if name == AUTO_BACKEND:
        try:
            return _instantiate("numpy")
        except ImportError:
            return _instantiate("pure")
    try:
        return _instantiate(name)
    except ImportError as exc:
        raise ParameterError(
            f"compute backend {name!r} is not available here: {exc}"
        ) from exc


_active: ComputeBackend = _instantiate("pure")


def active_backend() -> ComputeBackend:
    """The backend currently serving ring multiplications."""
    return _active


def activate(name: str) -> ComputeBackend:
    """Make ``name`` (or ``"auto"``) the process-wide active backend."""
    global _active
    _active = resolve_backend(name)
    return _active


@contextlib.contextmanager
def use_backend(name: str):
    """Scope the active backend to a ``with`` block."""
    global _active
    previous = _active
    _active = resolve_backend(name)
    try:
        yield _active
    finally:
        _active = previous


def ring_multiply(a: Sequence[int], b: Sequence[int], n: int, q: int) -> list[int]:
    """Dispatch one negacyclic product to the active backend.

    This is the single call site :mod:`repro.crypto.polyring` uses, so
    the ``runtime.backend.multiplies`` counter sees every ring
    multiplication the parent process performs.
    """
    telemetry.count("runtime.backend.multiplies")
    return _active.negacyclic_multiply(a, b, n, q)
