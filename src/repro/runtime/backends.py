"""Pluggable compute backends for the negacyclic polynomial kernel.

Every BGV operation bottoms out in ring arithmetic in
R_q = Z_q[x]/(x^n + 1); :class:`ComputeBackend` is the seam that lets
that kernel be swapped without touching protocol code.  Two backends
ship:

* ``pure`` — the reference implementation, delegating to the existing
  pure-Python :class:`repro.crypto.ntt.NttContext` (and the schoolbook
  fallback for non-NTT-friendly moduli).  Always available.
* ``numpy`` — an exact vectorized kernel
  (:mod:`repro.runtime.numpy_backend`).  Registered only when NumPy
  imports; NumPy remains an optional dependency.

Backends must be *bit-identical*: for the same inputs every backend
returns the same coefficients (enforced by
``tests/crypto/test_backend_equivalence.py``).  Selection is by name via
:class:`repro.runtime.config.RuntimeConfig` (``"auto"`` picks the
fastest available), the ``--backend`` CLI flag, or the
``MYCELIUM_BACKEND`` environment variable.
"""

from __future__ import annotations

import contextlib
import threading
from collections import OrderedDict
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.crypto import ntt
from repro.errors import ParameterError
from repro.runtime.config import AUTO_BACKEND
from repro.telemetry import runtime as telemetry

#: Upper bound (log2) on one relinearization digit the fused fold
#: accepts.  Every shipped profile decomposes in base 2^32;
#: :func:`repro.crypto.bgv.relinearize` falls back to the sequential
#: per-piece path (bit-identical) for wider bases, which lets backends
#: size fold-specific tables — e.g. the NumPy kernel's narrow RNS
#: basis — against this bound instead of the full q×q product.
MAX_FOLD_DIGIT_BITS = 64


@runtime_checkable
class ComputeBackend(Protocol):
    """The negacyclic-NTT/polyring kernel under every HE operation.

    Coefficient vectors are Python ``list[int]`` with entries in
    ``[0, q)``; implementations must return exactly what the reference
    backend returns for the same inputs.
    """

    name: str

    def forward_ntt(self, coeffs: Sequence[int], n: int, q: int) -> list[int]:
        """Negacyclic (psi-twisted) forward NTT; requires 2n | q - 1."""
        ...

    def inverse_ntt(self, values: Sequence[int], n: int, q: int) -> list[int]:
        """Inverse of :meth:`forward_ntt`."""
        ...

    def negacyclic_multiply(
        self, a: Sequence[int], b: Sequence[int], n: int, q: int
    ) -> list[int]:
        """Product in Z_q[x]/(x^n + 1) for *any* modulus q."""
        ...


class PureBackend:
    """Reference backend: the pure-Python NTT plus schoolbook fallback."""

    name = "pure"

    def forward_ntt(self, coeffs: Sequence[int], n: int, q: int) -> list[int]:
        return ntt.get_context(n, q).forward(list(coeffs))

    def inverse_ntt(self, values: Sequence[int], n: int, q: int) -> list[int]:
        return ntt.get_context(n, q).inverse(list(values))

    def negacyclic_multiply(
        self, a: Sequence[int], b: Sequence[int], n: int, q: int
    ) -> list[int]:
        if (q - 1) % (2 * n) == 0:
            return ntt.get_context(n, q).multiply(list(a), list(b))
        return ntt.negacyclic_multiply_schoolbook(list(a), list(b), q)

    # -- evaluation-domain fold (prepared multiply-accumulate) ------------

    def supports_fold(self, n: int, q: int) -> bool:
        return (q - 1) % (2 * n) == 0

    def prepare_operand(self, coeffs: Sequence[int], n: int, q: int):
        """Forward-transform a fixed operand for repeated products."""
        return ntt.get_context(n, q).forward(list(coeffs))

    def fold_multiply_accumulate(
        self,
        prepared_pairs: Sequence[tuple],
        digit_polys: Sequence[Sequence[int]],
        n: int,
        q: int,
    ) -> tuple[list[int], list[int]]:
        """Compute ``(sum_i b_i*d_i, sum_i a_i*d_i)`` in one pass.

        ``prepared_pairs[i]`` is ``(prepare_operand(b_i), prepare_operand(a_i))``
        and ``digit_polys[i]`` the coefficients of ``d_i``.  Each digit
        poly is transformed once, multiply-accumulated pointwise against
        both prepared key halves, and a single inverse per accumulator
        closes the fold — the NTT is linear mod q, so the result is
        bit-identical to summing the individual products.
        """
        ctx = ntt.get_context(n, q)
        acc0 = [0] * n
        acc1 = [0] * n
        for (fb, fa), digits in zip(prepared_pairs, digit_polys):
            fd = ctx.forward(list(digits))
            for j in range(n):
                d = fd[j]
                acc0[j] = (acc0[j] + fb[j] * d) % q
                acc1[j] = (acc1[j] + fa[j] * d) % q
        return ctx.inverse(acc0), ctx.inverse(acc1)


_factories: dict[str, Callable[[], ComputeBackend]] = {}
_instances: dict[str, ComputeBackend] = {}


def register_backend(name: str, factory: Callable[[], ComputeBackend]) -> None:
    """Add a backend factory; the instance is created lazily, once."""
    _factories[name] = factory


def _numpy_factory() -> ComputeBackend:
    from repro.runtime.numpy_backend import NumpyBackend  # optional dep

    return NumpyBackend()


register_backend("pure", PureBackend)
register_backend("numpy", _numpy_factory)


def _instantiate(name: str) -> ComputeBackend:
    if name not in _instances:
        if name not in _factories:
            raise ParameterError(
                f"unknown compute backend {name!r}; known: {sorted(_factories)}"
            )
        _instances[name] = _factories[name]()
    return _instances[name]


def known_backends() -> list[str]:
    """Every acceptable backend *name*: registered factories plus
    ``"auto"``.  Unlike :func:`available_backends` this does not try to
    instantiate anything — it is the validation set for configuration
    (``MYCELIUM_BACKEND``, ``--backend``)."""
    return sorted(_factories) + [AUTO_BACKEND]


def available_backends() -> list[str]:
    """Names of backends that actually instantiate on this machine."""
    names = []
    for name in _factories:
        try:
            _instantiate(name)
        except ImportError:
            continue
        names.append(name)
    return names


def resolve_backend(name: str = AUTO_BACKEND) -> ComputeBackend:
    """Instantiate a backend by name; ``"auto"`` prefers the NumPy kernel."""
    if name == AUTO_BACKEND:
        try:
            return _instantiate("numpy")
        except ImportError:
            return _instantiate("pure")
    try:
        return _instantiate(name)
    except ImportError as exc:
        raise ParameterError(
            f"compute backend {name!r} is not available here: {exc}"
        ) from exc


_active: ComputeBackend = _instantiate("pure")


def active_backend() -> ComputeBackend:
    """The backend currently serving ring multiplications."""
    return _active


def activate(name: str) -> ComputeBackend:
    """Make ``name`` (or ``"auto"``) the process-wide active backend."""
    global _active
    _active = resolve_backend(name)
    return _active


@contextlib.contextmanager
def use_backend(name: str):
    """Scope the active backend to a ``with`` block."""
    global _active
    previous = _active
    _active = resolve_backend(name)
    try:
        yield _active
    finally:
        _active = previous


#: Entries kept in the content-keyed product cache.  Keys hold operand
#: *references* (tuples of the caller's int objects), so an entry costs
#: little beyond the cached result coefficients; 128 entries bounds the
#: worst case to tens of MB even at the SMALL ring.
_MULTIPLY_CACHE_SIZE = 128

_multiply_cache: OrderedDict[tuple, tuple[int, ...]] = OrderedDict()
_multiply_lock = threading.Lock()


def clear_multiply_cache() -> None:
    """Drop every memoized ring product (benchmark/test isolation)."""
    with _multiply_lock:
        _multiply_cache.clear()


def ring_multiply(a: Sequence[int], b: Sequence[int], n: int, q: int) -> list[int]:
    """Dispatch one negacyclic product to the active backend.

    This is the single call site :mod:`repro.crypto.polyring` uses, so
    the ``runtime.backend.multiplies`` counter sees every ring
    multiplication the parent process performs.

    Products are memoized by operand content (canonicalized for
    commutativity, keyed per backend so the equivalence tests still
    exercise each kernel).  The online phase repeats many exact
    products — the ZK aggregate proof replays the origin compute — and
    a hit returns the cached coefficients without touching the backend.
    """
    telemetry.count("runtime.backend.multiplies")
    ka, kb = tuple(a), tuple(b)
    if kb < ka:
        ka, kb = kb, ka  # the ring product commutes
    key = (_active.name, n, q, ka, kb)
    with _multiply_lock:
        hit = _multiply_cache.get(key)
        if hit is not None:
            _multiply_cache.move_to_end(key)
    if hit is not None:
        telemetry.count("runtime.backend.multiply_cache_hits")
        return list(hit)
    result = _active.negacyclic_multiply(a, b, n, q)
    with _multiply_lock:
        _multiply_cache[key] = tuple(result)
        _multiply_cache.move_to_end(key)
        while len(_multiply_cache) > _MULTIPLY_CACHE_SIZE:
            _multiply_cache.popitem(last=False)
    return result


def supports_fold(n: int, q: int) -> bool:
    """Whether the active backend can run the prepared evaluation-domain
    fold for this ring (all shipped backends can when q is NTT-friendly)."""
    probe = getattr(_active, "supports_fold", None)
    return bool(probe is not None and probe(n, q))


def prepare_operand(coeffs: Sequence[int], n: int, q: int):
    """Forward-transform a fixed operand on the active backend.

    The returned value is backend-specific and only meaningful when fed
    back to :func:`fold_multiply_accumulate` on the *same* backend.
    """
    return _active.prepare_operand(coeffs, n, q)


def fold_multiply_accumulate(
    prepared_pairs: Sequence[tuple],
    digit_polys: Sequence[Sequence[int]],
    n: int,
    q: int,
) -> tuple[list[int], list[int]]:
    """Dispatch one prepared multiply-accumulate fold to the active backend.

    Counts ``runtime.backend.fold_products`` — the products a sequential
    relinearization would have paid as full ring multiplications.
    """
    telemetry.count("runtime.backend.fold_products", 2 * len(digit_polys))
    return _active.fold_multiply_accumulate(prepared_pairs, digit_polys, n, q)
