"""Exact vectorized NumPy kernel for the negacyclic polynomial ring.

Bit-identical to the pure-Python reference backend, at NumPy speed.
Two regimes, chosen per ``(n, q)`` and cached as a :class:`_Plan`:

* **direct** — ``q`` is an NTT-friendly prime below 2^31, so every
  butterfly product ``u * s`` stays under 2^62 and the whole
  Longa-Naehrig transform runs on ``int64`` arrays with ``%``
  reductions.  Used for coefficient moduli small enough to vectorize
  in one shot.

* **rns** — ``q`` is too large for ``int64`` (the paper's 550-bit
  modulus, the test profiles' 512/900-bit ones) or not NTT-friendly at
  all (the plaintext modulus ``t``).  The product is computed *exactly*
  over a residue number system: a basis of 28-bit NTT-friendly primes
  ``p_k ≡ 1 (mod 2n)`` whose product ``M`` exceeds ``2·n·q²`` (the
  worst-case magnitude of a centered negacyclic product), one batched
  negacyclic NTT per prime, then CRT reconstruction with centering and
  a final reduction mod ``q``.  No approximation anywhere: the result
  equals the schoolbook product for every modulus.

The RNS transforms use the Harvey/Shoup lazy-butterfly scheme to avoid
integer division entirely: twiddles carry a precomputed companion
``s' = floor(s·2^32 / p)`` so each modular product is two multiplies, a
shift, and a subtract, and coefficients ride in ``[0, 4p)`` between
stages.  That is why basis primes sit below 2^28 (``4p ≤ 2^30`` keeps
``x·s' < 2^62`` inside ``int64``).

The exact base conversions are expressed as matrix products so they hit
BLAS: operands are split into 14/16-bit digits whose dot products stay
below 2^53, making ``float64`` accumulation exact; results are lifted
back to ``int64`` and carry-propagated.

This module imports NumPy at the top level; the backend registry treats
the resulting ``ImportError`` as "backend unavailable".
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.crypto import ntt
from repro.crypto.modmath import is_prime
from repro.errors import ParameterError
from repro.runtime.backends import MAX_FOLD_DIGIT_BITS

#: Largest modulus the direct int64 transform can serve: butterfly
#: products must stay below 2^63.
MAX_DIRECT_MODULUS = 1 << 31

#: Exclusive upper bound for RNS basis primes: the lazy butterflies keep
#: coefficients in [0, 4p) and Shoup products x·s' below 2^62.
MAX_RNS_PRIME = 1 << 28

_PLAN_CACHE_SIZE = 16

#: Log2 of the maximum number of digit polynomials accumulated per fold.
_FOLD_ACCUM_BITS = 10


def _is_pow2(n: int) -> bool:
    return n >= 2 and (n & (n - 1)) == 0


def _rns_primes(n: int, q: int, need_bits: int) -> list[int]:
    """28-bit primes ``p ≡ 1 (mod 2n)`` with product > ``2^need_bits``."""
    two_n = 2 * n
    primes: list[int] = []
    got_bits = 0
    c = (MAX_RNS_PRIME - 2) // two_n
    while got_bits < need_bits:
        if c <= 0:
            raise ParameterError(
                f"cannot assemble an RNS basis for n={n}, q~2^{q.bit_length()}"
            )
        p = c * two_n + 1
        if p != q and is_prime(p):
            primes.append(p)
            got_bits += p.bit_length() - 1  # product >= 2^got_bits
        c -= 1
    return primes


class _Plan:
    """Precomputed tables for one ``(n, q)`` pair.

    ``product_bits`` sizes the RNS basis: the product of basis primes
    must exceed ``2^product_bits``.  The default covers the worst-case
    centered negacyclic product of two full-size operands
    (``2·n·q²``); callers whose operands are provably smaller (the
    relinearization fold's digit polynomials) may pass a tighter bound
    and get a proportionally smaller — and faster — basis.
    """

    def __init__(self, n: int, q: int, product_bits: int | None = None):
        self.n = n
        self.q = q
        self.direct = (
            q < MAX_DIRECT_MODULUS and (q - 1) % (2 * n) == 0 and is_prime(q)
        )
        general_bits = 2 * q.bit_length() + n.bit_length() + 2
        need_bits = (
            general_bits
            if product_bits is None
            else min(product_bits, general_bits)
        )
        primes = [q] if self.direct else _rns_primes(n, q, need_bits)
        self.primes = np.asarray(primes, dtype=np.int64)
        k = len(primes)
        self.p_col = self.primes.reshape(k, 1, 1)
        self.p_flat = self.primes.reshape(k, 1)
        psi_rev = np.empty((k, n), dtype=np.int64)
        psi_inv_rev = np.empty((k, n), dtype=np.int64)
        n_inv = np.empty((k, 1), dtype=np.int64)
        for i, p in enumerate(primes):
            # Build tables directly (not via get_context) so RNS basis
            # primes never evict real ring moduli from the shared cache.
            ctx = ntt.NttContext(n, p)
            psi_rev[i] = ctx._psi_rev
            psi_inv_rev[i] = ctx._psi_inv_rev
            n_inv[i, 0] = ctx.n_inv
        self.psi_rev = psi_rev
        self.psi_inv_rev = psi_inv_rev
        self.n_inv = n_inv
        if not self.direct:
            # Shoup companions: floor(s << 32 / p), exact in int64
            # because s < 2^28 keeps s << 32 below 2^60.
            self.psi_rev_shoup = (psi_rev << 32) // self.p_flat
            self.psi_inv_rev_shoup = (psi_inv_rev << 32) // self.p_flat
            self.n_inv_shoup = (n_inv << 32) // self.p_flat[:, :1]
            # Base-2^16 digits of the inputs convert to residues via one
            # matmul with 2^(16j) mod p_k.
            self.words = (q.bit_length() + 15) // 16
            self.pow16 = np.asarray(
                [
                    [pow(2, 16 * (self.words - 1 - j), p) for p in primes]
                    for j in range(self.words)
                ],
                dtype=np.float64,
            )
            m_total = 1
            for p in primes:
                m_total *= p
            self.modulus = m_total
            self.half_modulus = m_total >> 1
            self.limbs = (m_total.bit_length() + 40) // 16 + 1
            crt = np.empty((k, self.limbs), dtype=np.float64)
            for i, p in enumerate(primes):
                m_k = m_total // p
                c_k = m_k * pow(m_k % p, -1, p)
                crt[i] = [(c_k >> (16 * j)) & 0xFFFF for j in range(self.limbs)]
            self.crt_limbs = crt

    # -- batched transforms (one row per RNS prime) -----------------------

    def forward(self, a: np.ndarray) -> np.ndarray:
        """Cooley-Tukey negacyclic NTT on every row of ``a``.

        Accepts ``(k, n)`` or a batch ``(..., k, n)``; leading axes ride
        through the butterfly stages in one set of vectorized ops, which
        is what makes the fused relinearization fold cheap (one batched
        transform for all digit polynomials instead of one call each).
        """
        return self._forward_direct(a) if self.direct else self._forward_lazy(a)

    def inverse(self, a: np.ndarray) -> np.ndarray:
        """Gentleman-Sande inverse of :meth:`forward`, ``(..., k, n)``."""
        return self._inverse_direct(a) if self.direct else self._inverse_lazy(a)

    def _forward_direct(self, a: np.ndarray) -> np.ndarray:
        *lead, k, n = a.shape
        p = self.p_col
        t, m = n, 1
        while m < n:
            t //= 2
            a = a.reshape(*lead, k, m, 2, t)
            s = self.psi_rev[:, m : 2 * m].reshape(k, m, 1)
            u = a[..., 0, :]
            v = (a[..., 1, :] * s) % p
            lo = (u + v) % p
            hi = (u - v) % p
            a[..., 0, :] = lo
            a[..., 1, :] = hi
            a = a.reshape(*lead, k, n)
            m *= 2
        return a

    def _inverse_direct(self, a: np.ndarray) -> np.ndarray:
        *lead, k, n = a.shape
        p = self.p_col
        t, m = 1, n
        while m > 1:
            h = m // 2
            a = a.reshape(*lead, k, h, 2, t)
            s = self.psi_inv_rev[:, h : 2 * h].reshape(k, h, 1)
            u = a[..., 0, :]
            v = a[..., 1, :]
            lo = (u + v) % p
            hi = ((u - v) * s) % p
            a[..., 0, :] = lo
            a[..., 1, :] = hi
            a = a.reshape(*lead, k, n)
            t *= 2
            m = h
        return (a * self.n_inv) % self.p_flat

    def _forward_lazy(self, a: np.ndarray) -> np.ndarray:
        """Harvey CT butterflies: inputs < p, invariant < 4p, output < p."""
        *lead, k, n = a.shape
        p = self.p_col
        two_p = 2 * p
        t, m = n, 1
        while m < n:
            t //= 2
            a = a.reshape(*lead, k, m, 2, t)
            s = self.psi_rev[:, m : 2 * m].reshape(k, m, 1)
            s_sh = self.psi_rev_shoup[:, m : 2 * m].reshape(k, m, 1)
            u = a[..., 0, :]
            u = u - two_p * (u >= two_p)  # now < 2p
            x = a[..., 1, :]
            v = x * s - ((x * s_sh) >> 32) * p  # Shoup: < 2p
            a[..., 0, :] = u + v  # < 4p
            a[..., 1, :] = u - v + two_p  # < 4p
            a = a.reshape(*lead, k, n)
            m *= 2
        p2 = 2 * self.p_flat
        a = a - p2 * (a >= p2)
        return a - self.p_flat * (a >= self.p_flat)

    def _inverse_lazy(self, a: np.ndarray) -> np.ndarray:
        """Harvey GS butterflies: inputs < p, invariant < 2p, output < p."""
        *lead, k, n = a.shape
        p = self.p_col
        two_p = 2 * p
        t, m = 1, n
        while m > 1:
            h = m // 2
            a = a.reshape(*lead, k, h, 2, t)
            s = self.psi_inv_rev[:, h : 2 * h].reshape(k, h, 1)
            s_sh = self.psi_inv_rev_shoup[:, h : 2 * h].reshape(k, h, 1)
            u = a[..., 0, :]
            v = a[..., 1, :]
            lo = u + v
            lo = lo - two_p * (lo >= two_p)  # < 2p
            w = u - v + two_p  # < 4p, still < 2^30
            hi = w * s - ((w * s_sh) >> 32) * p  # Shoup: < 2p
            a[..., 0, :] = lo
            a[..., 1, :] = hi
            a = a.reshape(*lead, k, n)
            t *= 2
            m = h
        ninv = self.n_inv
        out = a * ninv - ((a * self.n_inv_shoup) >> 32) * self.p_flat  # < 2p
        return out - self.p_flat * (out >= self.p_flat)

    # -- residue conversion / CRT reconstruction --------------------------

    def to_residues(self, coeffs: Sequence[int]) -> np.ndarray:
        """Python ints in [0, q) -> int64 residue matrix (k, n)."""
        n = self.n
        if self.direct:
            q = self.q
            return np.asarray(
                [c % q for c in coeffs], dtype=np.int64
            ).reshape(1, n)
        width = 2 * self.words
        buf = b"".join((c % self.q).to_bytes(width, "big") for c in coeffs)
        # Base-2^16 digits (n, words); digit · (2^16j mod p) < 2^44 and
        # sums over <= 64 words stay < 2^50: float64 matmul is exact.
        digits = np.frombuffer(buf, dtype=">u2").reshape(n, self.words)
        res = digits.astype(np.float64) @ self.pow16  # (n, k), exact
        return np.ascontiguousarray(
            (res.astype(np.int64) % self.primes).T
        )

    def from_residues(self, res: np.ndarray) -> list[int]:
        """Residue matrix (k, n) -> centered exact product reduced mod q."""
        if self.direct:
            return [int(x) for x in res[0]]
        r = res.T.astype(np.float64)  # residues < 2^28
        # Split residues into 14-bit halves so every float64 dot product
        # (digit < 2^14 times limb < 2^16, <= 2^9 primes) stays < 2^39,
        # exactly representable; recombine in int64 (< 2^53).
        r_lo = np.floor(r % 16384.0)
        r_hi = np.floor(r / 16384.0)
        limbs = (r_lo @ self.crt_limbs).astype(np.int64) + (
            (r_hi @ self.crt_limbs).astype(np.int64) << 14
        )
        while (limbs >> 16).any():
            carry = limbs >> 16
            limbs &= 0xFFFF
            limbs[:, 1:] += carry[:, :-1]
        row_bytes = 2 * self.limbs
        packed = limbs.astype("<u2").tobytes()
        out = []
        m_total, half, q = self.modulus, self.half_modulus, self.q
        for i in range(self.n):
            x = int.from_bytes(packed[i * row_bytes : (i + 1) * row_bytes], "little")
            x %= m_total
            if x > half:
                x -= m_total
            out.append(x % q)
        return out


class NumpyBackend:
    """ComputeBackend backed by the vectorized kernels above."""

    name = "numpy"

    def __init__(self) -> None:
        self._plans: OrderedDict[tuple, _Plan] = OrderedDict()
        self._lock = threading.Lock()

    def _plan_for(self, key: tuple, n: int, q: int, product_bits=None) -> _Plan:
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                return plan
        # Built outside the lock; tables are read-only.
        plan = _Plan(n, q, product_bits=product_bits)
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > _PLAN_CACHE_SIZE:
                self._plans.popitem(last=False)
        return plan

    def _plan(self, n: int, q: int) -> _Plan:
        return self._plan_for((n, q), n, q)

    def _fold_plan(self, n: int, q: int) -> _Plan:
        """Tables for the relinearization fold: one operand is a digit
        polynomial below ``2^MAX_FOLD_DIGIT_BITS``, so the RNS basis only
        needs to cover ``2·n·q·2^64`` times the accumulation width —
        roughly half the primes (and half the transform time) of the
        general q×q basis."""
        bits = (
            q.bit_length()
            + MAX_FOLD_DIGIT_BITS
            + n.bit_length()
            + _FOLD_ACCUM_BITS
            + 2
        )
        return self._plan_for(("fold", n, q), n, q, product_bits=bits)

    def _directable(self, n: int, q: int) -> bool:
        return (
            q < MAX_DIRECT_MODULUS
            and _is_pow2(n)
            and (q - 1) % (2 * n) == 0
            and is_prime(q)
        )

    def forward_ntt(self, coeffs: Sequence[int], n: int, q: int) -> list[int]:
        if not self._directable(n, q):
            # Transforms mod a large q cannot be vectorized in int64;
            # fall back to the reference tables (bit-identical anyway).
            return ntt.get_context(n, q).forward(list(coeffs))
        plan = self._plan(n, q)
        return [int(x) for x in plan.forward(plan.to_residues(coeffs))[0]]

    def inverse_ntt(self, values: Sequence[int], n: int, q: int) -> list[int]:
        if not self._directable(n, q):
            return ntt.get_context(n, q).inverse(list(values))
        plan = self._plan(n, q)
        return [int(x) for x in plan.inverse(plan.to_residues(values))[0]]

    def negacyclic_multiply(
        self, a: Sequence[int], b: Sequence[int], n: int, q: int
    ) -> list[int]:
        if not _is_pow2(n):
            return ntt.negacyclic_multiply_schoolbook(list(a), list(b), q)
        plan = self._plan(n, q)
        fa = plan.forward(plan.to_residues(a))
        fb = plan.forward(plan.to_residues(b))
        prod = (fa * fb) % plan.p_flat
        return plan.from_residues(plan.inverse(prod))

    # -- evaluation-domain fold (prepared multiply-accumulate) ------------

    def supports_fold(self, n: int, q: int) -> bool:
        return _is_pow2(n)

    def prepare_operand(self, coeffs: Sequence[int], n: int, q: int) -> np.ndarray:
        plan = self._fold_plan(n, q)
        return plan.forward(plan.to_residues(coeffs))

    def fold_multiply_accumulate(
        self,
        prepared_pairs: Sequence[tuple],
        digit_polys: Sequence[Sequence[int]],
        n: int,
        q: int,
    ) -> tuple[list[int], list[int]]:
        """One transform per digit poly on the *narrow fold basis*,
        pointwise accumulate against the prepared key halves, one
        inverse + CRT reconstruction per output.

        Exactness: residues stay below 2^28, so each pointwise product
        fits int64 (< 2^56) and the per-step ``% p`` keeps accumulators
        below p.  The fold basis bound ``M > 2·n·q·2^(64+10)`` exceeds
        the true magnitude of the accumulated sum (each term is a digit
        below 2^64 times a key coefficient below q, convolved over n
        positions, summed over at most 2^10 pieces), so the centered CRT
        lift of the sum is exact and the result matches the sequential
        per-piece products bit for bit.
        """
        plan = self._fold_plan(n, q)
        shape = plan.p_flat.shape[0], n
        acc0 = np.zeros(shape, dtype=np.int64)
        acc1 = np.zeros(shape, dtype=np.int64)
        for (fb, fa), digits in zip(prepared_pairs, digit_polys):
            fd = plan.forward(plan.to_residues(digits))
            acc0 = (acc0 + fb * fd) % plan.p_flat
            acc1 = (acc1 + fa * fd) % plan.p_flat
        return (
            plan.from_residues(plan.inverse(acc0)),
            plan.from_residues(plan.inverse(acc1)),
        )
