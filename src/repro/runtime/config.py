"""Runtime configuration: workers, compute backend, and shard layout.

A :class:`RuntimeConfig` is a small immutable value that the query
pipeline threads through to every parallelizable stage.  The process
holds one global default (``workers=1``, ``backend="auto"``,
``shards=1``) which can be replaced with :func:`set_runtime_config`,
scoped with :func:`use_runtime`, or overridden per call site.

Environment overrides (read once per :func:`from_env` call, used by the
CLI and the benchmark harness):

* ``MYCELIUM_WORKERS`` — integer worker count.
* ``MYCELIUM_BACKEND`` — backend name (``pure``, ``numpy``, ``auto``).
* ``MYCELIUM_SHARDS`` — integer aggregator shard count.

Garbage values raise a typed :class:`~repro.errors.ParameterError`
naming the offending variable — never a silent fallback: a run that
*thinks* it is sharded (or on the NumPy backend) but silently is not
would invalidate every measurement made with it.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, replace

from repro.errors import ParameterError

#: Backend name meaning "fastest available": resolves to the vectorized
#: NumPy kernel when NumPy imports, else the pure-Python reference.
AUTO_BACKEND = "auto"

WORKERS_ENV = "MYCELIUM_WORKERS"
BACKEND_ENV = "MYCELIUM_BACKEND"
SHARDS_ENV = "MYCELIUM_SHARDS"


def _env_int(name: str, raw: str, minimum: int = 1) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise ParameterError(
            f"{name} must be an integer, got {raw!r}"
        ) from None
    if value < minimum:
        raise ParameterError(f"{name} must be >= {minimum}, got {value}")
    return value


def _env_backend(name: str, raw: str) -> str:
    # Imported lazily: backends.py imports AUTO_BACKEND from this module.
    from repro.runtime import backends

    known = backends.known_backends()
    if raw not in known:
        raise ParameterError(
            f"{name} must be one of {', '.join(known)}; got {raw!r}"
        )
    return raw


@dataclass(frozen=True)
class RuntimeConfig:
    """How hot-path work is executed.

    ``workers``
        Process-pool size for :class:`repro.runtime.fabric.TaskFabric`.
        ``1`` (the default) runs every task in-process; results are
        bit-identical at any value.
    ``backend``
        Compute-backend name for the negacyclic-NTT/polyring kernel, or
        ``"auto"`` to pick the fastest one available.
    ``chunk_size``
        Items per dispatched chunk.  Fixed independently of ``workers``
        so chunk boundaries (and therefore any per-chunk derived
        randomness) never depend on the pool size.
    ``shards``
        Aggregator shard count for the hierarchical reduction
        (:mod:`repro.sharding`).  ``1`` runs the flat single-aggregator
        path; results are bit-identical at any value (docs/SHARDING.md).
    """

    workers: int = 1
    backend: str = AUTO_BACKEND
    chunk_size: int = 8
    shards: int = 1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ParameterError("RuntimeConfig.workers must be >= 1")
        if self.chunk_size < 1:
            raise ParameterError("RuntimeConfig.chunk_size must be >= 1")
        if self.shards < 1:
            raise ParameterError("RuntimeConfig.shards must be >= 1")

    @classmethod
    def from_env(cls, base: RuntimeConfig | None = None) -> RuntimeConfig:
        """``base`` (or the default) with environment overrides applied.

        Raises :class:`~repro.errors.ParameterError` for values that do
        not parse or name an unknown backend.
        """
        cfg = base if base is not None else cls()
        workers = os.environ.get(WORKERS_ENV)
        if workers:
            cfg = replace(cfg, workers=_env_int(WORKERS_ENV, workers))
        backend = os.environ.get(BACKEND_ENV)
        if backend:
            cfg = replace(cfg, backend=_env_backend(BACKEND_ENV, backend))
        shards = os.environ.get(SHARDS_ENV)
        if shards:
            cfg = replace(cfg, shards=_env_int(SHARDS_ENV, shards))
        return cfg


_global_config = RuntimeConfig()


def get_runtime_config() -> RuntimeConfig:
    """The process-wide default runtime configuration."""
    return _global_config


def set_runtime_config(config: RuntimeConfig) -> RuntimeConfig:
    """Replace the process-wide default; returns the previous one."""
    global _global_config
    previous = _global_config
    _global_config = config
    return previous


@contextlib.contextmanager
def use_runtime(config: RuntimeConfig):
    """Scope the process-wide default to a ``with`` block."""
    previous = set_runtime_config(config)
    try:
        yield config
    finally:
        set_runtime_config(previous)
