"""Runtime configuration: worker count and compute-backend selection.

A :class:`RuntimeConfig` is a small immutable value that the query
pipeline threads through to every parallelizable stage.  The process
holds one global default (``workers=1``, ``backend="auto"``) which can
be replaced with :func:`set_runtime_config`, scoped with
:func:`use_runtime`, or overridden per call site.

Environment overrides (read once per :func:`from_env` call, used by the
CLI and the benchmark harness):

* ``MYCELIUM_WORKERS`` — integer worker count.
* ``MYCELIUM_BACKEND`` — backend name (``pure``, ``numpy``, ``auto``).
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, replace

from repro.errors import ParameterError

#: Backend name meaning "fastest available": resolves to the vectorized
#: NumPy kernel when NumPy imports, else the pure-Python reference.
AUTO_BACKEND = "auto"

WORKERS_ENV = "MYCELIUM_WORKERS"
BACKEND_ENV = "MYCELIUM_BACKEND"


@dataclass(frozen=True)
class RuntimeConfig:
    """How hot-path work is executed.

    ``workers``
        Process-pool size for :class:`repro.runtime.fabric.TaskFabric`.
        ``1`` (the default) runs every task in-process; results are
        bit-identical at any value.
    ``backend``
        Compute-backend name for the negacyclic-NTT/polyring kernel, or
        ``"auto"`` to pick the fastest one available.
    ``chunk_size``
        Items per dispatched chunk.  Fixed independently of ``workers``
        so chunk boundaries (and therefore any per-chunk derived
        randomness) never depend on the pool size.
    """

    workers: int = 1
    backend: str = AUTO_BACKEND
    chunk_size: int = 8

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ParameterError("RuntimeConfig.workers must be >= 1")
        if self.chunk_size < 1:
            raise ParameterError("RuntimeConfig.chunk_size must be >= 1")

    @classmethod
    def from_env(cls, base: RuntimeConfig | None = None) -> RuntimeConfig:
        """``base`` (or the default) with environment overrides applied."""
        cfg = base if base is not None else cls()
        workers = os.environ.get(WORKERS_ENV)
        if workers:
            cfg = replace(cfg, workers=int(workers))
        backend = os.environ.get(BACKEND_ENV)
        if backend:
            cfg = replace(cfg, backend=backend)
        return cfg


_global_config = RuntimeConfig()


def get_runtime_config() -> RuntimeConfig:
    """The process-wide default runtime configuration."""
    return _global_config


def set_runtime_config(config: RuntimeConfig) -> RuntimeConfig:
    """Replace the process-wide default; returns the previous one."""
    global _global_config
    previous = _global_config
    _global_config = config
    return previous


@contextlib.contextmanager
def use_runtime(config: RuntimeConfig):
    """Scope the process-wide default to a ``with`` block."""
    previous = set_runtime_config(config)
    try:
        yield config
    finally:
        set_runtime_config(previous)
