"""Deterministic worker-pool fabric for embarrassingly parallel stages.

:class:`TaskFabric` maps a module-level function over a list of work
items, either in-process (``workers=1``, the default) or across a
``ProcessPoolExecutor``.  Determinism contract, at any worker count:

* **Stable order** — results come back in item order; chunks are
  submitted and joined in order.
* **Worker-independent chunking** — items are grouped into fixed-size
  chunks (``chunk_size`` from :class:`~repro.runtime.config.RuntimeConfig`),
  never into ``len(items)/workers`` slices, so chunk boundaries do not
  move when the pool grows.
* **No shared RNG** — task functions receive explicit inputs only.  A
  caller that needs randomness derives a per-item seed with
  :func:`repro.runtime.seeding.derive_seed` *before* dispatch.
* **Same code path** — the in-process mode calls the identical
  ``fn(context, item)`` closure-free entry point the workers do, so
  ``workers=1`` and ``workers=N`` differ only in scheduling.

The shared, read-only ``context`` (keys, proof systems, plans) is
shipped to each worker once via the pool initializer rather than per
task.  Task functions must be module-level (picklable by reference).

Worker processes run with telemetry inactive (sessions are
per-process), so task functions that want metrics return them as data
and the caller accounts for them parent-side; see
``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

from repro.runtime import backends
from repro.runtime.config import RuntimeConfig, get_runtime_config
from repro.telemetry import runtime as telemetry

# Per-worker-process slot for the shared read-only context, installed by
# the pool initializer so it is pickled once per worker, not per chunk.
_WORKER_CONTEXT: Any = None


def _init_worker(context: Any, backend_name: str) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context
    backends.activate(backend_name)
    # A forked worker inherits the parent's populated NTT context cache;
    # its hit/miss counters would then describe the parent's warm-up and
    # a parent cache at the LRU bound would start every worker at the
    # bound.  Start each worker cold (ntt.get_context also self-heals on
    # pid change, but the explicit reset keeps spawn/fork symmetric).
    from repro.crypto import ntt

    ntt.clear_context_cache()


def _run_chunk(fn: Callable[[Any, Any], Any], chunk: list[Any]) -> list[Any]:
    return [fn(_WORKER_CONTEXT, item) for item in chunk]


class TaskFabric:
    """Shards independent work items across processes, deterministically."""

    def __init__(self, workers: int = 1, chunk_size: int = 8) -> None:
        self.workers = max(1, int(workers))
        self.chunk_size = max(1, int(chunk_size))
        self._pools: dict[int, ProcessPoolExecutor] = {}
        #: Whether the most recent :meth:`map` dispatched to worker
        #: processes.  Callers use this to decide whether to account for
        #: telemetry their task functions could not emit (worker
        #: processes collect nothing) without double-counting the
        #: in-process path.
        self.last_out_of_process = False

    @classmethod
    def from_config(cls, config: RuntimeConfig | None = None) -> "TaskFabric":
        cfg = config if config is not None else get_runtime_config()
        return cls(workers=cfg.workers, chunk_size=cfg.chunk_size)

    @property
    def parallel(self) -> bool:
        """Whether this fabric may run work out-of-process."""
        return self.workers > 1

    def map(
        self,
        fn: Callable[[Any, Any], Any],
        items: Sequence[Any],
        *,
        context: Any = None,
        label: str = "fabric",
    ) -> list[Any]:
        """``[fn(context, item) for item in items]``, possibly sharded.

        ``fn`` must be a module-level function taking ``(context, item)``
        and must not mutate ``context``.  Results preserve item order.
        """
        items = list(items)
        chunks = [
            items[i : i + self.chunk_size]
            for i in range(0, len(items), self.chunk_size)
        ]
        out_of_process = self.workers > 1 and len(chunks) > 1
        self.last_out_of_process = out_of_process
        started = time.perf_counter()
        with telemetry.span(
            "runtime.map", label=label, items=len(items), workers=self.workers
        ):
            if not out_of_process:
                results: list[Any] = [fn(context, item) for item in items]
            else:
                pool = self._pool(context)
                futures = [pool.submit(_run_chunk, fn, chunk) for chunk in chunks]
                results = []
                try:
                    for future in futures:
                        results.extend(future.result())
                except BaseException:
                    # A chunk raised out-of-process.  Cancel whatever has
                    # not started (no point finishing work the caller
                    # will never see) and surface the original exception
                    # unchanged.
                    for future in futures:
                        future.cancel()
                    raise
        telemetry.count("runtime.tasks.total", len(items))
        telemetry.count("runtime.chunks.total", len(chunks))
        telemetry.observe("runtime.map.seconds", time.perf_counter() - started)
        telemetry.set_gauge("runtime.workers", self.workers)
        return results

    def _pool(self, context: Any) -> ProcessPoolExecutor:
        """A pool whose workers hold ``context``; reused across map calls.

        Pools are keyed by context identity: mapping with a different
        context object tears the old pool down so workers never see
        stale state.
        """
        key = id(context)
        pool = self._pools.get(key)
        if pool is None:
            self.close()
            pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(context, backends.active_backend().name),
            )
            self._pools[key] = pool
        return pool

    def close(self) -> None:
        """Shut down any worker pools this fabric created."""
        for pool in self._pools.values():
            pool.shutdown(wait=False, cancel_futures=True)
        self._pools.clear()

    def __enter__(self) -> "TaskFabric":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
