"""The hierarchical reduction: shard partials into one root ciphertext.

Three pieces, all shape-fixed and therefore deterministic at any worker
count, backend, or shard layout:

* :class:`PairwiseAccumulator` — a streaming, O(log n)-memory evaluator
  of the aggregator's in-order pairwise halving
  (:func:`repro.core.aggregator._pairwise_sum`).  It is *bit-identical*
  to the list-based fold — same association, same noise-bit metadata —
  which is what lets a shard fold an unbounded device stream without
  ever materializing the stream.
* :func:`tree_reduce` — the fixed-shape SUM_CHUNK summation tree as a
  free function (chunks reduced pairwise, partials reduced pairwise),
  shared by the flat aggregator, the per-shard fold, and the root.
* :class:`ReductionTree` — the root combiner.  Each shard hands it a
  :class:`ShardPartial` carrying both the claimed partial sum *and* the
  chunk-level evidence it was built from; the root recomputes the
  reduction of the evidence and refuses (typed
  :class:`~repro.errors.ShardIntegrityError`) any shard whose claim does
  not match — a colluding shard aggregator cannot smuggle a tampered
  partial into the committee's single decryption.  Verified evidence is
  dropped immediately, so the root holds O(K) ciphertexts, never O(n).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import telemetry
from repro.core.aggregator import SUM_CHUNK, _pairwise_sum, _sum_chunk_task
from repro.crypto import bgv
from repro.errors import ProtocolError, ShardIntegrityError
from repro.runtime import TaskFabric


class PairwiseAccumulator:
    """Streaming in-order pairwise halving with O(log n) memory.

    Maintains the classic binary-counter stack of subtree roots: pushing
    a leaf merges equal-height subtrees bottom-up, and :meth:`result`
    folds the surviving roots smallest-first.  For every length this
    reproduces the exact association of ``_pairwise_sum`` (an odd tail
    element carries up a level unchanged), so components *and* noise-bit
    metadata match the list-based fold — verified exhaustively by
    ``tests/sharding/test_reduce.py``.
    """

    def __init__(self) -> None:
        #: (height, subtree root) with strictly decreasing heights.
        self._stack: list[tuple[int, bgv.Ciphertext]] = []
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def push(self, ct: bgv.Ciphertext) -> None:
        height = 0
        while self._stack and self._stack[-1][0] == height:
            prior_height, prior = self._stack.pop()
            ct = bgv.add(prior, ct)
            height = prior_height + 1
        self._stack.append((height, ct))
        self._count += 1

    def result(self) -> bgv.Ciphertext | None:
        """Fold the remaining subtree roots, smallest (newest) first."""
        if not self._stack:
            return None
        total: bgv.Ciphertext | None = None
        for _, root in reversed(self._stack):
            total = root if total is None else bgv.add(root, total)
        return total


def chunked_partials(
    cts: list[bgv.Ciphertext],
    fabric: TaskFabric | None = None,
) -> list[bgv.Ciphertext]:
    """First tree level: SUM_CHUNK-sized chunks, each reduced pairwise.

    Chunk boundaries depend only on item order — never on the fabric —
    so the partial list is identical at any worker count.
    """
    chunks = [cts[i : i + SUM_CHUNK] for i in range(0, len(cts), SUM_CHUNK)]
    if fabric is not None and len(chunks) > 1:
        return fabric.map(_sum_chunk_task, chunks, label="aggregator.sum")
    return [_pairwise_sum(chunk) for chunk in chunks]


def tree_reduce(
    cts: list[bgv.Ciphertext],
    fabric: TaskFabric | None = None,
) -> bgv.Ciphertext | None:
    """The fixed-shape SUM_CHUNK summation tree as a free function.

    Identical shape to ``QueryAggregator._tree_sum``: used per shard
    (over the shard's accepted ciphertexts) and at the root (over the
    shard partials).
    """
    if not cts:
        return None
    return _pairwise_sum(chunked_partials(cts, fabric))


@dataclass(frozen=True)
class ShardPartial:
    """One shard aggregator's contribution to the root reduction.

    Bookkeeping lists are in the shard's *submission* order; because
    shards are contiguous ranges of the global order, concatenating them
    in shard order replays the unsharded aggregator's exact bookkeeping
    (accepted/rejected lists, Merkle leaves, verification-seconds fold).

    ``chunk_partials`` is the integrity evidence: the SUM_CHUNK chunk
    sums the shard claims ``partial`` was reduced from.  The root
    recomputes the reduction before trusting the claim.
    """

    shard_index: int
    accepted: tuple[int, ...]
    rejected: tuple[int, ...]
    accepted_digests: tuple[bytes, ...]
    #: Per-submission simulated Groth16 seconds, shard submission order.
    seconds: tuple[float, ...]
    #: Per-submission proofs-verified counts, same order.
    proofs: tuple[int, ...]
    chunk_partials: tuple[bgv.Ciphertext, ...]
    partial: bgv.Ciphertext | None

    @property
    def num_submissions(self) -> int:
        return len(self.seconds)


@dataclass
class ReductionTree:
    """Root combiner: verify each shard's claim, then tree-reduce.

    Holds only the verified claimed partials (O(K) ciphertexts); chunk
    evidence is checked on :meth:`add` and dropped.
    """

    fabric: TaskFabric | None = None
    _partials: list[bgv.Ciphertext] = field(default_factory=list, init=False)
    _shards_seen: int = field(default=0, init=False)

    def add(self, partial: ShardPartial) -> None:
        """Admit one shard's partial after recomputing its reduction."""
        self._shards_seen += 1
        if partial.partial is None:
            if partial.chunk_partials or partial.accepted:
                raise ShardIntegrityError(
                    f"shard {partial.shard_index} claims no partial sum "
                    "but presented accepted contributions"
                )
            return
        recomputed = _pairwise_sum(list(partial.chunk_partials))
        if recomputed.serialize() != partial.partial.serialize():
            telemetry.count("sharding.integrity.failures")
            raise ShardIntegrityError(
                f"shard {partial.shard_index} claimed a partial sum that "
                "does not reduce from its own chunk evidence"
            )
        telemetry.count("sharding.partials.verified")
        self._partials.append(partial.partial)

    def reduce(self) -> bgv.Ciphertext | None:
        """Combine the verified shard partials through the summation
        tree into the one ciphertext handed to the committee."""
        if not self._shards_seen:
            raise ProtocolError("no shard partials were added")
        with telemetry.span(
            "sharding.reduce",
            shards=self._shards_seen,
            partials=len(self._partials),
        ):
            started = time.perf_counter()
            root = tree_reduce(self._partials, self.fabric)
            telemetry.observe(
                "sharding.reduce.seconds", time.perf_counter() - started
            )
            telemetry.count(
                "sharding.partials.reduced", len(self._partials)
            )
        return root
