"""Sharded verification + hierarchical aggregation.

K shard aggregator instances each verify and relinearize their
contiguous slice of the submission order independently (sharding the
proof-checking that dominates aggregator compute, Figure 9b), fold their
accepted ciphertexts through the fixed-shape SUM_CHUNK tree, and hand a
:class:`~repro.sharding.reduce.ShardPartial` to the root
:class:`~repro.sharding.reduce.ReductionTree`, which verifies each claim
against its chunk evidence and reduces the partials into the one
ciphertext the committee decrypts.

Bit-identity contract (tests/sharding/, docs/SHARDING.md): for any K,
:meth:`ShardedAggregator.aggregate` returns an
:class:`~repro.core.aggregator.AggregationResult` whose ciphertext
*components* (serialization, digest), accepted/rejected lists, summation
root, verification seconds, and proof counts are bit-identical to the
unsharded :class:`~repro.core.aggregator.QueryAggregator` — homomorphic
addition is exact and associative, contiguous shards preserve the global
submission order, and the verification-seconds accumulator replays the
flat path's exact float fold.  At K=1 even the noise-bit *metadata*
matches; at K>1 the analytic noise tag differs by the (sound,
shape-dependent) regrouping of the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro import telemetry
from repro.core.aggregator import (
    AggregationResult,
    QueryAggregator,
    _pairwise_sum,
    _verify_relin_task,
)
from repro.crypto import bgv, zksnark
from repro.crypto.merkle import InclusionProof, MerkleTree, verify_inclusion
from repro.engine.encrypted import OriginSubmission
from repro.errors import ProtocolError
from repro.runtime import TaskFabric
from repro.sharding.planner import Shard, plan_shards
from repro.sharding.reduce import ReductionTree, ShardPartial, chunked_partials


def shard_claimed_partial(
    chunk_partials: Sequence[bgv.Ciphertext],
) -> bgv.Ciphertext | None:
    """The partial sum a shard aggregator *claims* for its chunk
    evidence.  A module-level seam on purpose: the audit self-test's
    colluding-shard mutant patches this to tamper, and the root's
    independent recomputation must catch it."""
    if not chunk_partials:
        return None
    return _pairwise_sum(list(chunk_partials))


def aggregate_shard(
    shard: Shard,
    submissions: list[OriginSubmission],
    zk: zksnark.Groth16System,
    relin_keys: bgv.RelinKeySet,
    fabric: TaskFabric | None = None,
) -> ShardPartial:
    """One shard aggregator: verify, relinearize, fold, claim.

    Verification + relinearization of distinct submissions shards
    across the fabric exactly as the flat aggregator does (full
    verification is a pure function of the submission); the shard's
    accepted ciphertexts then fold through the SUM_CHUNK tree.
    """
    telemetry.count("sharding.shard.submissions", len(submissions))
    if fabric is not None:
        results = fabric.map(
            _verify_relin_task,
            submissions,
            context=(zk, relin_keys),
            label="aggregator.verify",
        )
    else:
        checker = QueryAggregator(zk=zk, relin_keys=relin_keys)
        results = []
        for submission in submissions:
            ok, seconds, proofs = checker.verify_submission(submission)
            relin = (
                bgv.relinearize(submission.ciphertext, relin_keys)
                if ok
                else None
            )
            results.append((ok, seconds, proofs, relin))
    accepted: list[int] = []
    rejected: list[int] = []
    digests: list[bytes] = []
    seconds_list: list[float] = []
    proofs_list: list[int] = []
    relinearized: list[bgv.Ciphertext] = []
    for submission, (ok, seconds, proofs, relin) in zip(submissions, results):
        telemetry.count("aggregator.proofs.verified", proofs)
        telemetry.observe("aggregator.verify.seconds", seconds)
        seconds_list.append(seconds)
        proofs_list.append(proofs)
        if not ok:
            rejected.append(submission.origin)
            continue
        accepted.append(submission.origin)
        relinearized.append(relin)
        digests.append(relin.digest())
    chunk_partials = tuple(chunked_partials(relinearized, fabric))
    return ShardPartial(
        shard_index=shard.index,
        accepted=tuple(accepted),
        rejected=tuple(rejected),
        accepted_digests=tuple(digests),
        seconds=tuple(seconds_list),
        proofs=tuple(proofs_list),
        chunk_partials=chunk_partials,
        partial=shard_claimed_partial(chunk_partials),
    )


@dataclass
class ShardedAggregator:
    """K independent shard aggregators plus the root reduction.

    Always verifies every proof (the flat aggregator's spot-check mode
    consumes a shared sequential RNG, which cannot shard); submissions
    are split by the deterministic contiguous planner, so the layout is
    a pure function of ``(submission count, num_shards, master_seed)``.
    """

    zk: zksnark.Groth16System
    relin_keys: bgv.RelinKeySet
    num_shards: int = 1
    fabric: TaskFabric | None = None
    master_seed: int = 0
    _tree: MerkleTree | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ProtocolError("ShardedAggregator.num_shards must be >= 1")

    def aggregate(
        self, submissions: list[OriginSubmission]
    ) -> AggregationResult:
        """Verify, relinearize, and sum all submissions across K shards."""
        plan = plan_shards(
            len(submissions), self.num_shards, self.master_seed
        )
        telemetry.count("sharding.shards.planned", plan.num_shards)
        return self.aggregate_stream(plan.split(submissions))

    def aggregate_stream(
        self,
        shard_streams: Iterator[tuple[Shard, Iterable[OriginSubmission]]],
    ) -> AggregationResult:
        """Memory-bounded form: shards are consumed one at a time, so
        peak residency is one shard's submissions plus O(K) partials."""
        root_tree = ReductionTree(fabric=self.fabric)
        accepted: list[int] = []
        rejected: list[int] = []
        digests: list[bytes] = []
        total_seconds = 0.0
        total_proofs = 0
        for shard, stream in shard_streams:
            partial = aggregate_shard(
                shard, list(stream), self.zk, self.relin_keys, self.fabric
            )
            root_tree.add(partial)
            accepted.extend(partial.accepted)
            rejected.extend(partial.rejected)
            digests.extend(partial.accepted_digests)
            # Same left fold, same order as the flat aggregator: shard
            # slices are contiguous, so concatenation is submission order.
            for seconds in partial.seconds:
                total_seconds += seconds
            for proofs in partial.proofs:
                total_proofs += proofs
        global_ct = root_tree.reduce()
        telemetry.count("aggregator.submissions.accepted", len(accepted))
        telemetry.count("aggregator.submissions.rejected", len(rejected))
        self._tree = MerkleTree(digests or [b"empty"])
        return AggregationResult(
            ciphertext=global_ct,
            accepted=accepted,
            rejected=rejected,
            summation_root=self._tree.root,
            verification_seconds=total_seconds,
            proofs_verified=total_proofs,
        )

    def inclusion_proof(self, position: int) -> InclusionProof:
        """Summation-tree inclusion proof for an accepted contribution —
        the same include-exactly-once check the flat aggregator serves,
        over the identical global leaf order."""
        if self._tree is None:
            raise ProtocolError("no aggregation has run")
        return self._tree.prove(position)

    def verify_inclusion(
        self, position: int, digest: bytes, proof: InclusionProof
    ) -> bool:
        if self._tree is None:
            raise ProtocolError("no aggregation has run")
        return verify_inclusion(self._tree.root, digest, proof)
