"""Sharded hierarchical aggregation (ROADMAP item 3).

Partition device origins into K deterministic contiguous shards
(:mod:`repro.sharding.planner`), verify + relinearize each shard
independently and fold it through the fixed-shape SUM_CHUNK tree
(:mod:`repro.sharding.aggregate`), then combine the claim-checked shard
partials into the one root ciphertext the committee decrypts
(:mod:`repro.sharding.reduce`).  Per-shard mixnet worlds live in
:mod:`repro.sharding.worlds`; the streaming 10^6-device live simulation
in :mod:`repro.sharding.livesim`.  Design notes: docs/SHARDING.md.
"""

from repro.sharding.aggregate import (
    ShardedAggregator,
    aggregate_shard,
    shard_claimed_partial,
)
from repro.sharding.livesim import (
    ContributionBank,
    LiveSimReport,
    run_live_simulation,
)
from repro.sharding.planner import Shard, ShardPlan, ShardPlanner, plan_shards
from repro.sharding.reduce import (
    PairwiseAccumulator,
    ReductionTree,
    ShardPartial,
    chunked_partials,
    tree_reduce,
)
from repro.sharding.worlds import (
    ShardWorld,
    build_shard_world,
    iter_shard_worlds,
    shard_subgraph,
)

__all__ = [
    "ContributionBank",
    "LiveSimReport",
    "PairwiseAccumulator",
    "ReductionTree",
    "Shard",
    "ShardPartial",
    "ShardPlan",
    "ShardPlanner",
    "ShardWorld",
    "ShardedAggregator",
    "aggregate_shard",
    "build_shard_world",
    "chunked_partials",
    "iter_shard_worlds",
    "plan_shards",
    "run_live_simulation",
    "shard_claimed_partial",
    "shard_subgraph",
    "tree_reduce",
]
