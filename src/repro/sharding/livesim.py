"""Streaming live simulation: 10^4 → 10^6 devices, memory ∝ shard size.

The scaling bottleneck in the unsharded live path is residency, not
arithmetic: holding every device's state (pseudonyms, mixnet links, a
fresh ~12 KB ciphertext each) makes peak RSS linear in the total device
count.  This module makes the device population *generator-fed*:

* Device state is a pure function of ``(master_seed, global device id)``
  — :func:`shard_devices` materializes **one shard's** devices at a
  time, so resident device state is bounded by the largest shard.
* Per-device ciphertexts are built lazily from a small
  :class:`ContributionBank` (pre-encrypted value monomials plus
  encrypt-zero blinds; one homomorphic addition per device instead of a
  ~2.7 ms fresh encryption) and consumed immediately by the shard fold.
* The shard fold is a :class:`~repro.sharding.reduce.PairwiseAccumulator`
  over SUM_CHUNK chunk sums — the flat aggregator's exact tree shape,
  held in O(SUM_CHUNK + log shard_size) ciphertexts.

Because each device's histogram value depends only on its *global* id,
the decrypted histogram is identical at any shard count K — the same
layout-invariance contract the query path's sharded aggregation obeys
(docs/SHARDING.md).  ``benchmarks/bench_shard_scale.py`` drives this
module across a devices × shards sweep and records peak RSS.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import telemetry
from repro.core.aggregator import SUM_CHUNK, _pairwise_sum
from repro.crypto import bgv
from repro.errors import ParameterError
from repro.params import BGVProfile
from repro.runtime.seeding import derive_rng
from repro.sharding.planner import Shard, ShardPlan, plan_shards
from repro.sharding.reduce import PairwiseAccumulator, tree_reduce

#: TEST-sized ring with a plaintext modulus wide enough that a histogram
#: bin can count every one of 10^6 (and with margin, 2 * 10^6) devices
#: without wrapping mod t; q_bits matches TEST so noise headroom is the
#: same ~490 bits against a tree fold's ~log2(devices) bits of growth.
LIVESIM_PROFILE = BGVProfile(
    name="livesim", n=64, t=2**21, q_bits=512, error_bound=2
)


@dataclass(frozen=True)
class DeviceState:
    """One simulated device: identity, registered pseudonyms, value.

    ``value`` (the histogram bin this device contributes x^value to) is
    derived from the global id alone, never from the shard layout.
    """

    global_id: int
    value: int
    pseudonyms: tuple[bytes, ...]


@dataclass
class ContributionBank:
    """Pre-encrypted contribution pool shared by every simulated device.

    ``monomials[v]`` is Enc(x^v); ``blinds`` are encryptions of zero.  A
    device's leaf is ``monomials[value] + blinds[id % len(blinds)]`` —
    one ~40 µs homomorphic addition yielding an owned ciphertext, versus
    a ~2.7 ms fresh encryption per device, which is what makes a 10^6
    device sweep minutes instead of hours.  The blind keeps leaves
    distinct objects with distinct components; it does not model the
    per-device encryption randomness a real deployment has (the query
    path, which verifies real per-origin encryptions, does).
    """

    monomials: tuple[bgv.Ciphertext, ...]
    blinds: tuple[bgv.Ciphertext, ...]

    @classmethod
    def build(
        cls,
        public_key: bgv.PublicKey,
        domain: int,
        num_blinds: int,
        rng: random.Random,
    ) -> ContributionBank:
        if domain < 1 or domain > public_key.profile.n:
            raise ParameterError(
                f"value domain {domain} outside [1, {public_key.profile.n}]"
            )
        if num_blinds < 1:
            raise ParameterError("need at least one blind")
        return cls(
            monomials=tuple(
                bgv.encrypt_monomial(public_key, v, rng)
                for v in range(domain)
            ),
            blinds=tuple(
                bgv.encrypt_zero_like(public_key, rng)
                for _ in range(num_blinds)
            ),
        )

    @property
    def domain(self) -> int:
        return len(self.monomials)

    def leaf(self, device: DeviceState) -> bgv.Ciphertext:
        blind = self.blinds[device.global_id % len(self.blinds)]
        return bgv.add(self.monomials[device.value], blind)


def shard_devices(
    shard: Shard,
    master_seed: int,
    domain: int,
    pseudonyms_per_device: int = 4,
) -> list[DeviceState]:
    """Materialize one shard's device states (and only that shard's).

    Every field is derived from ``(master_seed, global id)``, so the
    same device is bit-identical in every layout and on every resume.
    """
    devices = []
    for global_id in range(shard.start, shard.stop):
        rng = derive_rng(master_seed, "livesim", global_id)
        devices.append(
            DeviceState(
                global_id=global_id,
                value=rng.randrange(domain),
                pseudonyms=tuple(
                    rng.getrandbits(256).to_bytes(32, "big")
                    for _ in range(pseudonyms_per_device)
                ),
            )
        )
    return devices


def fold_shard(
    devices: list[DeviceState], bank: ContributionBank
) -> bgv.Ciphertext | None:
    """Fold one shard's contributions through the SUM_CHUNK tree shape,
    streaming: at most SUM_CHUNK leaves plus O(log n) subtree roots are
    ever resident."""
    accumulator = PairwiseAccumulator()
    chunk: list[bgv.Ciphertext] = []
    for device in devices:
        chunk.append(bank.leaf(device))
        if len(chunk) == SUM_CHUNK:
            accumulator.push(_pairwise_sum(chunk))
            chunk = []
    if chunk:
        accumulator.push(_pairwise_sum(chunk))
    return accumulator.result()


@dataclass(frozen=True)
class LiveSimReport:
    """Outcome of one live run: the decrypted histogram plus the
    plaintext oracle computed from the same device stream."""

    num_devices: int
    num_shards: int
    domain: int
    histogram: tuple[int, ...]
    expected: tuple[int, ...]
    max_shard_size: int

    @property
    def correct(self) -> bool:
        return self.histogram == self.expected


def run_live_simulation(
    num_devices: int,
    num_shards: int = 1,
    master_seed: int = 0,
    domain: int = 8,
    num_blinds: int = 16,
    profile: BGVProfile = LIVESIM_PROFILE,
    plan: ShardPlan | None = None,
) -> LiveSimReport:
    """Run a sharded live aggregation end to end and decrypt the result.

    Shards are processed one at a time: materialize the shard's devices,
    fold their contributions, keep only the partial sum.  Peak residency
    is one shard's device states plus O(num_shards) partial ciphertexts.
    """
    if num_devices < 1:
        raise ParameterError("need at least one device")
    key_rng = derive_rng(master_seed, "livesim", "keys")
    secret, public = bgv.keygen(profile, key_rng)
    bank = ContributionBank.build(public, domain, num_blinds, key_rng)
    if plan is None:
        plan = plan_shards(num_devices, num_shards, master_seed)
    telemetry.count("sharding.shards.planned", plan.num_shards)
    expected = [0] * domain
    partials: list[bgv.Ciphertext] = []
    max_shard_size = 0
    for shard in plan.shards:
        devices = shard_devices(shard, master_seed, domain)
        max_shard_size = max(max_shard_size, len(devices))
        for device in devices:
            expected[device.value] += 1
        partial = fold_shard(devices, bank)
        if partial is not None:
            partials.append(partial)
    total = tree_reduce(partials)
    plaintext = bgv.decrypt(secret, total)
    return LiveSimReport(
        num_devices=num_devices,
        num_shards=plan.num_shards,
        domain=domain,
        histogram=tuple(plaintext.coeffs[v] for v in range(domain)),
        expected=tuple(expected),
        max_shard_size=max_shard_size,
    )
