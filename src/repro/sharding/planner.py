"""Deterministic shard layout over device origins.

The planner partitions the *ordered* origin list into K contiguous,
balanced ranges.  Contiguity is the load-bearing property: concatenating
the shards' per-origin outputs in shard order reproduces the exact
global submission order, which is what lets the sharded aggregation
replay the unsharded path's accepted/rejected lists, Merkle leaf order,
and verification-seconds float fold bit-for-bit (docs/SHARDING.md).

Each shard also carries a domain-separated seed derived from the run's
master seed — per-shard mixnet worlds and live-simulation device streams
draw from it, so a shard's behaviour is a pure function of
``(master_seed, shard index)`` and never of the layout K of the shards
around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, TypeVar

from repro.errors import ParameterError
from repro.runtime.seeding import derive_seed

T = TypeVar("T")


@dataclass(frozen=True)
class Shard:
    """One contiguous range of the origin order.

    ``start``/``stop`` are positions in the ordered origin list (not
    origin ids): ``origins[start:stop]`` is exactly this shard's slice.
    A shard may be empty when K exceeds the device count.
    """

    index: int
    start: int
    stop: int
    seed: int

    @property
    def size(self) -> int:
        return self.stop - self.start

    def slice(self, items: Sequence[T]) -> Sequence[T]:
        return items[self.start : self.stop]


@dataclass(frozen=True)
class ShardPlan:
    """A full layout: K shards covering ``total`` positions."""

    total: int
    shards: tuple[Shard, ...]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, position: int) -> Shard:
        """The shard holding a given position in the origin order."""
        if not 0 <= position < self.total:
            raise ParameterError(
                f"position {position} outside [0, {self.total})"
            )
        for shard in self.shards:
            if shard.start <= position < shard.stop:
                return shard
        raise AssertionError("contiguous shards must cover every position")

    def split(self, items: Sequence[T]) -> Iterator[tuple[Shard, Sequence[T]]]:
        """Yield ``(shard, items[start:stop])`` pairs in shard order."""
        if len(items) != self.total:
            raise ParameterError(
                f"plan covers {self.total} items, got {len(items)}"
            )
        for shard in self.shards:
            yield shard, shard.slice(items)


@dataclass(frozen=True)
class ShardPlanner:
    """Lay out K balanced contiguous shards deterministically.

    The first ``total % K`` shards take one extra item (the unique
    balanced contiguous layout), so the plan is a pure function of
    ``(total, num_shards, master_seed)`` — identical on every resume and
    at any worker count or backend.
    """

    num_shards: int

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ParameterError("ShardPlanner.num_shards must be >= 1")

    def plan(self, total: int, master_seed: int = 0) -> ShardPlan:
        if total < 0:
            raise ParameterError("cannot shard a negative item count")
        base, extra = divmod(total, self.num_shards)
        shards = []
        start = 0
        for index in range(self.num_shards):
            size = base + (1 if index < extra else 0)
            shards.append(
                Shard(
                    index=index,
                    start=start,
                    stop=start + size,
                    seed=derive_seed(master_seed, "shard", index),
                )
            )
            start += size
        assert start == total
        return ShardPlan(total=total, shards=tuple(shards))


def plan_shards(
    total: int, num_shards: int, master_seed: int = 0
) -> ShardPlan:
    """Convenience one-shot: ``ShardPlanner(K).plan(total, seed)``."""
    return ShardPlanner(num_shards).plan(total, master_seed)
