"""Per-shard mixnet worlds.

One :class:`~repro.mixnet.network.MixnetWorld` per shard: each shard's
devices register pseudonyms, telescope paths, and deposit mailbox
traffic against *their own* shard aggregator's bulletin board and
mailbox server, so the mixnet state (RSA identities, link tables,
mailboxes) for a live run is resident for **one shard at a time** rather
than for every device at once.  A shard's world is seeded exclusively
from ``shard.seed`` — a pure function of ``(master_seed, shard index)``
— so adding shards around it never perturbs its behaviour, and a resumed
run rebuilds the identical world.

Trust boundary (docs/SHARDING.md): each shard aggregator is exactly as
untrusted as the flat aggregator — devices inside a shard verify mailbox
batches and receipts against their shard's committed roots, and the
*cryptographic* output of a shard (its partial sum) is re-verified by the
root :class:`~repro.sharding.reduce.ReductionTree`.  Sharding the mixnet
therefore changes who operates the mailbox servers, not what any
operator can get away with.

The vertex program still evaluates on the global contact graph;
:func:`shard_subgraph` extracts the shard-local induced view used when a
shard simulates only its own devices' traffic (cross-shard edges are
reported, not silently dropped).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterator

from repro import telemetry
from repro.errors import ParameterError
from repro.mixnet.network import MixnetWorld
from repro.params import SystemParameters
from repro.sharding.planner import Shard, ShardPlan
from repro.workloads.graphgen import ContactGraph


@dataclass
class ShardWorld:
    """One shard's mixnet world plus the local/global id mapping.

    Local device ids are ``0..shard.size-1``; global origin ids are the
    shard's contiguous range ``shard.start..shard.stop-1``.
    """

    shard: Shard
    world: MixnetWorld

    def to_local(self, global_id: int) -> int:
        if not self.shard.start <= global_id < self.shard.stop:
            raise ParameterError(
                f"origin {global_id} is not in shard {self.shard.index} "
                f"[{self.shard.start}, {self.shard.stop})"
            )
        return global_id - self.shard.start

    def to_global(self, local_id: int) -> int:
        if not 0 <= local_id < self.shard.size:
            raise ParameterError(
                f"local id {local_id} outside shard of size {self.shard.size}"
            )
        return local_id + self.shard.start


def build_shard_world(
    shard: Shard,
    params: SystemParameters,
    rsa_bits: int = 512,
    pseudonyms_per_device: int | None = None,
    collective_beacon: bool = False,
) -> ShardWorld:
    """Construct one shard's mixnet world, seeded from the shard seed."""
    if shard.size < 1:
        raise ParameterError(
            f"shard {shard.index} is empty; skip it rather than building "
            "a world with no devices"
        )
    shard_params = replace(params, num_devices=shard.size)
    world = MixnetWorld(
        shard_params,
        shard.size,
        random.Random(shard.seed),
        rsa_bits=rsa_bits,
        pseudonyms_per_device=pseudonyms_per_device,
        collective_beacon=collective_beacon,
    )
    telemetry.count("sharding.worlds.built")
    return ShardWorld(shard=shard, world=world)


def iter_shard_worlds(
    plan: ShardPlan,
    params: SystemParameters,
    rsa_bits: int = 512,
    pseudonyms_per_device: int | None = None,
) -> Iterator[ShardWorld]:
    """Yield one shard world at a time (empty shards are skipped).

    Generator-fed on purpose: the caller drives a shard's devices to
    completion, drops the world, and only then is the next one built —
    peak mixnet residency is bounded by the largest shard, not by the
    total device count.
    """
    for shard in plan.shards:
        if shard.size == 0:
            continue
        yield build_shard_world(
            shard,
            params,
            rsa_bits=rsa_bits,
            pseudonyms_per_device=pseudonyms_per_device,
        )


def shard_subgraph(
    graph: ContactGraph, shard: Shard
) -> tuple[ContactGraph, int]:
    """The induced subgraph over a shard's contiguous vertex range.

    Vertices are relabelled to local ids (global ``v`` becomes
    ``v - shard.start``); vertex and shared-edge attribute records are
    referenced, not copied.  Returns the subgraph and the number of
    cross-shard edges that fall outside it — callers that need exact
    global query semantics must route those through the global graph
    instead of ignoring them.
    """
    local = ContactGraph(degree_bound=graph.degree_bound)
    for v in range(shard.start, min(shard.stop, graph.num_vertices)):
        local.add_vertex(**graph.vertex_attrs[v])
    cut_edges = 0
    for v in range(shard.start, min(shard.stop, graph.num_vertices)):
        for u in graph.neighbors(v):
            if not shard.start <= u < shard.stop:
                # The out-of-shard endpoint is never visited, so each
                # cut edge is seen exactly once.
                cut_edges += 1
                continue
            if u < v:
                continue  # shared record; wire each in-shard edge once
            lu, lv = u - shard.start, v - shard.start
            local.adjacency[lv][lu] = graph.adjacency[v][u]
            local.adjacency[lu][lv] = graph.adjacency[v][u]
    return local, cut_edges
