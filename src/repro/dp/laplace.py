"""The Laplace mechanism (§2.3).

Adding Laplace(sensitivity / epsilon) noise to each released value gives
epsilon-differential privacy.  In Mycelium the committee samples this
noise inside the decryption MPC, so no single party ever sees the
un-noised aggregate; :mod:`repro.core.committee` splits the sample into
per-member shares, and this module provides the underlying sampler.
"""

from __future__ import annotations

import math
import random

from repro.errors import ParameterError


def sample_laplace(scale: float, rng: random.Random) -> float:
    """One draw from Laplace(0, scale) via inverse-CDF sampling."""
    if scale < 0:
        raise ParameterError("Laplace scale must be non-negative")
    if scale == 0:
        return 0.0
    u = rng.random() - 0.5
    return -scale * math.copysign(math.log(1 - 2 * abs(u)), u)


def add_noise(
    values: list[float], scale: float, rng: random.Random
) -> list[float]:
    """Independently noise each released value (histogram bins / group
    sums each get their own draw)."""
    return [v + sample_laplace(scale, rng) for v in values]


def noisy_value(value: float, sensitivity: float, epsilon: float, rng: random.Random) -> float:
    """Release a single value with epsilon-DP."""
    if epsilon <= 0:
        raise ParameterError("epsilon must be positive")
    return value + sample_laplace(sensitivity / epsilon, rng)
