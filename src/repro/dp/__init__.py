"""Differential privacy: the Laplace mechanism
(:mod:`repro.dp.laplace`) and budget accounting with sequential or
advanced composition (:mod:`repro.dp.budget`).
"""
