"""Privacy-budget accounting (§4.4 "Privacy budget").

The committee maintains a budget from which each query's epsilon is
deducted.  The prototype's policy — like the paper's — is basic
(sequential) composition: subtract the full epsilon of every query.
Advanced composition (Dwork-Roth Thm 3.20) is provided as the optional
stretch the paper mentions; it bounds the *total* privacy loss of a
sequence of epsilon_i-DP queries by a smaller epsilon at the cost of a
small delta.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ParameterError, PrivacyBudgetExceeded
from repro.telemetry.runtime import count as _count, set_gauge as _set_gauge


@dataclass
class PrivacyBudget:
    """A sequential-composition budget accountant.

    ``history`` is the ground truth; ``spent`` is always recomputed from
    it with :func:`math.fsum` so admission decisions cannot drift away
    from the recorded charges.  The invariant audited by
    ``repro.audit`` is exact: ``fsum(history) <= total_epsilon``.
    """

    total_epsilon: float
    history: list[tuple[str, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.total_epsilon <= 0:
            raise ParameterError("budget must be positive")

    @property
    def spent(self) -> float:
        return math.fsum(epsilon for _, epsilon in self.history)

    @property
    def remaining(self) -> float:
        return max(0.0, self.total_epsilon - self.spent)

    def can_afford(self, epsilon: float) -> bool:
        """Exact admission test: would the charge keep fsum(history)
        within ``total_epsilon``?  A running ``spent += eps`` accumulator
        with an absolute slack admitted queries past the budget after
        many small charges; summing the prospective history with fsum
        makes the decision independent of charge order and count."""
        return (
            math.fsum(
                [epsilon, *(amount for _, amount in self.history)]
            )
            <= self.total_epsilon
        )

    def charge(self, epsilon: float, label: str = "") -> None:
        """Deduct a query's epsilon; raises if the budget is exhausted."""
        if epsilon <= 0:
            raise ParameterError("query epsilon must be positive")
        if not self.can_afford(epsilon):
            raise PrivacyBudgetExceeded(
                f"query needs epsilon={epsilon} but only "
                f"{self.remaining:.4f} of {self.total_epsilon} remains"
            )
        self.history.append((label, epsilon))
        _count("dp.queries.total")
        _set_gauge("dp.budget.epsilon_spent", self.spent)
        _set_gauge("dp.budget.epsilon_remaining", self.remaining)


@dataclass
class AdvancedCompositionBudget:
    """An accountant using advanced composition (Dwork-Roth Thm 3.20).

    All queries must share one per-query epsilon; the accountant admits
    a new query while the *composed* total epsilon (which grows ~sqrt(k))
    stays within the budget, at the cost of a fixed delta.  For long
    studies of small queries this stretches the budget well past
    sequential composition — the §4.4 "more sophisticated techniques"
    extension.
    """

    total_epsilon: float
    per_query_epsilon: float
    delta: float
    queries_run: int = 0

    def __post_init__(self) -> None:
        if self.total_epsilon <= 0 or self.per_query_epsilon <= 0:
            raise ParameterError("budgets and epsilons must be positive")
        if not 0 < self.delta < 1:
            raise ParameterError("delta must be in (0, 1)")

    def composed_epsilon(self, num_queries: int) -> float:
        return composed_epsilon(
            self.per_query_epsilon, num_queries, self.delta
        )

    @property
    def spent(self) -> float:
        return self.composed_epsilon(self.queries_run)

    def can_afford_next(self) -> bool:
        return self.composed_epsilon(self.queries_run + 1) <= (
            self.total_epsilon + 1e-12
        )

    def charge(self, label: str = "") -> None:
        if not self.can_afford_next():
            raise PrivacyBudgetExceeded(
                f"query {self.queries_run + 1} would push the composed "
                f"epsilon past {self.total_epsilon}"
            )
        self.queries_run += 1

    @property
    def remaining_queries(self) -> int:
        count = 0
        while self.composed_epsilon(self.queries_run + count + 1) <= (
            self.total_epsilon + 1e-12
        ):
            count += 1
            if count > 10_000_000:
                break
        return count


def advanced_composition_epsilon(
    per_query_epsilon: float, num_queries: int, delta: float
) -> float:
    """Total epsilon for ``num_queries`` eps-DP queries under advanced
    composition (Dwork-Roth, Theorem 3.20):

        eps_total = eps * sqrt(2 k ln(1/delta)) + k * eps * (e^eps - 1)

    For small per-query epsilon this grows ~sqrt(k) instead of k.
    """
    if per_query_epsilon <= 0 or num_queries < 1:
        raise ParameterError("need positive epsilon and at least one query")
    if not 0 < delta < 1:
        raise ParameterError("delta must be in (0, 1)")
    eps = per_query_epsilon
    k = num_queries
    return eps * math.sqrt(2 * k * math.log(1 / delta)) + k * eps * (
        math.exp(eps) - 1
    )


def composed_epsilon(
    per_query_epsilon: float, num_queries: int, delta: float
) -> float:
    """Total privacy loss of ``num_queries`` eps-DP queries: the better
    of sequential composition (``k * eps``, always valid) and advanced
    composition (Thm 3.20).  Taking the min at *every* k makes the bound
    monotone in k and never worse than sequential — the raw Thm 3.20
    expression exceeds ``k * eps`` for large per-query epsilon, which
    previously made ``composed_epsilon(2)`` jump past twice
    ``composed_epsilon(1)``."""
    if num_queries == 0:
        return 0.0
    return min(
        num_queries * per_query_epsilon,
        advanced_composition_epsilon(per_query_epsilon, num_queries, delta),
    )


def queries_supported(
    total_epsilon: float, per_query_epsilon: float, delta: float | None = None
) -> int:
    """How many queries a budget supports — sequentially, or under
    advanced composition when a delta is given.

    Returns 0 when not even one query fits (the composed epsilon of a
    single query already exceeds the budget); the old loop started at
    ``k = 1`` without that check and reported one phantom query.
    """
    if delta is None:
        return int(total_epsilon / per_query_epsilon)
    k = 0
    while composed_epsilon(per_query_epsilon, k + 1, delta) <= total_epsilon:
        k += 1
        if k > 10_000_000:
            break
    return k
