"""The aggregator's query-processing duties (§4.4, §4.6, §5).

The aggregator never holds a decryption key.  Per query it:

1. verifies every submitted zero-knowledge proof and discards
   contributions from origins whose proof stack does not check out;
2. relinearizes the (deferred-relinearization) device outputs back to
   degree-1 ciphertexts — the "one-time operation to reduce ciphertext
   size before the decryption step" of §5;
3. sums the accepted ciphertexts homomorphically;
4. builds an Orchard-style summation tree over the accepted
   contributions so every device can verify its data was included
   exactly once (§4.2).

ZKP verification dominates the aggregator's compute (Figure 9b); the
cost model tallies the simulated Groth16 verification seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import telemetry
from repro.crypto import bgv, zksnark
from repro.crypto.merkle import InclusionProof, MerkleTree, verify_inclusion
from repro.engine.encrypted import OriginSubmission
from repro.errors import ProtocolError
from repro.runtime import TaskFabric

#: Fixed fan-in of the first summation-tree level.  A module constant —
#: never derived from the worker count — so the tree shape (and with it
#: every ciphertext's noise-bit metadata) is identical no matter how the
#: chunks are scheduled.
SUM_CHUNK = 8


@dataclass
class AggregationResult:
    """Outcome of verification + global aggregation."""

    ciphertext: bgv.Ciphertext | None
    accepted: list[int]
    rejected: list[int]
    summation_root: bytes
    verification_seconds: float
    proofs_verified: int

    @property
    def num_accepted(self) -> int:
        return len(self.accepted)


def _pairwise_sum(cts: list[bgv.Ciphertext]) -> bgv.Ciphertext:
    """Reduce ciphertexts pairwise in order: a fixed, balanced shape."""
    layer = list(cts)
    while len(layer) > 1:
        layer = [
            bgv.add(layer[i], layer[i + 1]) if i + 1 < len(layer) else layer[i]
            for i in range(0, len(layer), 2)
        ]
    return layer[0]


def _sum_chunk_task(context: None, chunk: list[bgv.Ciphertext]) -> bgv.Ciphertext:
    """Fabric task: pairwise-sum one fixed-size chunk of ciphertexts."""
    return _pairwise_sum(chunk)


def _verify_relin_task(
    context: tuple[zksnark.Groth16System, bgv.RelinKeySet],
    submission: OriginSubmission,
) -> tuple[bool, float, int, bgv.Ciphertext | None]:
    """Fabric task: full proof-stack check plus relinearization.

    Only dispatched under full verification (``spot_check_fraction`` of
    1.0), where the check is a pure function of the submission — no
    sampling RNG, so any worker may run it.
    """
    zk, relin_keys = context
    checker = QueryAggregator(zk=zk, relin_keys=relin_keys)
    ok, seconds, proofs = checker.verify_submission(submission)
    relin = bgv.relinearize(submission.ciphertext, relin_keys) if ok else None
    return ok, seconds, proofs, relin


@dataclass
class QueryAggregator:
    """Aggregator state for one query.

    ``spot_check_fraction`` implements the §6.6 cost mitigation: verify
    only a random sample of each submission's *leaf* proofs (a cheating
    device is still caught with probability ~fraction per bad leaf, and
    the aggregation proof is always checked).  ``spot_check_rng`` makes
    the sampling reproducible in tests.
    """

    zk: zksnark.Groth16System
    relin_keys: bgv.RelinKeySet
    spot_check_fraction: float = 1.0
    spot_check_rng: object | None = None
    #: Optional parallel fabric.  Submissions verify + relinearize
    #: independently, so they shard cleanly — but only under full
    #: verification: spot-checking draws from a shared RNG whose
    #: consumption order must stay sequential, so it pins the serial
    #: path.
    fabric: TaskFabric | None = None
    _tree: MerkleTree | None = field(default=None, init=False)
    _accepted_digests: list[bytes] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if not 0 < self.spot_check_fraction <= 1:
            raise ProtocolError("spot-check fraction must be in (0, 1]")

    def _should_check(self) -> bool:
        if self.spot_check_fraction >= 1.0:
            return True
        rng = self.spot_check_rng
        if rng is None:
            import random

            rng = self.spot_check_rng = random.Random(0x5B07)
        return rng.random() < self.spot_check_fraction

    def verify_submission(self, submission: OriginSubmission) -> tuple[bool, float, int]:
        """Check the full proof stack of one origin's submission.

        Returns (accepted, verification seconds, proofs verified).
        """
        seconds = 0.0
        proofs = 0
        verified_digests: set[bytes] = set()
        for leaf in submission.leaves:
            if not self._should_check():
                # Trusted-on-sample: the digest still participates in
                # coverage so the aggregation statement remains bound.
                verified_digests.add(leaf.ciphertext.digest())
                continue
            seconds += self.zk.verification_seconds(leaf.statement)
            proofs += 1
            if not self.zk.verify(leaf.statement, leaf.proof):
                return False, seconds, proofs
            verified_digests.add(leaf.ciphertext.digest())
        # Intermediate aggregations (multi-hop) are appended in
        # post-order, so children are verified before their parents.
        for ciphertext, statement, proof in submission.intermediates:
            seconds += self.zk.verification_seconds(statement)
            proofs += 1
            if not self.zk.verify(statement, proof):
                return False, seconds, proofs
            if not self._inputs_covered(statement, verified_digests):
                return False, seconds, proofs
            verified_digests.add(ciphertext.digest())
        seconds += self.zk.verification_seconds(submission.aggregate_statement)
        proofs += 1
        if not self.zk.verify(
            submission.aggregate_statement, submission.aggregate_proof
        ):
            return False, seconds, proofs
        if not self._inputs_covered(
            submission.aggregate_statement, verified_digests
        ):
            return False, seconds, proofs
        output_bytes = submission.aggregate_statement.public_inputs[0]
        if output_bytes != submission.ciphertext.serialize():
            return False, seconds, proofs
        return True, seconds, proofs

    @staticmethod
    def _inputs_covered(
        statement: zksnark.Statement, verified: set[bytes]
    ) -> bool:
        """Every input digest the statement claims must belong to a
        ciphertext whose own proof already verified."""
        input_digests = statement.public_inputs[1]
        return all(digest in verified for digest in input_digests)

    def aggregate(
        self, submissions: list[OriginSubmission]
    ) -> AggregationResult:
        """Verify, relinearize, and sum all submissions.

        Verification + relinearization of distinct submissions is
        independent work, sharded across :attr:`fabric` when one is set
        and every proof is being checked (spot-checking consumes a
        shared RNG and stays serial).  The global sum is a fixed-shape
        summation tree (see :func:`_tree_sum`), not a left fold, so it
        too can be chunked without changing the result.
        """
        accepted: list[int] = []
        rejected: list[int] = []
        total_seconds = 0.0
        total_proofs = 0
        self._accepted_digests = []
        if self.fabric is not None and self.spot_check_fraction >= 1.0:
            results = self.fabric.map(
                _verify_relin_task,
                submissions,
                context=(self.zk, self.relin_keys),
                label="aggregator.verify",
            )
        else:
            results = []
            for submission in submissions:
                ok, seconds, proofs = self.verify_submission(submission)
                relin = (
                    bgv.relinearize(submission.ciphertext, self.relin_keys)
                    if ok
                    else None
                )
                results.append((ok, seconds, proofs, relin))
        relinearized: list[bgv.Ciphertext] = []
        for submission, (ok, seconds, proofs, relin) in zip(submissions, results):
            telemetry.count("aggregator.proofs.verified", proofs)
            telemetry.observe("aggregator.verify.seconds", seconds)
            total_seconds += seconds
            total_proofs += proofs
            if not ok:
                rejected.append(submission.origin)
                continue
            accepted.append(submission.origin)
            relinearized.append(relin)
            self._accepted_digests.append(relin.digest())
        global_ct = self._tree_sum(relinearized)
        telemetry.count("aggregator.submissions.accepted", len(accepted))
        telemetry.count("aggregator.submissions.rejected", len(rejected))
        self._tree = MerkleTree(self._accepted_digests or [b"empty"])
        return AggregationResult(
            ciphertext=global_ct,
            accepted=accepted,
            rejected=rejected,
            summation_root=self._tree.root,
            verification_seconds=total_seconds,
            proofs_verified=total_proofs,
        )

    def _tree_sum(self, cts: list[bgv.Ciphertext]) -> bgv.Ciphertext | None:
        """Sum ciphertexts over a worker-count-independent tree.

        Contributions are grouped into :data:`SUM_CHUNK`-sized chunks,
        each chunk is reduced pairwise (sharded across the fabric when
        there is more than one), and the partials are reduced pairwise
        in order.  Homomorphic addition is exact, and the fixed shape
        keeps even the noise-bit *metadata* identical at any worker
        count (a balanced tree also grows the noise estimate
        logarithmically where the old left fold grew it linearly).
        """
        if not cts:
            return None
        chunks = [cts[i : i + SUM_CHUNK] for i in range(0, len(cts), SUM_CHUNK)]
        if self.fabric is not None and len(chunks) > 1:
            partials = self.fabric.map(
                _sum_chunk_task, chunks, label="aggregator.sum"
            )
        else:
            partials = [_pairwise_sum(chunk) for chunk in chunks]
        return _pairwise_sum(partials)

    def inclusion_proof(self, position: int) -> InclusionProof:
        """Summation-tree inclusion proof for an accepted contribution
        (Orchard's include-exactly-once check, §4.2)."""
        if self._tree is None:
            raise ProtocolError("no aggregation has run")
        return self._tree.prove(position)

    def verify_inclusion(
        self, position: int, digest: bytes, proof: InclusionProof
    ) -> bool:
        if self._tree is None:
            raise ProtocolError("no aggregation has run")
        return verify_inclusion(self._tree.root, digest, proof)
