"""Query result types returned to the analyst."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.histogram import GroupHistogram
from repro.faults.report import RecoveryReport
from repro.query.ast import OutputKind


@dataclass(frozen=True)
class QueryMetadata:
    """Privacy and robustness bookkeeping attached to every answer."""

    query_text: str
    epsilon: float
    sensitivity: float
    noise_scale: float
    contributing_origins: int
    rejected_origins: int
    committee_epoch: int
    verification_seconds: float = 0.0
    #: Bulletin-board complaints observed after a mixnet-transported
    #: query (Byzantine-forwarder / dropped-deposit evidence).
    complaints: int = 0
    #: Fault/recovery bookkeeping for mixnet-transported queries; None
    #: for the in-process transport.
    recovery: RecoveryReport | None = None
    #: Origins the suspicion ledger had quarantined before this query:
    #: their contribution defaulted to Enc(x^0) (docs/RESILIENCE.md).
    quarantined_origins: tuple[int, ...] = ()
    #: Origins whose submission the aggregator rejected this query
    #: (failed aggregation proof) — the suspicion ledger's input.
    byzantine_origins: tuple[int, ...] = ()


@dataclass(frozen=True)
class HistogramResult:
    """A released HISTO answer: per-group noisy histograms."""

    groups: tuple[GroupHistogram, ...]
    metadata: QueryMetadata

    @property
    def kind(self) -> OutputKind:
        return OutputKind.HISTO

    def group(self, index: int) -> GroupHistogram:
        return self.groups[index]

    def total_mass(self) -> float:
        return sum(sum(g.counts) for g in self.groups)


@dataclass(frozen=True)
class GsumResult:
    """A released GSUM answer: one noisy clipped sum per group."""

    values: tuple[float, ...]
    metadata: QueryMetadata

    @property
    def kind(self) -> OutputKind:
        return OutputKind.GSUM

    def group(self, index: int) -> float:
        return self.values[index]


QueryResult = HistogramResult | GsumResult
