"""Query result types returned to the analyst."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.histogram import GroupHistogram
from repro.query.ast import OutputKind


@dataclass(frozen=True)
class QueryMetadata:
    """Privacy and robustness bookkeeping attached to every answer."""

    query_text: str
    epsilon: float
    sensitivity: float
    noise_scale: float
    contributing_origins: int
    rejected_origins: int
    committee_epoch: int
    verification_seconds: float = 0.0


@dataclass(frozen=True)
class HistogramResult:
    """A released HISTO answer: per-group noisy histograms."""

    groups: tuple[GroupHistogram, ...]
    metadata: QueryMetadata

    @property
    def kind(self) -> OutputKind:
        return OutputKind.HISTO

    def group(self, index: int) -> GroupHistogram:
        return self.groups[index]

    def total_mass(self) -> float:
        return sum(sum(g.counts) for g in self.groups)


@dataclass(frozen=True)
class GsumResult:
    """A released GSUM answer: one noisy clipped sum per group."""

    values: tuple[float, ...]
    metadata: QueryMetadata

    @property
    def kind(self) -> OutputKind:
        return OutputKind.GSUM

    def group(self, index: int) -> float:
        return self.values[index]


QueryResult = HistogramResult | GsumResult
