"""MyceliumSystem: the end-to-end orchestration and public API.

Lifecycle (§4.2, §5):

1. **Genesis** — a genesis committee generates the BGV key pair, the
   relinearization keys, and the Groth16 trusted setup *once*; the
   secret key is Shamir-shared (with Feldman commitments) to the first
   randomly elected user committee.  No per-query key generation ever
   happens again.
2. **Queries** — the analyst submits query text; the system parses,
   compiles, checks the privacy budget and HE feasibility, executes the
   vertex program over the (encrypted) graph, verifies proofs and
   aggregates at the aggregator, threshold-decrypts at the committee,
   adds in-MPC Laplace noise, and releases the result.
3. **Rotation** — after each query the committee redistributes the key
   shares to a freshly elected committee via extended VSR.

Typical use::

    system = MyceliumSystem.setup(num_devices=30, rng=random.Random(7))
    result = system.run_query(
        "SELECT HISTO(COUNT(*)) FROM neigh(1) WHERE dest.inf AND self.inf",
        graph=my_graph, epsilon=1.0,
    )
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import telemetry
from repro.core import committee as committee_mod
from repro.core.aggregator import QueryAggregator
from repro.core.results import (
    GsumResult,
    HistogramResult,
    QueryMetadata,
    QueryResult,
)
from repro.crypto import bgv, zksnark
from repro.dp.budget import PrivacyBudget
from repro.engine import histogram as histogram_mod
from repro.engine.encrypted import EncryptedExecutor, OriginSubmission
from repro.engine.malicious import Behavior
from repro.engine.plaintext import run_plaintext
from repro.engine.zkcircuits import build_circuits
from repro.errors import ProtocolError, QueryError
from repro.params import BGVProfile, SystemParameters, TEST
from repro.query import sensitivity as sensitivity_mod
from repro.query.ast import OutputKind
from repro.query.catalog import CatalogEntry
from repro.query.compiler import compile_query
from repro.query.parser import parse
from repro.query.plans import ExecutionPlan
from repro.query.schema import DEFAULT_SCHEMA, Schema
from repro.runtime import (
    RuntimeConfig,
    TaskFabric,
    backends,
    get_runtime_config,
)
from repro.workloads.graphgen import ContactGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mixnet.network import MixnetWorld


@dataclass
class MyceliumSystem:
    """A running deployment: keys, committee, budget, and parameters."""

    profile: BGVProfile
    params: SystemParameters
    schema: Schema
    public_key: bgv.PublicKey
    relin_keys: bgv.RelinKeySet
    zk: zksnark.Groth16System
    committee: committee_mod.Committee
    budget: PrivacyBudget
    rng: random.Random
    num_devices: int
    #: Kept only for test oracles; the deployed system never holds this
    #: outside the genesis ceremony.
    _genesis_secret: bgv.SecretKey | None = field(default=None, repr=False)
    query_log: list[QueryMetadata] = field(default_factory=list)

    # -- setup -----------------------------------------------------------------

    @classmethod
    def setup(
        cls,
        num_devices: int,
        rng: random.Random,
        profile: BGVProfile = TEST,
        params: SystemParameters | None = None,
        schema: Schema = DEFAULT_SCHEMA,
        committee_size: int = 3,
        committee_threshold: int = 2,
        total_epsilon: float = 10.0,
        max_relin_power: int | None = None,
        keep_genesis_secret: bool = True,
    ) -> MyceliumSystem:
        """Run the genesis ceremony and elect the first committee."""
        if params is None:
            params = SystemParameters(
                num_devices=num_devices,
                committee_size=committee_size,
                degree_bound=4,
                hops=2,
                replicas=2,
                forwarder_fraction=0.3,
            )
        with telemetry.span("system.setup", num_devices=num_devices):
            with telemetry.span("query.genesis"):
                secret, public = bgv.keygen(profile, rng)
                # Deferred relinearization means device outputs reach degree
                # ~|k-hop neighborhood|; cover it with margin.
                if max_relin_power is None:
                    neighborhood = 1 + sum(
                        params.degree_bound**i
                        for i in range(1, params.hops + 1)
                    )
                    max_relin_power = max(2, neighborhood + 2)
                relin = bgv.make_relin_keys(secret, max_relin_power, rng)
                zk = zksnark.Groth16System.setup(build_circuits(), rng)
                member_ids = committee_mod.elect_committee(
                    list(range(num_devices)), committee_size, rng
                )
                first_committee = committee_mod.genesis_share_key(
                    secret, member_ids, committee_threshold, rng
                )
        return cls(
            profile=profile,
            params=params,
            schema=schema,
            public_key=public,
            relin_keys=relin,
            zk=zk,
            committee=first_committee,
            budget=PrivacyBudget(total_epsilon),
            rng=rng,
            num_devices=num_devices,
            _genesis_secret=secret if keep_genesis_secret else None,
        )

    # -- compilation ---------------------------------------------------------

    def compile(self, query: str | CatalogEntry) -> ExecutionPlan:
        if isinstance(query, CatalogEntry):
            parsed = query.parsed()
        else:
            parsed = parse(query)
        plan = compile_query(parsed, self.params, self.schema)
        plan.validate_feasible(self.profile)
        return plan

    # -- query execution --------------------------------------------------------

    def run_query(
        self,
        query: str | CatalogEntry,
        graph: ContactGraph,
        epsilon: float,
        behaviors: dict[int, Behavior] | None = None,
        offline: set[int] | None = None,
        rotate: bool = False,
        noiseless: bool = False,
        world: MixnetWorld | None = None,
        runtime: RuntimeConfig | None = None,
        offline_store=None,
        submission_seed: int | None = None,
        quarantined: set[int] | None = None,
    ) -> QueryResult:
        """Execute one query end to end and release the noisy answer.

        ``noiseless=True`` skips the Laplace noise — a testing facility
        for comparing against the plaintext oracle; it does *not* charge
        less budget.

        ``world`` switches the execute phase from the in-process
        transport to the real mix network: graph vertex i must be mixnet
        device i, and contributions travel as onion-routed mailbox
        payloads (one-hop plans only; see
        :class:`repro.core.transport.MixnetTransport`).  ``offline`` is
        an in-process-transport facility and cannot be combined with it
        — mark devices offline on the world instead.

        ``runtime`` selects the parallel worker count and the compute
        backend for this query (defaults to the process-wide
        :func:`repro.runtime.get_runtime_config`).  Results are
        bit-identical at any worker count and across backends; see
        docs/PERFORMANCE.md.

        ``quarantined`` lists origins the suspicion ledger has demoted:
        they are treated as offline (their contribution defaults to
        ``Enc(x^0)``) and recorded in ``QueryMetadata`` so the analyst
        can see which devices were shed (docs/RESILIENCE.md).
        """
        config = runtime if runtime is not None else get_runtime_config()
        with backends.use_backend(config.backend), TaskFabric.from_config(
            config
        ) as fabric:
            return self._run_query_with_fabric(
                query, graph, epsilon, behaviors, offline, rotate,
                noiseless, world, fabric, shards=config.shards,
                offline_store=offline_store, submission_seed=submission_seed,
                quarantined=quarantined,
            )

    def _run_query_with_fabric(
        self,
        query: str | CatalogEntry,
        graph: ContactGraph,
        epsilon: float,
        behaviors: dict[int, Behavior] | None,
        offline: set[int] | None,
        rotate: bool,
        noiseless: bool,
        world: MixnetWorld | None,
        fabric: TaskFabric,
        shards: int = 1,
        offline_store=None,
        submission_seed: int | None = None,
        quarantined: set[int] | None = None,
    ) -> QueryResult:
        quarantined = set(quarantined or ())
        with telemetry.span("query.run", epsilon=epsilon) as query_span:
            with telemetry.span("query.compile"):
                plan = self.compile(query)
            label = str(plan.query)
            query_span.set_attribute("query", label)
            self.budget.charge(epsilon, label)

            if world is not None:
                if offline is not None or quarantined:
                    raise QueryError(
                        "offline=/quarantined= are the in-process "
                        "transport's churn model; mark devices offline "
                        "on the MixnetWorld"
                    )
                from repro.core.transport import MixnetTransport

                transport = MixnetTransport(
                    world=world,
                    graph=graph,
                    plan=plan,
                    public_key=self.public_key,
                    zk=self.zk,
                    rng=self.rng,
                )
                transport_start_round = world.current_round
                with telemetry.span("query.execute"):
                    submissions = transport.run(behaviors)
            else:
                effective_offline = set(offline or ()) | quarantined
                submissions = self.submit_phase(
                    plan, graph, self.rng, fabric,
                    behaviors=behaviors,
                    offline=effective_offline if effective_offline else offline,
                    offline_store=offline_store,
                    submission_seed=submission_seed,
                )
            aggregation = self.aggregate_phase(
                submissions, fabric, shards, offline_store=offline_store
            )

            injector = world.fault_injector if world is not None else None
            with telemetry.span("query.decrypt"):
                member_ids = [m.device_id for m in self.committee.members]
                decrypt_attempts = 1
                flagged: set[int] = set()
                if injector is not None and injector.plan.corrupt_committee:
                    injector.corrupt_members(member_ids)
                    if injector.plan.committee_dropouts:
                        schedule = injector.committee_schedule(member_ids)
                        plaintext, decrypt_attempts, flagged = (
                            committee_mod.robust_decrypt_with_liveness_retry(
                                self.committee,
                                aggregation.ciphertext,
                                self.rng,
                                schedule,
                                corrupt=injector.corrupt_partial,
                            )
                        )
                        if decrypt_attempts > 1:
                            telemetry.count(
                                "committee.decrypt.retries",
                                decrypt_attempts - 1,
                            )
                    else:
                        plaintext, flagged = (
                            committee_mod.robust_threshold_decrypt(
                                self.committee,
                                aggregation.ciphertext,
                                self.rng,
                                corrupt=injector.corrupt_partial,
                            )
                        )
                elif injector is not None and injector.plan.committee_dropouts:
                    schedule = injector.committee_schedule(member_ids)
                    plaintext, decrypt_attempts = (
                        committee_mod.decrypt_with_liveness_retry(
                            self.committee,
                            aggregation.ciphertext,
                            self.rng,
                            schedule,
                        )
                    )
                    if decrypt_attempts > 1:
                        telemetry.count(
                            "committee.decrypt.retries", decrypt_attempts - 1
                        )
                else:
                    plaintext = committee_mod.threshold_decrypt(
                        self.committee, aggregation.ciphertext, self.rng
                    )
                coefficients = [
                    plaintext.coeffs[i]
                    for i in range(plan.layout.total_coefficients)
                ]

            recovery = None
            num_complaints = 0
            if world is not None:
                complaint_texts = tuple(
                    c.decode("utf-8", errors="replace")
                    for c in world.complaints()
                )
                num_complaints = len(complaint_texts)
                if num_complaints:
                    telemetry.count(
                        "query.complaints.observed", num_complaints
                    )
                recovery = transport.recovery
                recovery.complaints = complaint_texts
                recovery.decrypt_attempts = decrypt_attempts
                recovery.flagged_members = tuple(sorted(flagged))
                recovery.crounds = world.current_round - transport_start_round
                if injector is not None:
                    recovery.faults_injected = injector.fault_counts()

            report = sensitivity_mod.analyze(plan)
            scale = 0.0 if noiseless else report.sensitivity / epsilon
            metadata = QueryMetadata(
                query_text=label,
                epsilon=epsilon,
                sensitivity=report.sensitivity,
                noise_scale=scale,
                contributing_origins=aggregation.num_accepted,
                rejected_origins=len(aggregation.rejected),
                committee_epoch=self.committee.epoch,
                verification_seconds=aggregation.verification_seconds,
                complaints=num_complaints,
                recovery=recovery,
                quarantined_origins=tuple(sorted(quarantined)),
                byzantine_origins=tuple(sorted(aggregation.rejected)),
            )
            with telemetry.span("query.release"):
                result = self._release(plan, coefficients, scale, metadata)
            self.query_log.append(metadata)
            if rotate:
                with telemetry.span("query.rotate"):
                    self.rotate_committee()
            return result

    # -- explicit query phases -----------------------------------------------
    #
    # The durable campaign runner (repro.durability) drives these same
    # phase methods one at a time, journaling each boundary; run_query
    # above is the single-shot composition.  Every method is a pure
    # function of its arguments plus the system's long-lived state, so a
    # resumed process that rebuilds the system and replays the journal
    # re-enters any phase bit-identically.

    def submit_phase(
        self,
        plan: ExecutionPlan,
        graph: ContactGraph,
        rng: random.Random,
        fabric: TaskFabric,
        behaviors: dict[int, Behavior] | None = None,
        offline: set[int] | None = None,
        offline_store=None,
        submission_seed: int | None = None,
    ) -> list[OriginSubmission]:
        """Per-origin encrypted execution over the in-process transport.

        ``offline_store`` supplies precomputed leaf-encryption pools
        (:mod:`repro.offline`); ``submission_seed`` pins the run's master
        seed so a caller holding the offline phase's seed prediction can
        bind the run to its pools.  Both default to the inline path,
        which is bit-identical.
        """
        with telemetry.span("query.execute"):
            executor = EncryptedExecutor(
                plan,
                self.public_key,
                self.zk,
                rng,
                fabric=fabric,
                offline_store=offline_store,
            )
            return executor.run(
                graph,
                behaviors=behaviors,
                offline=offline,
                master_seed=submission_seed,
            )

    def aggregate_phase(
        self,
        submissions: list[OriginSubmission],
        fabric: TaskFabric,
        shards: int = 1,
        offline_store=None,
    ):
        """Proof verification + relinearized summation at the aggregator.

        ``shards > 1`` routes through K independent shard aggregators
        and the claim-checked root reduction (docs/SHARDING.md); the
        result is bit-identical to the flat path at any K, so the shard
        count — like the worker count and backend — is a runtime knob,
        never part of a query's identity.

        ``offline_store`` swaps the relinearization keys for their
        :class:`~repro.crypto.bgv.PreparedRelinKeySet` wrapper, whose
        forward-transformed pieces the offline phase warmed — same
        ciphertext bytes, fewer online transforms.
        """
        relin_keys = self.relin_keys
        if offline_store is not None:
            relin_keys = offline_store.relin_for(relin_keys)
        with telemetry.span("query.aggregate"):
            if shards > 1:
                from repro.sharding import ShardedAggregator

                aggregator = ShardedAggregator(
                    zk=self.zk,
                    relin_keys=relin_keys,
                    num_shards=shards,
                    fabric=fabric,
                )
            else:
                aggregator = QueryAggregator(
                    zk=self.zk, relin_keys=relin_keys, fabric=fabric
                )
            aggregation = aggregator.aggregate(submissions)
        if aggregation.ciphertext is None:
            raise ProtocolError("no valid contributions to aggregate")
        return aggregation

    def decrypt_phase(
        self,
        plan: ExecutionPlan,
        ciphertext: bgv.Ciphertext,
        rng: random.Random,
        participating: list[int] | None = None,
    ) -> list[int]:
        """Threshold decryption down to the plan's coefficient vector."""
        with telemetry.span("query.decrypt"):
            plaintext = committee_mod.threshold_decrypt(
                self.committee, ciphertext, rng, participating=participating
            )
            return [
                plaintext.coeffs[i]
                for i in range(plan.layout.total_coefficients)
            ]

    def robust_decrypt_phase(
        self,
        plan: ExecutionPlan,
        ciphertext: bgv.Ciphertext,
        rng: random.Random,
        participating: list[int] | None = None,
        corrupt=None,
    ) -> tuple[list[int], set[int]]:
        """Single-pass robust decryption: same coefficients as
        :meth:`decrypt_phase` plus the flagged (lying) device ids.
        ``corrupt`` is the injector's per-value corruption hook."""
        with telemetry.span("query.decrypt"):
            plaintext, flagged = committee_mod.robust_threshold_decrypt(
                self.committee,
                ciphertext,
                rng,
                corrupt=corrupt,
                participating=participating,
            )
            return [
                plaintext.coeffs[i]
                for i in range(plan.layout.total_coefficients)
            ], flagged

    def compute_noise(
        self, plan: ExecutionPlan, coefficients: list[int], scale: float
    ) -> list[list[float]]:
        """The committee's in-MPC Laplace draws, one list per output group.

        Deterministic given the committee epoch (the member seed shares
        are derived from device id XOR epoch), so replaying this phase
        after a crash reproduces the exact noise.
        """
        if plan.output is OutputKind.HISTO:
            groups = histogram_mod.decode_histogram(coefficients, plan)
            return [
                committee_mod.committee_noise(
                    self.committee, len(group.counts), scale
                )
                if scale
                else [0.0] * len(group.counts)
                for group in groups
            ]
        values = histogram_mod.decode_gsum(coefficients, plan)
        return [
            committee_mod.committee_noise(self.committee, len(values), scale)
            if scale
            else [0.0] * len(values)
        ]

    def release_with_noise(
        self,
        plan: ExecutionPlan,
        coefficients: list[int],
        noise: list[list[float]],
        metadata: QueryMetadata,
    ) -> QueryResult:
        """Decode the plaintext coefficients and apply precomputed noise."""
        if plan.output is OutputKind.HISTO:
            groups = histogram_mod.decode_histogram(coefficients, plan)
            noised = [
                histogram_mod.GroupHistogram(
                    group=group.group,
                    counts=tuple(
                        c + n for c, n in zip(group.counts, group_noise)
                    ),
                    bin_edges=group.bin_edges,
                )
                for group, group_noise in zip(groups, noise)
            ]
            return HistogramResult(groups=tuple(noised), metadata=metadata)
        values = histogram_mod.decode_gsum(coefficients, plan)
        return GsumResult(
            values=tuple(v + n for v, n in zip(values, noise[0])),
            metadata=metadata,
        )

    def _release(
        self,
        plan: ExecutionPlan,
        coefficients: list[int],
        scale: float,
        metadata: QueryMetadata,
    ) -> QueryResult:
        """Committee-side final processing: decode, noise, release."""
        noise = self.compute_noise(plan, coefficients, scale)
        return self.release_with_noise(plan, coefficients, noise, metadata)

    # -- committee lifecycle -----------------------------------------------------

    def rotate_committee(
        self, corrupt_dealers: set[int] | None = None
    ) -> None:
        """VSR handoff to a freshly elected committee (§4.2)."""
        new_members = committee_mod.elect_committee(
            list(range(self.num_devices)), self.committee.size, self.rng
        )
        self.committee = committee_mod.rotate_committee(
            self.committee,
            new_members,
            self.committee.threshold,
            self.rng,
            corrupt_dealers=corrupt_dealers,
        )

    # -- oracles ------------------------------------------------------------------

    def plaintext_answer(
        self, query: str | CatalogEntry, graph: ContactGraph
    ):
        """The noise-free reference answer (testing / evaluation only)."""
        plan = self.compile(query)
        return run_plaintext(plan, graph)
