"""System orchestration: :class:`repro.core.system.MyceliumSystem` ties
keys, committees, budget, engines, and aggregation together;
:mod:`repro.core.analyst` adds budget-aware sessions and
:mod:`repro.core.transport` runs queries over the real mix network.
"""
