"""The analyst's session API (§2: "the aggregator works with at least
one analyst, who formulates the queries to be run").

:class:`Analyst` wraps a :class:`~repro.core.system.MyceliumSystem` with
the workflow a study actually follows: plan queries against the budget
before spending it, run them, and keep a structured record of what was
asked and released.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.results import QueryResult
from repro.core.system import MyceliumSystem
from repro.dp.budget import queries_supported
from repro.engine.malicious import Behavior
from repro.errors import PrivacyBudgetExceeded
from repro.query import sensitivity
from repro.query.catalog import CatalogEntry
from repro.query.plans import ExecutionPlan
from repro.workloads.graphgen import ContactGraph


@dataclass(frozen=True)
class QueryPreview:
    """What a query will cost, before committing budget to it."""

    query_text: str
    epsilon: float
    sensitivity: float
    noise_scale: float
    ciphertexts_per_contribution: int
    multiplications: int
    affordable: bool


@dataclass
class Analyst:
    """A budget-aware query session."""

    system: MyceliumSystem
    name: str = "analyst"
    released: list[tuple[QueryPreview, QueryResult]] = field(
        default_factory=list
    )

    def preview(self, query: str | CatalogEntry, epsilon: float) -> QueryPreview:
        """Plan a query without running it: sensitivity, noise scale,
        message cost, and whether the remaining budget affords it."""
        plan = self.system.compile(query)
        report = sensitivity.analyze(plan)
        return QueryPreview(
            query_text=str(plan.query),
            epsilon=epsilon,
            sensitivity=report.sensitivity,
            noise_scale=report.sensitivity / epsilon,
            ciphertexts_per_contribution=plan.ciphertexts_per_contribution,
            multiplications=plan.multiplications,
            affordable=self.system.budget.can_afford(epsilon),
        )

    def ask(
        self,
        query: str | CatalogEntry,
        graph: ContactGraph,
        epsilon: float,
        behaviors: dict[int, Behavior] | None = None,
        offline: set[int] | None = None,
        rotate: bool = False,
    ) -> QueryResult:
        """Run a query and record the release."""
        preview = self.preview(query, epsilon)
        if not preview.affordable:
            raise PrivacyBudgetExceeded(
                f"{self.name}: epsilon={epsilon} exceeds the remaining "
                f"budget of {self.system.budget.remaining:.3f}"
            )
        result = self.system.run_query(
            query,
            graph,
            epsilon,
            behaviors=behaviors,
            offline=offline,
            rotate=rotate,
        )
        self.released.append((preview, result))
        return result

    @property
    def remaining_budget(self) -> float:
        return self.system.budget.remaining

    def queries_left(self, per_query_epsilon: float) -> int:
        """How many more queries of this epsilon the budget supports
        under sequential composition."""
        if per_query_epsilon <= 0:
            return 0
        return queries_supported(self.remaining_budget, per_query_epsilon)

    def study_summary(self) -> list[dict]:
        """A structured log of the session, suitable for reporting."""
        return [
            {
                "query": preview.query_text,
                "epsilon": preview.epsilon,
                "sensitivity": preview.sensitivity,
                "contributing": result.metadata.contributing_origins,
                "rejected": result.metadata.rejected_origins,
            }
            for preview, result in self.released
        ]
