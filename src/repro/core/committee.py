"""Committees: threshold decryption, in-MPC noise, and VSR rotation
(§4.2, §5).

The BGV decryption key never exists in one place after genesis: each
committee holds Shamir shares of the secret ring element s (one sharing
per coefficient, over the prime field Z_q).  Because decryption of a
degree-1 ciphertext is *linear* in s —

    m = ((c0 + c1 * s) mod q centered) mod t

— each member computes a partial decryption c1 * s_i locally and any
``threshold`` of them recombine with Lagrange coefficients, which is
exactly the arithmetic the paper's SCALE-MAMBA MPC performs.  Members
add t-multiples of small smudging noise to their partials so the
recombination transcript hides s.

Laplace noise for differential privacy is sampled *inside* the MPC: each
member contributes a secret seed share, the XOR of all shares drives the
sampler, and only the noised aggregate leaves the committee.

Between queries the committee hands the key to its successor with
extended VSR (:mod:`repro.crypto.vsr`) — key generation happens once,
at genesis, no matter how many queries run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import telemetry
from repro.telemetry import clock
from repro.crypto import bgv, feldman, robust, shamir, vsr
from repro.crypto.polyring import RingElement
from repro.dp.laplace import sample_laplace
from repro.errors import (
    LivenessQuorumError,
    ProtocolError,
    SecretSharingError,
)
from repro.params import BGVProfile


@dataclass
class CommitteeMember:
    """One member's private state."""

    device_id: int
    share_index: int
    key_share: shamir.VectorShare


@dataclass
class Committee:
    """A committee epoch: members plus the verifiable sharing state."""

    profile: BGVProfile
    members: list[CommitteeMember]
    threshold: int
    commitments: list[feldman.PolynomialCommitment]
    epoch: int = 0

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def group(self) -> feldman.CommitmentGroup:
        return self.commitments[0].group

    def verify_member_shares(self, member: CommitteeMember) -> bool:
        """Feldman verification of every coefficient share."""
        for coeff_index, commitment in enumerate(self.commitments):
            share = shamir.Share(
                member.share_index, member.key_share.values[coeff_index]
            )
            if not commitment.verify_share(share):
                return False
        return True


def elect_committee(
    population: list[int], size: int, rng: random.Random
) -> list[int]:
    """Randomly elect committee devices from the population (§4.2)."""
    if size > len(population):
        raise ProtocolError("population smaller than the committee size")
    return sorted(rng.sample(population, size))


def genesis_share_key(
    secret: bgv.SecretKey,
    member_ids: list[int],
    threshold: int,
    rng: random.Random,
) -> Committee:
    """The genesis committee's one-time deal: share every coefficient of
    s to the first committee with Feldman commitments."""
    profile = secret.profile
    q = profile.q
    group = feldman.group_for_field(q)
    coefficients = list(secret.s.coeffs)
    per_member_values: list[list[int]] = [[] for _ in member_ids]
    commitments = []
    for value in coefficients:
        dealt = vsr.deal_initial(value, threshold, len(member_ids), group, rng)
        commitments.append(dealt.commitment)
        for i, share in enumerate(dealt.shares):
            per_member_values[i].append(share.value)
    members = [
        CommitteeMember(
            device_id=device,
            share_index=i + 1,
            key_share=shamir.VectorShare(i + 1, tuple(per_member_values[i])),
        )
        for i, device in enumerate(member_ids)
    ]
    return Committee(
        profile=profile,
        members=members,
        threshold=threshold,
        commitments=commitments,
    )


# ---------------------------------------------------------------------------
# Threshold decryption
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PartialDecryption:
    """One member's lambda_i * c1 * s_i + t * e_i, a ring element.

    The Lagrange coefficient is applied by the member itself (the
    participating set, hence lambda_i, is public) so the smudging term
    t * e_i stays *small* in the combined phase — scaling the smudge by
    lambda afterwards would blow it past the noise bound.
    """

    share_index: int
    value: RingElement


def partial_decrypt(
    member: CommitteeMember,
    ciphertext: bgv.Ciphertext,
    profile: BGVProfile,
    lagrange_coefficient: int,
    rng: random.Random,
) -> PartialDecryption:
    """Local computation on a member's share — no interaction needed
    because decryption is linear in the key."""
    if ciphertext.degree != 1:
        raise ProtocolError(
            "threshold decryption needs a relinearized (degree-1) ciphertext"
        )
    ring = profile.ring
    share_poly = RingElement.from_coeffs(ring, list(member.key_share.values))
    smudge = RingElement.random_bounded(ring, profile.error_bound, rng)
    value = (ciphertext.components[1] * share_poly).scale(
        lagrange_coefficient
    ) + smudge.scale(profile.t)
    return PartialDecryption(share_index=member.share_index, value=value)


def combine_partials(
    ciphertext: bgv.Ciphertext,
    partials: list[PartialDecryption],
    profile: BGVProfile,
) -> RingElement:
    """Sum the (already lambda-scaled) partials and reduce to the
    plaintext."""
    if len(partials) < 1:
        raise SecretSharingError("no partial decryptions")
    acc = ciphertext.components[0]
    for partial in partials:
        acc = acc + partial.value
    plain = acc.lift_mod(profile.t)
    return RingElement.from_coeffs(profile.plaintext_ring, plain)


def threshold_decrypt(
    committee: Committee,
    ciphertext: bgv.Ciphertext,
    rng: random.Random,
    participating: list[int] | None = None,
) -> RingElement:
    """Full decryption flow with any ``threshold`` members online."""
    start = clock.perf_counter()
    members = committee.members
    if participating is not None:
        members = [m for m in members if m.device_id in participating]
    if len(members) < committee.threshold:
        raise LivenessQuorumError(
            f"only {len(members)} members available, need "
            f"{committee.threshold} for liveness"
        )
    chosen = members[: committee.threshold]
    lagrange = shamir.lagrange_coefficients_at_zero(
        [m.share_index for m in chosen], committee.profile.q
    )
    partials = [
        partial_decrypt(
            member,
            ciphertext,
            committee.profile,
            lagrange[member.share_index],
            rng,
        )
        for member in chosen
    ]
    plaintext = combine_partials(ciphertext, partials, committee.profile)
    telemetry.count("committee.decrypt.partials", len(partials))
    telemetry.observe(
        "committee.decrypt.seconds", clock.perf_counter() - start
    )
    return plaintext


def decrypt_with_liveness_retry(
    committee: Committee,
    ciphertext: bgv.Ciphertext,
    rng: random.Random,
    availability_schedule: list[list[int]],
) -> tuple[RingElement, int]:
    """§6.5: "If there aren't enough members for liveness, we simply
    have to wait for some amount of time before enough members are back,
    and retry the computation."

    ``availability_schedule[i]`` lists the member device ids online in
    attempt i.  Returns (plaintext, attempts used); raises
    :class:`~repro.errors.LivenessQuorumError` if the schedule ends
    without a quorum.

    Only liveness misses are retried.  Any *other* ``ProtocolError`` —
    a malformed ciphertext, a decode failure under corruption —
    propagates immediately: retrying with the same members cannot fix a
    lie, and silently waiting would mask a Byzantine fault as churn.
    """
    for attempt, online in enumerate(availability_schedule, start=1):
        try:
            plaintext = threshold_decrypt(
                committee, ciphertext, rng, participating=online
            )
        except LivenessQuorumError:
            continue
        return plaintext, attempt
    raise LivenessQuorumError(
        "no attempt reached the liveness quorum of "
        f"{committee.threshold} members"
    )


def shared_smudge_shares(
    members: list[CommitteeMember],
    profile: BGVProfile,
    threshold: int,
    rng: random.Random,
) -> dict[int, RingElement]:
    """Shamir shares of one jointly-sampled smudging element.

    For robust decoding the partials themselves must form a Reed-Solomon
    codeword, so per-member *independent* smudging noise is out — it
    would add a random offset at every index and look like n errors.
    Instead the committee samples the smudge **inside the MPC** (the
    paper's SCALE-MAMBA committee already runs joint sampling for the
    Laplace noise, §5): one small ring element E plus ``threshold - 1``
    uniform masking elements U_d define the share polynomial
    ``E + sum_d U_d * x^d`` per ring coefficient, and member i holds its
    evaluation at ``x = share_index_i``.  The shares stay uniform below
    the threshold while the codeword property — degree < threshold with
    constant term E — is preserved.  We simulate the joint sampling with
    the coordinator's seeded rng.
    """
    ring = profile.ring
    q = profile.q
    small = RingElement.random_bounded(ring, profile.error_bound, rng)
    masks = [
        RingElement.random_uniform(ring, rng) for _ in range(threshold - 1)
    ]
    shares: dict[int, RingElement] = {}
    for member in members:
        acc = small
        x = member.share_index
        for d, mask in enumerate(masks, start=1):
            acc = acc + mask.scale(pow(x, d, q))
        shares[member.share_index] = acc
    return shares


def robust_partial_decrypt(
    member: CommitteeMember,
    ciphertext: bgv.Ciphertext,
    profile: BGVProfile,
    smudge_share: RingElement,
) -> PartialDecryption:
    """One member's *codeword* partial: ``c1 * s_i + t * e_i``.

    Unlike :func:`partial_decrypt` no Lagrange coefficient is applied —
    the robust decoder interpolates through the raw share evaluations,
    so coefficient j of the returned value is h_j(share_index) for the
    degree-(t-1) polynomial h_j with h_j(0) = (c1*s)_j + t*E_j.
    """
    if ciphertext.degree != 1:
        raise ProtocolError(
            "threshold decryption needs a relinearized (degree-1) ciphertext"
        )
    ring = profile.ring
    share_poly = RingElement.from_coeffs(ring, list(member.key_share.values))
    value = (ciphertext.components[1] * share_poly) + smudge_share.scale(
        profile.t
    )
    return PartialDecryption(share_index=member.share_index, value=value)


def robust_threshold_decrypt(
    committee: Committee,
    ciphertext: bgv.Ciphertext,
    rng: random.Random,
    corrupt_members: set[int] | None = None,
    corrupt=None,
    participating: list[int] | None = None,
) -> tuple[RingElement, set[int]]:
    """Actively-secure decryption in a single pass (§5).

    With Shamir sharing at threshold t < C/2 the secret is
    over-determined: each ring coefficient of the members' partials is a
    Reed-Solomon codeword, so Gao decoding reconstructs the plaintext
    through up to ``(n - t) // 2`` wrong partials and identifies exactly
    the lying members — no subset enumeration, no identification
    round-trip.  All ``ring.n`` coefficients are opened as one batch
    against the same share-index set, paying for a single error-locator
    computation (:func:`repro.crypto.robust.batch_robust_reconstruct`).

    ``corrupt_members`` injects a simple deterministic perturbation for
    those device ids (tests); ``corrupt`` is an injector-style callable
    ``(device_id, value) -> value`` applied to every partial — the
    :meth:`repro.faults.injector.FaultInjector.corrupt_partial` fault
    kind.  Returns ``(plaintext, flagged device ids)``; raises
    :class:`~repro.errors.RobustDecodingError` if more members lie than
    the code can correct (never a wrong plaintext).
    """
    start = clock.perf_counter()
    members = committee.members
    if participating is not None:
        members = [m for m in members if m.device_id in participating]
    if len(members) < committee.threshold + 1:
        raise ProtocolError(
            "error detection needs more members than the threshold"
        )
    profile = committee.profile
    ring = profile.ring
    with telemetry.span(
        "committee.robust_decode",
        members=len(members),
        width=ring.n,
    ):
        smudges = shared_smudge_shares(
            members, profile, committee.threshold, rng
        )
        bad = corrupt_members or set()
        partials: list[PartialDecryption] = []
        for member in members:
            partial = robust_partial_decrypt(
                member, ciphertext, profile, smudges[member.share_index]
            )
            value = partial.value
            if member.device_id in bad:
                value = value + RingElement.constant(
                    ring, member.device_id + 1
                )
            if corrupt is not None:
                value = corrupt(member.device_id, value)
            partials.append(
                PartialDecryption(member.share_index, value)
            )
        indices = [p.share_index for p in partials]
        rows = [
            [p.value.coeffs[j] for p in partials] for j in range(ring.n)
        ]
        secrets, flagged_indices, stats = robust.batch_robust_reconstruct(
            indices, rows, committee.threshold, profile.q
        )
        coeffs = [
            (c0 + s) % profile.q
            for c0, s in zip(ciphertext.components[0].coeffs, secrets)
        ]
        plain = RingElement.from_coeffs(ring, coeffs).lift_mod(profile.t)
        plaintext = RingElement.from_coeffs(profile.plaintext_ring, plain)
        device_by_index = {m.share_index: m.device_id for m in members}
        flagged = {device_by_index[i] for i in flagged_indices}
        telemetry.count("committee.decrypt.partials", len(partials))
        telemetry.count(
            "committee.robust.errors", stats.errors_corrected
        )
        telemetry.observe("committee.robust.batch_width", stats.width)
        if stats.locator_computations > 1:
            telemetry.count(
                "committee.robust.fallbacks",
                stats.locator_computations - 1,
            )
        telemetry.observe(
            "committee.robust.decode.seconds", clock.perf_counter() - start
        )
    return plaintext, flagged


def robust_decrypt_with_liveness_retry(
    committee: Committee,
    ciphertext: bgv.Ciphertext,
    rng: random.Random,
    availability_schedule: list[list[int]],
    corrupt=None,
) -> tuple[RingElement, int, set[int]]:
    """Liveness retry *and* corruption tolerance in one loop.

    Each attempt needs ``threshold + 1`` members online (error
    detection needs redundancy); attempts short of that are liveness
    misses and simply wait (§6.5).  Once a quorum is present the robust
    decode runs: lying members are corrected through and flagged — the
    emergency-reshare trigger's input — while a
    :class:`~repro.errors.RobustDecodingError` (too many liars among
    the *present* members) propagates immediately instead of being
    retried as if it were churn.  Returns
    ``(plaintext, attempts, flagged device ids)``.
    """
    needed = committee.threshold + 1
    for attempt, online in enumerate(availability_schedule, start=1):
        present = [
            m.device_id
            for m in committee.members
            if m.device_id in online
        ]
        if len(present) < needed:
            continue
        plaintext, flagged = robust_threshold_decrypt(
            committee,
            ciphertext,
            rng,
            corrupt=corrupt,
            participating=present,
        )
        return plaintext, attempt, flagged
    raise LivenessQuorumError(
        f"no attempt reached the robust quorum of {needed} members"
    )


# ---------------------------------------------------------------------------
# In-MPC noise generation
# ---------------------------------------------------------------------------


def committee_noise(
    committee: Committee,
    num_values: int,
    scale: float,
    member_seeds: dict[int, int] | None = None,
) -> list[float]:
    """Laplace draws agreed inside the MPC.

    Each member contributes a seed share; the XOR of shares seeds the
    sampler, so no single member (or the aggregator) controls or
    predicts the noise.
    """
    seeds = member_seeds or {
        m.device_id: random.Random(m.device_id ^ committee.epoch).getrandbits(64)
        for m in committee.members
    }
    combined = 0
    for seed in seeds.values():
        combined ^= seed
    rng = random.Random(combined)
    telemetry.count("committee.noise.samples", num_values)
    return [sample_laplace(scale, rng) for _ in range(num_values)]


# ---------------------------------------------------------------------------
# VSR rotation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RotationProposal:
    """The *deal* half of a VSR handoff, before anything commits.

    Holds every dealer's :class:`~repro.crypto.vsr.RedistributionPackage`
    for every key coefficient.  Nothing in the old committee changes when
    a proposal exists — the old sharing stays authoritative until
    :func:`commit_rotation` verifies a quorum of dealers and atomically
    swaps in the new epoch.  A coordinator that crashes mid-handoff can
    therefore simply re-deal (the deal is a pure function of the rng) and
    retry the commit.
    """

    new_member_ids: tuple[int, ...]
    new_threshold: int
    #: Device ids of the old members who actually dealt.
    dealer_ids: tuple[int, ...]
    #: ``packages[coeff][d]`` is dealer ``dealer_ids[d]``'s package for
    #: key coefficient ``coeff``.
    packages: tuple[tuple[vsr.RedistributionPackage, ...], ...]


def deal_rotation(
    committee: Committee,
    new_member_ids: list[int],
    new_threshold: int,
    rng: random.Random,
    dealer_ids: list[int] | None = None,
    corrupt_dealers: set[int] | None = None,
    crashed_dealers: dict[int, int] | None = None,
) -> RotationProposal:
    """Step 1 of the handoff: every dealer re-shares each coefficient.

    ``dealer_ids`` restricts dealing to a subset of the old committee
    (emergency resharing uses only the *live* members); default is every
    member.  ``corrupt_dealers`` deal a perturbed value (detected by the
    Feldman checks at verify time).  ``crashed_dealers`` maps a dealer
    device id to the number of new members its subshares reached before
    it died — the partial packages are published as-is and must be
    excluded by the agreement step, never half-used.
    """
    dealers = [
        m
        for m in committee.members
        if dealer_ids is None or m.device_id in dealer_ids
    ]
    if not dealers:
        raise ProtocolError("no dealers available for the handoff")
    corrupt = corrupt_dealers or set()
    crashed = crashed_dealers or {}
    new_size = len(new_member_ids)
    packages: list[tuple[vsr.RedistributionPackage, ...]] = []
    for coeff_index in range(len(committee.commitments)):
        row = []
        for member in dealers:
            share = shamir.Share(
                member.share_index, member.key_share.values[coeff_index]
            )
            package = vsr.redistribute_share(
                share, new_threshold, new_size, committee.group, rng
            )
            if member.device_id in corrupt:
                # A Byzantine dealer re-shares a *different* value.
                package = vsr.redistribute_share(
                    shamir.Share(
                        share.index, (share.value + 1) % committee.group.order
                    ),
                    new_threshold,
                    new_size,
                    committee.group,
                    rng,
                )
            if member.device_id in crashed:
                # The dealer died mid-send: only the first ``reached``
                # new members (in fixed index order) hold a subshare.
                reached = crashed[member.device_id]
                package = vsr.RedistributionPackage(
                    dealer_index=package.dealer_index,
                    commitment=package.commitment,
                    subshares={
                        j: v
                        for j, v in package.subshares.items()
                        if j <= reached
                    },
                )
            row.append(package)
        packages.append(tuple(row))
    return RotationProposal(
        new_member_ids=tuple(new_member_ids),
        new_threshold=new_threshold,
        dealer_ids=tuple(m.device_id for m in dealers),
        packages=tuple(packages),
    )


def agreed_dealer_sets(
    committee: Committee, proposal: RotationProposal
) -> list[list[vsr.RedistributionPackage]]:
    """Step 2 of the handoff: bulletin-board agreement on the dealers.

    A dealer's package counts only if **every** new member verifies it —
    subshare present, on the committed polynomial, and consistent with
    the old epoch commitment.  This is the torn-state guard: a dealer
    that crashed after sending subshares to a subset of the new
    committee is excluded for *everyone*, so all new shares lie on the
    same combined polynomial.  Raises if any coefficient is left with
    fewer than ``threshold`` agreed dealers.

    Verification is batched: the member-index set is identical for
    every dealer and every key coefficient, so one
    :class:`~repro.crypto.robust.BatchOpener` amortizes the Lagrange
    setup across the whole proposal and
    :func:`repro.crypto.vsr.batch_verify_packages` replaces the
    per-member Feldman loop with two group checks per dealer.
    """
    new_size = len(proposal.new_member_ids)
    opener = robust.BatchOpener(
        range(1, new_size + 1),
        proposal.new_threshold,
        committee.group.order,
    )
    agreed: list[list[vsr.RedistributionPackage]] = []
    for coeff_index, old_commitment in enumerate(committee.commitments):
        row = list(proposal.packages[coeff_index])
        verdicts = vsr.batch_verify_packages(
            row,
            old_commitment,
            new_size,
            proposal.new_threshold,
            committee.group,
            opener=opener,
        )
        valid = [p for p, ok in zip(row, verdicts) if ok]
        if len(valid) < committee.threshold:
            raise SecretSharingError(
                f"coefficient {coeff_index}: only {len(valid)} dealers "
                f"verified by all new members, need {committee.threshold}; "
                "old committee stays authoritative"
            )
        agreed.append(valid)
    return agreed


def commit_rotation(
    committee: Committee, proposal: RotationProposal
) -> Committee:
    """Steps 3-4 of the handoff: combine and atomically install.

    Runs the agreement check, derives every new member's share from the
    *same* agreed dealer set, and returns the new epoch.  Raises (and
    leaves the old committee untouched) unless every coefficient has at
    least ``threshold`` dealers verified by all new members — the
    handoff either fully commits or does not happen at all.
    """
    agreed = agreed_dealer_sets(committee, proposal)
    group = committee.group
    per_member_values: list[list[int]] = [
        [] for _ in proposal.new_member_ids
    ]
    new_commitments = []
    for valid in agreed:
        new_commitment = None
        for i in range(len(proposal.new_member_ids)):
            share, new_commitment = vsr.combine_packages(
                valid, i + 1, committee.threshold, group
            )
            per_member_values[i].append(share.value)
        assert new_commitment is not None
        new_commitments.append(new_commitment)
    members = [
        CommitteeMember(
            device_id=device,
            share_index=i + 1,
            key_share=shamir.VectorShare(i + 1, tuple(per_member_values[i])),
        )
        for i, device in enumerate(proposal.new_member_ids)
    ]
    telemetry.count("committee.rotations.total")
    return Committee(
        profile=committee.profile,
        members=members,
        threshold=proposal.new_threshold,
        commitments=new_commitments,
        epoch=committee.epoch + 1,
    )


def rotate_committee(
    committee: Committee,
    new_member_ids: list[int],
    new_threshold: int,
    rng: random.Random,
    corrupt_dealers: set[int] | None = None,
    dealer_ids: list[int] | None = None,
    crashed_dealers: dict[int, int] | None = None,
) -> Committee:
    """Hand the key to the next committee with extended VSR (§4.2).

    Every coefficient sharing is redistributed; cheating or crashed old
    members are detected by the bulletin-board agreement inside
    :func:`agreed_dealer_sets` and excluded for every new member alike.
    """
    start = clock.perf_counter()
    proposal = deal_rotation(
        committee,
        new_member_ids,
        new_threshold,
        rng,
        dealer_ids=dealer_ids,
        corrupt_dealers=corrupt_dealers,
        crashed_dealers=crashed_dealers,
    )
    new_committee = commit_rotation(committee, proposal)
    telemetry.observe(
        "committee.rotate.seconds", clock.perf_counter() - start
    )
    return new_committee
