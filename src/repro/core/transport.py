"""Running a query over the real mix network (§3 + §4 together).

The in-process transport used by :meth:`MyceliumSystem.run_query` hands
ciphertexts between devices with function calls.  This module is the
full-stack alternative: graph vertices map one-to-one onto mixnet
devices, every vertex telescopes onion paths to each of its d neighbor
slots (padding with self-loops to hide its degree, §3.2), the query
floods as onion-routed mailbox payloads, and neighbors send their
encrypted contributions back the same way.  The aggregator then
verifies, aggregates, and hands the result to the committee exactly as
in the in-process flow.

Wire formats (inside the end-to-end AE envelope):

* query:    "Q" || origin primary handle (32 bytes)
* response: "R" || sender primary handle || count ||
            count * [ len | ciphertext | Groth16 token ]

Receivers rebuild the ZKP statements from the ciphertexts themselves
(the statement is a public function of ciphertext, key, and plan), so
only the 192-byte proof tokens travel.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field

from repro.crypto import bgv, zksnark
from repro.engine import semantics, zkcircuits
from repro.engine.encrypted import (
    EncryptedExecutor,
    LeafMessage,
    OriginSubmission,
    dest_compute,
    leaf_max_exponent,
)
from repro.engine.malicious import Behavior
from repro.errors import ProtocolError, UnsupportedQueryError
from repro.faults.report import RecoveryReport
from repro.mixnet.forwarding import ForwardingDriver, SendRequest
from repro.mixnet.network import MixnetWorld
from repro.mixnet.telescope import TelescopeDriver
from repro.query.plans import ExecutionPlan
from repro.workloads.graphgen import ContactGraph

_TAG_QUERY = b"Q"
_TAG_RESPONSE = b"R"


def _frame(content: bytes) -> bytes:
    """Length-prefix a payload so mailbox padding (which may not be
    stripped safely — proofs and ciphertexts can end in zero bytes) is
    unambiguous."""
    return struct.pack(">I", len(content)) + content


def _unframe(payload: bytes) -> bytes | None:
    if len(payload) < 4:
        return None
    (length,) = struct.unpack(">I", payload[:4])
    if length == 0 or len(payload) < 4 + length:
        return None
    return payload[4 : 4 + length]


def encode_response(messages: list[LeafMessage], sender_handle: bytes) -> bytes:
    chunks = [_TAG_RESPONSE, sender_handle, struct.pack(">H", len(messages))]
    for message in messages:
        ct_bytes = message.ciphertext.serialize()
        chunks.append(struct.pack(">I", len(ct_bytes)))
        chunks.append(ct_bytes)
        chunks.append(message.proof.token)
    return b"".join(chunks)


def decode_response(
    payload: bytes,
    plan: ExecutionPlan,
    pk: bgv.PublicKey,
    profile,
) -> tuple[bytes, list[LeafMessage]] | None:
    """Parse a response payload; returns (sender handle, messages)."""
    if not payload.startswith(_TAG_RESPONSE) or len(payload) < 35:
        return None
    sender = payload[1:33]
    (count,) = struct.unpack(">H", payload[33:35])
    offset = 35
    messages = []
    max_exponent = leaf_max_exponent(plan)
    for _ in range(count):
        (ct_len,) = struct.unpack(">I", payload[offset : offset + 4])
        offset += 4
        ciphertext = bgv.Ciphertext.deserialize(
            payload[offset : offset + ct_len], profile
        )
        offset += ct_len
        token = payload[offset : offset + zksnark.PROOF_BYTES]
        offset += zksnark.PROOF_BYTES
        statement = zkcircuits.leaf_statement(ciphertext, pk, max_exponent)
        proof = zksnark.Proof(
            circuit=zkcircuits.LEAF_CIRCUIT,
            statement_digest=statement.digest(),
            token=token,
        )
        messages.append(
            LeafMessage(
                sender=-1, ciphertext=ciphertext, statement=statement, proof=proof
            )
        )
    return sender, messages


@dataclass
class MixnetTransport:
    """Drives one query's communication over a :class:`MixnetWorld`.

    Graph vertex i must correspond to mixnet device i.  Only one-hop
    plans are supported (multi-hop flooding over the mixnet multiplies
    round counts without adding new mechanism).
    """

    world: MixnetWorld
    graph: ContactGraph
    plan: ExecutionPlan
    public_key: bgv.PublicKey
    zk: zksnark.Groth16System
    rng: random.Random
    crounds_used: dict[str, int] = field(default_factory=dict)
    #: Delivery attempts per payload when a fault injector is attached.
    max_attempts: int = 3
    #: What recovery did for this query (docs/RESILIENCE.md); attached
    #: to the result metadata by MyceliumSystem.run_query.
    recovery: RecoveryReport = field(default_factory=RecoveryReport)
    _phase_start_round: int = field(default=0, init=False)
    #: vertex -> slot -> destination vertex (self for padding slots).
    _slots: dict[int, list[int]] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if self.plan.hops != 1:
            raise UnsupportedQueryError(
                "the mixnet transport demo supports one-hop plans"
            )
        if self.graph.num_vertices > len(self.world.devices):
            raise ProtocolError("graph larger than the mixnet population")

    def _primary(self, vertex: int) -> bytes:
        return self.world.devices[vertex].identity.primary().handle

    def establish_paths(self) -> int:
        """Every vertex telescopes r paths for each of its d slots
        (§3.2: always d messages, self-loops pad short degrees)."""
        d = self.plan.degree_bound
        r = self.world.params.replicas
        requests = []
        for vertex in range(self.graph.num_vertices):
            neighbors = self.graph.neighbors(vertex)
            slots = [
                neighbors[i] if i < len(neighbors) else vertex
                for i in range(d)
            ]
            self._slots[vertex] = slots
            for slot, target in enumerate(slots):
                for replica in range(r):
                    requests.append(
                        (vertex, slot, replica, self._primary(target))
                    )
        driver = TelescopeDriver(self.world)
        start = self.world.current_round
        paths = driver.setup_paths(requests)
        self.crounds_used["telescoping"] = self.world.current_round - start
        established = sum(p.established for p in paths.values())
        if established == 0:
            raise ProtocolError("no paths established")
        return established

    def _send_wave(self, payload_for, payload_bytes: int) -> None:
        """One communication wave: every vertex sends on every slot
        (real payloads where it has something to say, padding elsewhere
        — the degree-hiding guarantee)."""
        r = self.world.params.replicas
        if self.world.fault_injector is None:
            # Fault-free: blast every replica at once, exactly one wave.
            sends = []
            for vertex in range(self.graph.num_vertices):
                for slot, target in enumerate(self._slots[vertex]):
                    payload = payload_for(vertex, slot, target)
                    for replica in range(r):
                        sends.append(
                            SendRequest(vertex, (slot, replica), payload)
                        )
            ForwardingDriver(self.world).send_batch(sends, payload_bytes)
            return
        # Chaos mode: one primary send per slot, then bounded
        # retransmission with exponential backoff and failover onto the
        # redundant replica paths (docs/RESILIENCE.md).
        wave_start = self.world.current_round
        sends = []
        payloads: dict[tuple[int, int], tuple[bytes, int]] = {}
        for vertex in range(self.graph.num_vertices):
            for slot, target in enumerate(self._slots[vertex]):
                payload = payload_for(vertex, slot, target)
                payloads[(vertex, slot)] = (payload, target)
                sends.append(SendRequest(vertex, (slot, 0), payload))

        def confirm(request: SendRequest) -> bool:
            payload, target = payloads[
                (request.device_id, request.path_key[0])
            ]
            if not payload:
                return True  # pure padding: nothing to deliver
            return self._delivered(target, payload, wave_start)

        result = ForwardingDriver(self.world).send_reliable(
            sends, payload_bytes, confirm, max_attempts=self.max_attempts
        )
        self.recovery.retransmissions += result.retransmissions
        self.recovery.failovers += result.failovers
        self.recovery.undelivered += len(result.undelivered)

    def _delivered(
        self, target: int, payload: bytes, since_round: int
    ) -> bool:
        """Has ``target`` received ``payload`` since ``since_round``?

        The delivery oracle for reliable sends: payloads are framed with
        a length prefix and padded with zeros, so a prefix match on the
        opened plaintext identifies the message unambiguously.
        """
        for received in self.world.devices[target].received:
            if received.round_number <= since_round:
                continue
            if received.plaintext.startswith(payload):
                return True
        return False

    def flood_query(self) -> None:
        start = self.world.current_round
        self._phase_start_round = start

        def payload(vertex, slot, target):
            return _frame(_TAG_QUERY + self._primary(vertex))

        self._send_wave(payload, payload_bytes=4 + 33)
        self.crounds_used["query_flood"] = self.world.current_round - start

    def send_responses(
        self, behaviors: dict[int, Behavior] | None = None
    ) -> None:
        """Each device answers every query it received in its mailbox."""
        behaviors = behaviors or {}
        start = self.world.current_round
        # Which origins asked each vertex? Read from received payloads.
        requests: dict[int, list[int]] = {v: [] for v in self._slots}
        for vertex in self._slots:
            device = self.world.devices[vertex]
            for received in device.received:
                if received.round_number < self._phase_start_round:
                    continue
                data = _unframe(received.plaintext)
                if data is None:
                    continue
                if data.startswith(_TAG_QUERY) and len(data) == 33:
                    origin_handle = data[1:]
                    origin = self.world.handle_owner.get(origin_handle)
                    if origin is None or origin == vertex:
                        continue
                    if origin in self.graph.neighbors(vertex):
                        requests[vertex].append(origin)
        responses: dict[tuple[int, int], bytes] = {}
        payload_sizes = [0]
        for vertex, origins in requests.items():
            behavior = behaviors.get(vertex, Behavior.HONEST)
            for origin in origins:
                response = dest_compute(
                    self.plan,
                    self.public_key,
                    self.zk,
                    self.graph,
                    origin,
                    vertex,
                    self.world.devices[vertex].rng,
                    behavior,
                )
                if response is None:
                    continue
                payload = _frame(
                    encode_response(
                        list(response.messages), self._primary(vertex)
                    )
                )
                slot = self._slots[vertex].index(origin)
                responses[(vertex, slot)] = payload
                payload_sizes.append(len(payload))
        payload_bytes = max(payload_sizes) or 64
        self._response_round = self.world.current_round

        def payload_for(vertex, slot, target):
            return responses.get((vertex, slot), b"")

        self._send_wave(payload_for, payload_bytes)
        self.crounds_used["responses"] = self.world.current_round - start

    def collect_submissions(self) -> list[OriginSubmission]:
        """Origins decode responses from their mailboxes, verify leaf
        proofs, combine homomorphically, and prove the aggregation."""
        executor = EncryptedExecutor(
            self.plan, self.public_key, self.zk, self.rng
        )
        submissions = []
        skipped: list[int] = []
        for origin in range(self.graph.num_vertices):
            device = self.world.devices[origin]
            if not device.online:
                # An origin that is offline at collection time submits
                # nothing; the aggregator proceeds without it (§4.4).
                skipped.append(origin)
                continue
            neighbor_handles = {
                self._primary(n): n for n in self.graph.neighbors(origin)
            }
            inputs: dict[int, tuple[bgv.Ciphertext, ...]] = {}
            leaves: list[LeafMessage] = []
            expected = (
                self.plan.cross.num_buckets if self.plan.cross else 1
            )
            for received in device.received:
                if received.round_number < getattr(
                    self, "_response_round", 0
                ):
                    continue
                data = _unframe(received.plaintext)
                if data is None:
                    continue
                decoded = decode_response(
                    data, self.plan, self.public_key, self.public_key.profile
                )
                if decoded is None:
                    continue
                sender_handle, messages = decoded
                sender = neighbor_handles.get(sender_handle)
                if sender is None or sender in inputs:
                    continue  # not my neighbor, or a duplicate replica
                if len(messages) != expected:
                    continue
                if not all(
                    self.zk.verify(m.statement, m.proof) for m in messages
                ):
                    executor.stats.origin_filtered_leaves += 1
                    continue
                inputs[sender] = tuple(m.ciphertext for m in messages)
                leaves.extend(
                    LeafMessage(
                        sender=sender,
                        ciphertext=m.ciphertext,
                        statement=m.statement,
                        proof=m.proof,
                    )
                    for m in messages
                )
            decisions = semantics.origin_decisions(self.plan, self.graph, origin)
            inputs = {
                n: cts
                for n, cts in inputs.items()
                if n in decisions.selected_neighbors
            }
            leaves = [m for m in leaves if m.sender in inputs]
            missing = sorted(
                n for n in decisions.selected_neighbors if n not in inputs
            )
            if missing:
                # These neighbors never answered (churn, exhausted
                # retries): their terms default to Enc(x^0) inside
                # build_origin_submission.
                self.recovery.defaulted_by_origin[origin] = tuple(missing)
            submissions.append(
                executor.build_origin_submission(
                    self.graph, origin, decisions, inputs, leaves
                )
            )
        self.recovery.skipped_origins = tuple(skipped)
        return submissions

    def run(
        self,
        behaviors: dict[int, Behavior] | None = None,
        reuse_paths: bool = False,
    ) -> list[OriginSubmission]:
        """The full communication schedule for one query.

        ``reuse_paths`` skips telescoping when this transport already
        established circuits — the steady state of §3.4, where path
        setup "is run infrequently in order to let new devices join".
        """
        if not (reuse_paths and self._slots):
            self.establish_paths()
        self.flood_query()
        self.send_responses(behaviors)
        return self.collect_submissions()
