"""C-round scheduling: the wall-clock timeline of a query (§3.4, §6.3).

Mycelium is not interactive — C-rounds are hours long so devices with
intermittent connectivity can participate.  This module turns a compiled
plan plus system parameters into the query's full communication
schedule, phase by phase, in C-rounds and hours.  "The duration depends
only on the number of hops and not on what specifically the query
computes" (§6.3) — which the schedule makes explicit: only ``hops`` and
the vertex program's round count appear.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.costmodel import CROUND_HOURS
from repro.params import SystemParameters
from repro.query.plans import ExecutionPlan


@dataclass(frozen=True)
class Phase:
    """One contiguous stretch of the schedule."""

    name: str
    crounds: int
    description: str

    def hours(self, cround_hours: float = CROUND_HOURS) -> float:
        return self.crounds * cround_hours


@dataclass(frozen=True)
class QuerySchedule:
    """The end-to-end timeline of one query."""

    phases: tuple[Phase, ...]
    reuses_paths: bool

    @property
    def total_crounds(self) -> int:
        return sum(p.crounds for p in self.phases)

    def total_hours(self, cround_hours: float = CROUND_HOURS) -> float:
        return self.total_crounds * cround_hours

    def table(self) -> list[tuple[str, int, str]]:
        return [(p.name, p.crounds, p.description) for p in self.phases]


def build_schedule(
    plan: ExecutionPlan,
    params: SystemParameters,
    reuse_paths: bool = False,
) -> QuerySchedule:
    """Lay out the query's phases.

    ``reuse_paths`` models the steady state: telescoping "is run
    infrequently in order to let new devices join the system" (§3.4),
    so consecutive queries skip it.
    """
    k = params.hops
    phases: list[Phase] = []
    if not reuse_paths:
        phases.append(
            Phase(
                name="path setup",
                crounds=k * k + 2 * k,
                description=(
                    f"telescoping: {k - 1} extensions plus the "
                    f"DST/ACK/complaint-window exchange"
                ),
            )
        )
    # The vertex program runs 2 * hops message waves (flood out,
    # aggregate back, §4.4); each wave costs k+1 C-rounds of mixnet
    # latency (§3.5).
    waves = 2 * plan.hops
    phases.append(
        Phase(
            name="vertex program",
            crounds=waves * (k + 1),
            description=(
                f"{waves} communication waves of a neigh({plan.hops}) "
                f"query, each k+1 = {k + 1} C-rounds through the mixnet"
            ),
        )
    )
    phases.append(
        Phase(
            name="aggregation + decryption",
            crounds=1,
            description=(
                "aggregator verifies proofs, relinearizes and sums; the "
                "committee threshold-decrypts and noises within one round"
            ),
        )
    )
    return QuerySchedule(phases=tuple(phases), reuses_paths=reuse_paths)


@dataclass
class CampaignClock:
    """The campaign's monotonic C-round clock.

    A multi-query campaign lives on one shared timeline: each query's
    schedule (:func:`build_schedule`) advances the clock by its total
    C-rounds, and quorum waits advance it round by round.  Churn windows
    in a :class:`repro.faults.plan.FaultPlan` are keyed to this clock,
    so committee liveness is a pure function of (plan, clock) — which is
    what lets a resumed campaign re-derive exactly which members were
    alive at every past decryption.
    """

    round: int = 0

    def advance(self, crounds: int) -> int:
        """Move time forward; returns the new current round."""
        if crounds < 0:
            raise ValueError("the campaign clock never runs backwards")
        self.round += crounds
        return self.round


def queries_per_path_epoch(
    plan: ExecutionPlan,
    params: SystemParameters,
    epoch_days: float = 7.0,
    cround_hours: float = CROUND_HOURS,
) -> int:
    """How many queries fit between path re-establishments if paths are
    refreshed every ``epoch_days`` (to let new devices join)."""
    setup = build_schedule(plan, params, reuse_paths=False)
    follow_up = build_schedule(plan, params, reuse_paths=True)
    budget_hours = epoch_days * 24
    remaining = budget_hours - setup.total_hours(cround_hours)
    if remaining < 0:
        return 0
    return 1 + int(remaining // follow_up.total_hours(cround_hours))
